//! Tracing must be a pure observer. This suite pins the PR 6 bar: every
//! progressive method emits an identical `(pair, weight-bits)` sequence
//! with tracing (and metrics) enabled vs disabled, at 1–8 worker threads —
//! and the trace produced along the way is well-formed.
//!
//! Everything runs inside one `#[test]` because the trace sink and the
//! metrics switch are process-global: phases must execute in a fixed
//! order, not interleaved by the test harness. A dedicated integration
//! test file keeps that global state isolated from every other suite.

use sper::obs;
use sper::prelude::*;
use std::sync::Arc;

const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];
const EMISSIONS: usize = 4_000;

/// The first `EMISSIONS` comparisons of `method`, as comparable bits.
fn drain(
    method: ProgressiveMethod,
    profiles: &ProfileCollection,
    schema_keys: Option<&[String]>,
    threads: usize,
) -> Vec<(Pair, u64)> {
    let config =
        MethodConfig::default().with_threads(Parallelism::new(threads).expect("threads > 0"));
    sper::core::build_method(method, profiles, &config, schema_keys)
        .take(EMISSIONS)
        .map(|c| (c.pair, c.weight.to_bits()))
        .collect()
}

/// Streams the collection in 3 batches and returns the per-epoch pair
/// sequences (order matters — epochs are emitted best-first).
fn stream_epochs(profiles: &ProfileCollection, method: ProgressiveMethod) -> Vec<Vec<Pair>> {
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(method),
    );
    let rows: Vec<_> = profiles.iter().map(|p| p.attributes.clone()).collect();
    let mut epochs = Vec::new();
    for batch in rows.chunks(rows.len().div_ceil(3).max(1)) {
        session.ingest_batch(batch.to_vec());
        let outcome = session.emit_epoch(None);
        epochs.push(outcome.comparisons.iter().map(|c| c.pair).collect());
    }
    epochs
}

#[test]
fn tracing_is_a_pure_observer() {
    let data = DatasetSpec::paper(DatasetKind::Census)
        .with_scale(0.4)
        .generate();
    let profiles = &data.profiles;
    let schema_keys = data.schema_keys.as_deref();
    let methods = [
        ProgressiveMethod::Psn,
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::SaPsab,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];

    // Phase 1: baselines with every probe disabled.
    assert!(!obs::trace::enabled(obs::Level::Error), "sink leaked in");
    assert!(!obs::metrics::enabled(), "metrics leaked in");
    let mut baseline = Vec::new();
    for method in methods {
        for threads in THREAD_STEPS {
            baseline.push(drain(method, profiles, schema_keys, threads));
        }
    }
    let stream_baseline = stream_epochs(profiles, ProgressiveMethod::Pps);

    // Phase 2: the same runs under a Debug-level capture sink with the
    // metrics registry switched on.
    let capture = Arc::new(obs::CaptureSink::new());
    obs::trace::install_sink(capture.clone(), obs::Level::Debug);
    obs::metrics::set_enabled(true);

    let mut it = baseline.iter();
    for method in methods {
        for threads in THREAD_STEPS {
            let traced = drain(method, profiles, schema_keys, threads);
            assert_eq!(
                &traced,
                it.next().expect("one baseline per run"),
                "{method:?} at {threads} threads: tracing changed the emission sequence"
            );
        }
    }
    assert_eq!(
        stream_epochs(profiles, ProgressiveMethod::Pps),
        stream_baseline,
        "tracing changed streamed epoch emissions"
    );

    obs::metrics::set_enabled(false);
    obs::trace::clear_sink();

    // Phase 3: the capture actually observed the hot paths it claims to —
    // a sink that records nothing would make phase 2 vacuous.
    let names = capture.names();
    for expected in ["core.build_method", "stream.epoch"] {
        assert!(
            names.contains(&expected),
            "no {expected:?} span recorded (got {} records)",
            names.len()
        );
    }
    // And it observed them a lot: every method × thread-count build opens
    // a core.build_method span.
    let builds = names.iter().filter(|n| **n == "core.build_method").count();
    assert!(
        builds >= methods.len() * THREAD_STEPS.len(),
        "{builds} builds traced"
    );

    // Phase 4: trace records render as parseable JSON lines with the
    // documented required keys, and the metrics registry exports cleanly.
    for record in capture.records() {
        let line = obs::trace::record_to_json(&record);
        let value = serde::json::parse(&line)
            .unwrap_or_else(|e| panic!("trace line is not valid JSON: {e:?}\n{line}"));
        for key in ["t", "kind", "level", "name", "thread", "depth"] {
            assert!(value.get(key).is_some(), "missing {key:?} in {line}");
        }
    }
    let json = obs::metrics::global().to_json();
    serde::json::parse(&json).expect("metrics JSON export parses");
    let prom = obs::metrics::global().to_prometheus();
    assert!(
        prom.contains("# TYPE session_epochs counter"),
        "prometheus dump missing session counters:\n{prom}"
    );
}
