//! Blackbox tests for the live-introspection surface: the `--listen`
//! scrape endpoint, the profiler exports, the `--progress`/verbosity
//! interplay, and the `sper report` HTML — all driven through the real
//! `sper` binary, the way an operator would use it.
//!
//! The one invariant everything here leans on: observability is a pure
//! observer. A run scraped mid-flight over HTTP must emit the exact
//! same comparison stream, bit for bit, as a run nobody watched.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn sper() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sper"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sper-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// Issues a plain HTTP/1.1 GET against `addr` and returns (status line,
/// body). The server closes the connection after each response, so
/// read-to-end is the framing.
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: sper\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Runs `sper stream census` to completion with the given extra flags,
/// returning (stdout, stderr).
fn run_stream(extra: &[&str]) -> (String, String) {
    let out = sper()
        .args([
            "stream",
            "census",
            "--scale",
            "0.3",
            "--batches",
            "3",
            "--threads",
            "2",
        ])
        .args(extra)
        .output()
        .expect("spawn sper stream");
    assert!(
        out.status.success(),
        "sper stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn read_to_string(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scraping a live run over HTTP must not perturb it: the `--emit-pairs`
/// dump (pair ids + exact weight bits) from a listened-and-scraped run
/// is byte-identical to an unlistened one, and every endpoint answers
/// while the run is still in flight.
#[test]
fn scraped_run_is_bit_identical_and_endpoints_answer_mid_run() {
    let quiet_pairs = tmp("quiet-pairs.csv");
    run_stream(&["--emit-pairs", quiet_pairs.to_str().unwrap()]);
    let baseline = read_to_string(&quiet_pairs);
    assert!(!baseline.is_empty(), "baseline run emitted nothing");

    // A bigger workload for the listened run so there is a comfortable
    // window between the listener coming up and the stream finishing.
    let live_pairs = tmp("live-pairs.csv");
    let mut child = sper()
        .args([
            "stream",
            "census",
            "--scale",
            "0.3",
            "--batches",
            "3",
            "--threads",
            "2",
        ])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--emit-pairs", live_pairs.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sper stream --listen");

    let addr = wait_for_listen_line(&mut child);

    // The listener starts before any dataset generation or streaming
    // work, so the child must still be running when we scrape.
    assert!(
        child.try_wait().expect("try_wait").is_none(),
        "run finished before we could scrape it"
    );

    let (status, health) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "healthz: {status}");
    assert!(health.contains("ok"), "healthz body: {health}");

    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "metrics: {status}");
    assert!(
        metrics.contains("# TYPE"),
        "Prometheus exposition text needs TYPE comments: {metrics}"
    );

    let (status, build) = http_get(&addr, "/buildz");
    assert!(status.contains("200"), "buildz: {status}");
    for key in ["\"version\"", "\"kernel\"", "\"cores\"", "\"os\""] {
        assert!(build.contains(key), "buildz missing {key}: {build}");
    }

    let (status, tracez) = http_get(&addr, "/tracez");
    assert!(status.contains("200"), "tracez: {status}");
    for key in ["\"capacity\"", "\"dropped\"", "\"records\""] {
        assert!(tracez.contains(key), "tracez missing {key}: {tracez}");
    }

    let (status, _) = http_get(&addr, "/no-such-page");
    assert!(status.contains("404"), "unknown path: {status}");

    let out = child.wait_with_output().expect("wait for child");
    assert!(
        out.status.success(),
        "listened run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let live = read_to_string(&live_pairs);
    assert_eq!(
        baseline, live,
        "scraping a live run changed its emission stream"
    );
}

/// Hostile clients must not take the scrape endpoint down or perturb
/// the run: a slow-loris connection that trickles header bytes cannot
/// stall `/healthz` for other clients (per-connection handler threads +
/// a cumulative header deadline), and a malformed request line gets a
/// clean 400 instead of wedging the server. The run itself completes
/// successfully under both.
#[test]
fn hostile_clients_neither_stall_healthz_nor_kill_the_run() {
    let mut child = sper()
        .args([
            "stream",
            "census",
            "--scale",
            "0.3",
            "--batches",
            "3",
            "--threads",
            "2",
        ])
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sper stream --listen");
    let addr = wait_for_listen_line(&mut child);

    // Slow loris: open a connection, send a header fragment, then stall.
    // The connection stays open while we talk to the server on others.
    let mut loris = TcpStream::connect(&addr).expect("connect loris");
    loris
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: s")
        .expect("write loris fragment");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // With the loris connection pending, a well-formed client must be
    // answered promptly — well inside the loris header deadline.
    let t0 = std::time::Instant::now();
    let (status, _) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "healthz behind a loris: {status}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "healthz stalled behind a slow-loris connection: {:?}",
        t0.elapsed()
    );

    // A request line that is not `METHOD PATH HTTP/...` is a 400.
    let mut bad = TcpStream::connect(&addr).expect("connect malformed");
    bad.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    bad.write_all(b"NOT-AN-HTTP-REQUEST\r\n\r\n")
        .expect("write malformed request");
    let mut raw = String::new();
    bad.read_to_string(&mut raw)
        .expect("read malformed response");
    assert!(
        raw.starts_with("HTTP/1.1 400"),
        "malformed request line should get 400: {raw:?}"
    );

    // The loris connection is cut off by the cumulative header deadline
    // with 408 — unless the run (and with it the server process) ended
    // first, in which case a bare close is equally acceptable.
    let mut loris_raw = String::new();
    let _ = loris.read_to_string(&mut loris_raw);
    assert!(
        loris_raw.is_empty() || loris_raw.starts_with("HTTP/1.1 408"),
        "loris should time out with 408 or be dropped: {loris_raw:?}"
    );

    let out = child.wait_with_output().expect("wait for child");
    assert!(
        out.status.success(),
        "run failed under hostile clients: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Reads the child's stderr until the `listening on ADDR` banner,
/// returns the bound address, and hands the rest of the stderr pipe to
/// a drain thread so the child never blocks on a full pipe.
fn wait_for_listen_line(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read child stderr");
        assert!(n > 0, "child exited before announcing its listen address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    addr
}

/// `--trace FILE` alone must keep stderr silent: the file sink raising
/// the global threshold to Debug is not a license for the stderr sink
/// to start printing. With `-v`, stderr shows Info-level records but
/// still not the Debug-level ones that the file receives.
#[test]
fn trace_file_level_is_independent_of_stderr_verbosity() {
    // No -v: the trace file captures Debug records, stderr stays empty.
    let trace = tmp("quiet-trace.jsonl");
    let (_, stderr) = run_stream(&["--trace", trace.to_str().unwrap()]);
    let traced = read_to_string(&trace);
    assert!(
        traced.contains("\"cli.epoch_alloc\""),
        "file sink should receive Debug records: {traced}"
    );
    assert!(
        !stderr.contains("stream.epoch") && !stderr.contains("cli.epoch_alloc"),
        "--trace must not leak records to stderr: {stderr}"
    );

    // -v + --trace: stderr shows Info spans, but the Debug records that
    // land in the file never reach the terminal.
    let trace_v = tmp("verbose-trace.jsonl");
    let (_, stderr) = run_stream(&["-v", "--trace", trace_v.to_str().unwrap()]);
    assert!(
        stderr.contains("stream.epoch"),
        "-v should print Info spans to stderr: {stderr}"
    );
    assert!(
        !stderr.contains("cli.epoch_alloc") && !stderr.contains("parallel.worker"),
        "-v stderr must stay at Info even when a file sink wants Debug: {stderr}"
    );
    let traced_v = read_to_string(&trace_v);
    assert!(
        traced_v.contains("\"cli.epoch_alloc\""),
        "file sink still gets Debug alongside -v: {traced_v}"
    );

    // -vv: now the terminal asked for Debug explicitly.
    let (_, stderr) = run_stream(&["-vv"]);
    assert!(
        stderr.contains("cli.epoch_alloc"),
        "-vv should print Debug records to stderr: {stderr}"
    );
}

/// `--progress` renders via `\r` rewrites on a TTY; when stderr is a
/// pipe (as here) it must stay completely silent.
#[test]
fn progress_line_is_suppressed_when_stderr_is_not_a_tty() {
    let (_, stderr) = run_stream(&["--progress"]);
    assert!(
        !stderr.contains('\r'),
        "--progress must not write status lines to a non-TTY stderr: {stderr:?}"
    );
}

/// The profiler exports load in standard tooling: collapsed stacks obey
/// the `frames… <count>` grammar flamegraph.pl expects, and the Chrome
/// trace is a JSON object Perfetto can open.
#[test]
fn profiler_exports_follow_their_formats() {
    let collapsed = tmp("profile.folded");
    let chrome = tmp("trace.json");
    run_stream(&[
        "--profile",
        collapsed.to_str().unwrap(),
        "--chrome-trace",
        chrome.to_str().unwrap(),
    ]);

    let folded = read_to_string(&collapsed);
    assert!(!folded.trim().is_empty(), "collapsed profile is empty");
    for line in folded.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("collapsed line has no sample count: {line:?}"));
        assert!(
            count.parse::<u64>().is_ok(),
            "sample count must be an integer: {line:?}"
        );
        assert!(
            stack.split(';').all(|frame| !frame.is_empty()),
            "empty frame in stack: {line:?}"
        );
    }
    assert!(
        folded.lines().any(|l| l.contains(';')),
        "profile should contain at least one nested stack: {folded}"
    );

    let trace = read_to_string(&chrome);
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    for key in [
        "\"traceEvents\"",
        "\"displayTimeUnit\"",
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
    ] {
        assert!(trace.contains(key), "chrome trace missing {key}");
    }
}

/// `sper report` fuses a trace (and metrics) into one HTML file with no
/// external references — it must open on an air-gapped machine.
#[test]
fn report_html_is_self_contained() {
    let trace = tmp("report-trace.jsonl");
    let metrics = tmp("report-metrics.json");
    run_stream(&[
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);

    let html_path = tmp("report.html");
    let out = sper()
        .args(["report", "--trace", trace.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .args(["--out", html_path.to_str().unwrap()])
        .output()
        .expect("spawn sper report");
    assert!(
        out.status.success(),
        "sper report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The report must not consume its own inputs: the trace it read is
    // intact afterwards (regression pin for the sink-vs-input mixup).
    assert!(
        read_to_string(&trace).contains("\"stream.epoch\""),
        "report truncated its input trace"
    );

    let html = read_to_string(&html_path);
    assert!(html.contains("<svg"), "report should inline SVG charts");
    assert!(html.contains("stream.epoch"), "hotspot table missing spans");
    assert!(
        !html.to_ascii_lowercase().contains("http"),
        "report references external resources"
    );
    assert!(
        !html.contains("<script"),
        "report should not need JavaScript"
    );
}
