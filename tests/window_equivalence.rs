//! Brute-force equivalence tests for the similarity-based methods: the
//! sliding-window semantics of SA-PSN / LS-PSN / GS-PSN are re-derived from
//! an externally built Neighbor List (same seed ⇒ identical list) and
//! compared pair-for-pair.

use sper::prelude::*;
use sper_blocking::neighbor_list::NeighborList;
use sper_core::gs_psn::GsPsn;
use sper_core::ls_psn::LsPsn;
use sper_core::sa_psn::SaPsn;
use sper_datagen::DatasetKind;
use std::collections::HashSet;

const SEED: u64 = 1234;

fn twin() -> GeneratedDataset {
    DatasetSpec::paper(DatasetKind::Restaurant)
        .with_scale(0.15)
        .generate()
}

/// All valid pairs at exactly window distance `w` of the Neighbor List, in
/// position order (the SA-PSN emission order for that window).
fn window_pairs(nl: &NeighborList, profiles: &ProfileCollection, w: usize) -> Vec<Pair> {
    let mut out = Vec::new();
    for pos in 0..nl.len().saturating_sub(w) {
        let a = nl.profile_at(pos);
        let b = nl.profile_at(pos + w);
        if profiles.is_valid_comparison(a, b) {
            out.push(Pair::new(a, b));
        }
    }
    out
}

#[test]
fn sa_psn_equals_brute_force_window_sweep() {
    let data = twin();
    let nl = NeighborList::build(&data.profiles, SEED);
    let mut expected: Vec<Pair> = Vec::new();
    for w in 1..=3 {
        expected.extend(window_pairs(&nl, &data.profiles, w));
    }
    let got: Vec<Pair> = SaPsn::new(&data.profiles, SEED)
        .with_max_window(3)
        .map(|c| c.pair)
        .collect();
    assert_eq!(got, expected, "emission order must match the brute force");
}

#[test]
fn ls_psn_window_batches_equal_brute_force_sets() {
    let data = twin();
    let nl = NeighborList::build(&data.profiles, SEED);
    let mut ls = LsPsn::new(&data.profiles, SEED);

    // Drain the window-1 batch and compare as a *set* (LS-PSN reorders by
    // RCF weight) against the distinct window-1 pairs.
    let expected: HashSet<Pair> = window_pairs(&nl, &data.profiles, 1).into_iter().collect();
    let mut got: HashSet<Pair> = HashSet::new();
    loop {
        if ls.window() > 1 {
            break;
        }
        let Some(c) = ls.next() else { break };
        if ls.window() > 1 {
            // This emission already belongs to window 2.
            break;
        }
        got.insert(c.pair);
    }
    assert_eq!(got, expected);
}

#[test]
fn gs_psn_pair_set_equals_all_windows_up_to_wmax() {
    let data = twin();
    let wmax = 5;
    let nl = NeighborList::build(&data.profiles, SEED);
    let mut expected: HashSet<Pair> = HashSet::new();
    for w in 1..=wmax {
        expected.extend(window_pairs(&nl, &data.profiles, w));
    }
    let got: HashSet<Pair> = GsPsn::new(&data.profiles, SEED, wmax)
        .map(|c| c.pair)
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn gs_psn_weights_dominate_ls_psn_window1() {
    // For any pair, the GS-PSN frequency accumulated over windows 1..=wmax
    // is at least the LS-PSN window-1 frequency, so with the raw-frequency
    // weighting GS weights dominate LS window-1 weights.
    use sper_core::NeighborWeighting;
    let data = twin();
    let mut ls_w1: std::collections::HashMap<Pair, f64> = std::collections::HashMap::new();
    let mut ls = LsPsn::with_weighting(&data.profiles, SEED, NeighborWeighting::Frequency);
    loop {
        if ls.window() > 1 {
            break;
        }
        let Some(c) = ls.next() else { break };
        if ls.window() > 1 {
            break;
        }
        ls_w1.insert(c.pair, c.weight);
    }
    let gs = GsPsn::with_weighting(&data.profiles, SEED, 4, NeighborWeighting::Frequency);
    let gs_weights: std::collections::HashMap<Pair, f64> = gs.map(|c| (c.pair, c.weight)).collect();
    for (pair, w1) in &ls_w1 {
        let gw = gs_weights
            .get(pair)
            .unwrap_or_else(|| panic!("{pair:?} missing from GS-PSN"));
        assert!(gw >= w1, "{pair:?}: GS {gw} < LS window-1 {w1}");
    }
}
