//! Blackbox exit-code audit for the self-healing persistence paths,
//! driven through the real `sper` binary: degraded-but-recovered
//! situations (salvage with losses, `.prev`-fallback resume, stale tmp
//! cleanup) exit 0 with a warning; unrecoverable corruption exits 1
//! with a typed error; a malformed failpoint spec is a usage error
//! (exit 2). Operators script against these codes — they are contract.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sper() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sper"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sper-heal-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Streams a small dataset with a per-epoch checkpoint so the rotation
/// has produced both `ckpt` and `ckpt.prev` when it returns.
fn stream_with_checkpoints(ckpt: &Path, extra: &[&str]) -> Output {
    sper()
        .args(["stream", "census", "--scale", "0.2", "--batches", "3"])
        .args(["--epoch-budget", "40", "--threads", "1"])
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--checkpoint-every", "1"])
        .args(extra)
        .output()
        .expect("spawn sper stream")
}

/// Flips one payload byte near the end of the file: container framing
/// still parses, the section CRC does not.
fn corrupt_tail(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read store");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(path, &bytes).expect("write corrupted store");
}

/// A corrupt primary with an intact `.prev`: resume succeeds from the
/// rotated generation, exits 0, and says so on stderr.
#[test]
fn resume_from_prev_fallback_exits_zero_with_a_warning() {
    let d = tmp_dir("prev-fallback");
    let ckpt = d.join("run.sper");
    let out = stream_with_checkpoints(&ckpt, &[]);
    assert!(
        out.status.success(),
        "seed stream failed: {}",
        stderr_of(&out)
    );
    assert!(
        ckpt.with_extension("sper.prev").exists(),
        "rotation produced no .prev"
    );

    corrupt_tail(&ckpt);
    let out = sper()
        .args(["resume", ckpt.to_str().unwrap(), "--epoch-budget", "40"])
        .output()
        .expect("spawn sper resume");
    assert_eq!(
        out.status.code(),
        Some(0),
        "fallback resume must exit 0: {}",
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains(".prev"),
        "fallback must be announced: {}",
        stderr_of(&out)
    );
}

/// Both generations corrupt: resume exits 1 with the primary's typed
/// error on stderr — not a panic, not a stack trace.
#[test]
fn resume_with_both_generations_corrupt_exits_one() {
    let d = tmp_dir("both-torn");
    let ckpt = d.join("run.sper");
    let out = stream_with_checkpoints(&ckpt, &[]);
    assert!(
        out.status.success(),
        "seed stream failed: {}",
        stderr_of(&out)
    );

    corrupt_tail(&ckpt);
    corrupt_tail(&ckpt.with_extension("sper.prev"));
    let out = sper()
        .args(["resume", ckpt.to_str().unwrap()])
        .output()
        .expect("spawn sper resume");
    assert_eq!(
        out.status.code(),
        Some(1),
        "unrecoverable corruption is exit 1"
    );
    let err = stderr_of(&out);
    assert!(err.contains("checksum"), "typed CRC error expected: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

/// Salvage on a store with one rotted section: exit 0, the loss named
/// on stderr, the recovered sections written out and loadable.
#[test]
fn salvage_with_losses_exits_zero_and_recovers_the_rest() {
    let d = tmp_dir("salvage");
    let snap = d.join("snap.sper");
    let out = sper()
        .args(["snapshot", "census", "--scale", "0.2"])
        .args(["--out", snap.to_str().unwrap()])
        .output()
        .expect("spawn sper snapshot");
    assert!(
        out.status.success(),
        "seed snapshot failed: {}",
        stderr_of(&out)
    );

    corrupt_tail(&snap);
    let rec = d.join("recovered.sper");
    let out = sper()
        .args(["snapshot", snap.to_str().unwrap(), "--salvage"])
        .args(["--out", rec.to_str().unwrap()])
        .output()
        .expect("spawn sper snapshot --salvage");
    assert_eq!(
        out.status.code(),
        Some(0),
        "partial salvage is exit 0: {}",
        stderr_of(&out)
    );
    assert!(
        stdout_of(&out).contains("recovered"),
        "summary on stdout: {}",
        stdout_of(&out)
    );
    assert!(
        stderr_of(&out).contains("lost section"),
        "losses warned on stderr: {}",
        stderr_of(&out)
    );
    // The recovered store is a valid container: salvaging it again
    // reports zero losses.
    let out = sper()
        .args(["snapshot", rec.to_str().unwrap(), "--salvage"])
        .output()
        .expect("re-salvage recovered store");
    assert_eq!(out.status.code(), Some(0));
    assert!(
        !stderr_of(&out).contains("lost section"),
        "recovered store must be clean: {}",
        stderr_of(&out)
    );
}

/// A smashed header leaves nothing to salvage: exit 1 with a typed
/// container error.
#[test]
fn salvage_of_a_smashed_header_exits_one() {
    let d = tmp_dir("salvage-fatal");
    let junk = d.join("junk.sper");
    std::fs::write(&junk, b"not a sper store at all").unwrap();
    let out = sper()
        .args(["snapshot", junk.to_str().unwrap(), "--salvage"])
        .output()
        .expect("spawn sper snapshot --salvage");
    assert_eq!(out.status.code(), Some(1), "header damage is unrecoverable");
    assert!(
        !stderr_of(&out).contains("panicked"),
        "typed error, not a panic"
    );
}

/// A stale `.sper.tmp` from a killed writer is purged when the store is
/// next opened, and does not affect the resume.
#[test]
fn stale_tmp_is_purged_on_resume() {
    let d = tmp_dir("stale-tmp");
    let ckpt = d.join("run.sper");
    let out = stream_with_checkpoints(&ckpt, &[]);
    assert!(
        out.status.success(),
        "seed stream failed: {}",
        stderr_of(&out)
    );

    let tmp = ckpt.with_extension("sper.tmp");
    std::fs::write(&tmp, b"half-written garbage from a dead process").unwrap();
    let out = sper()
        .args(["resume", ckpt.to_str().unwrap(), "--epoch-budget", "40"])
        .output()
        .expect("spawn sper resume");
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume failed: {}",
        stderr_of(&out)
    );
    assert!(!tmp.exists(), "opening the store must purge the stale tmp");
}

/// An injected checkpoint outage under `--on-checkpoint-failure
/// continue` degrades gracefully (exit 0, warning); the default abort
/// policy turns the same outage into exit 1.
#[test]
fn checkpoint_failure_policy_controls_the_exit_code() {
    let d = tmp_dir("policy");
    // err fires on every attempt — retries cannot absorb it.
    let outage = "stream.checkpoint=err(io)";

    let ckpt = d.join("continue.sper");
    let out = stream_with_checkpoints(
        &ckpt,
        &[
            "--on-checkpoint-failure",
            "continue",
            "--failpoints",
            outage,
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "continue policy: {}",
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("warning"),
        "degradation must be announced: {}",
        stderr_of(&out)
    );

    let ckpt = d.join("abort.sper");
    let out = stream_with_checkpoints(&ckpt, &["--failpoints", outage]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "abort policy: {}",
        stderr_of(&out)
    );
}

/// A malformed `--failpoints` spec is a usage error: exit 2, before any
/// work happens.
#[test]
fn malformed_failpoint_spec_is_a_usage_error() {
    let out = sper()
        .args(["stream", "census", "--failpoints", "store.rename=banana"])
        .output()
        .expect("spawn sper stream");
    assert_eq!(
        out.status.code(),
        Some(2),
        "bad spec is exit 2: {}",
        stderr_of(&out)
    );
}
