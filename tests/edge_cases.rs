//! Failure-injection and degenerate-input tests: every public entry point
//! must behave sensibly on empty, token-free, singleton and pathological
//! collections.

use sper::prelude::*;

fn all_methods() -> [ProgressiveMethod; 6] {
    ProgressiveMethod::SCHEMA_AGNOSTIC
}

#[test]
fn empty_collection_yields_no_comparisons() {
    let profiles = ProfileCollectionBuilder::dirty().build();
    let config = MethodConfig::default();
    for method in all_methods() {
        let mut m = sper::core::build_method(method, &profiles, &config, None);
        assert!(m.next().is_none(), "{method} on empty input");
    }
}

#[test]
fn single_profile_yields_no_comparisons() {
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("a", "lonely value")]);
    let profiles = b.build();
    let config = MethodConfig::default();
    for method in all_methods() {
        let mut m = sper::core::build_method(method, &profiles, &config, None);
        assert!(m.next().is_none(), "{method} on single profile");
    }
}

#[test]
fn token_free_profiles_are_harmless() {
    // Profiles whose values normalize to nothing never enter any index.
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("a", "---"), ("b", "!!")]);
    b.add_profile([("a", ""), ("b", "...")]);
    b.add_profile([("a", "real token")]);
    b.add_profile([("a", "real token")]);
    let profiles = b.build();
    let config = MethodConfig::default();
    for method in all_methods() {
        let m = sper::core::build_method(method, &profiles, &config, None);
        for c in m.take(100) {
            // Only the two token-bearing profiles can ever be compared.
            assert!(
                c.pair.first.0 >= 2 && c.pair.second.0 >= 2,
                "{method}: {c:?}"
            );
        }
    }
}

#[test]
fn all_identical_profiles() {
    // The pathological all-duplicates collection: one giant block, one
    // equal-key run. Every method must terminate and cover all pairs.
    let mut b = ProfileCollectionBuilder::dirty();
    for _ in 0..12 {
        b.add_profile([("v", "same thing everywhere")]);
    }
    let profiles = b.build();
    let config = MethodConfig::default();
    for method in all_methods() {
        let distinct: std::collections::HashSet<Pair> =
            sper::core::build_method(method, &profiles, &config, None)
                .take(20_000)
                .map(|c| c.pair)
                .collect();
        match method {
            // Every token occurs in 100 % of the profiles, so Block Purging
            // correctly treats them all as stop words: the equality-based
            // methods legitimately see zero comparable blocks.
            ProgressiveMethod::Pbs | ProgressiveMethod::Pps => {
                assert!(distinct.is_empty(), "{method}: stop words must be purged");
            }
            // The similarity-based and suffix methods must cover C(12,2).
            _ => assert_eq!(distinct.len(), 66, "{method} must cover every pair"),
        }
    }
}

#[test]
fn clean_clean_empty_second_source() {
    let mut b = ProfileCollectionBuilder::clean_clean();
    b.add_profile([("a", "x y z")]);
    b.add_profile([("a", "x q r")]);
    b.start_second_source();
    let profiles = b.build();
    assert_eq!(profiles.len_second(), 0);
    let config = MethodConfig::default();
    for method in all_methods() {
        let mut m = sper::core::build_method(method, &profiles, &config, None);
        assert!(m.next().is_none(), "{method}: no cross-source pair exists");
    }
}

#[test]
fn unicode_heavy_values() {
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("名", "café München 東京"), ("x", "β-carotene")]);
    b.add_profile([("名", "café München 東京"), ("x", "β-carotene")]);
    let profiles = b.build();
    let config = MethodConfig::default();
    for method in all_methods() {
        // Must not panic on multi-byte boundaries anywhere in the pipeline.
        let n = sper::core::build_method(method, &profiles, &config, None)
            .take(50)
            .count();
        let _ = n;
    }
}

#[test]
fn runner_handles_truthless_task() {
    // A ground truth with zero matches: curves stay sane.
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("a", "alpha beta")]);
    b.add_profile([("a", "alpha gamma")]);
    let profiles = b.build();
    let truth = GroundTruth::from_clusters(2, &[]);
    let result = run_progressive(
        || {
            sper::core::build_method(
                ProgressiveMethod::SaPsn,
                &profiles,
                &MethodConfig::default(),
                None,
            )
        },
        &truth,
        RunOptions::default(),
    );
    assert_eq!(result.curve.matches_found(), 0);
    assert_eq!(result.curve.recall_at(100), 1.0, "vacuous recall is 1");
}

#[test]
fn huge_kmax_and_tiny_wmax_configs() {
    let mut b = ProfileCollectionBuilder::dirty();
    for i in 0..20u32 {
        b.add_profile([("v", format!("tok{} shared", i % 7))]);
    }
    let profiles = b.build();
    let config = MethodConfig {
        kmax: usize::MAX / 2,
        wmax: 1,
        ..MethodConfig::default()
    };
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::GsPsn] {
        let n = sper::core::build_method(method, &profiles, &config, None).count();
        assert!(n > 0, "{method} should still emit");
    }
}
