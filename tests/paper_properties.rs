//! Cross-crate integration tests: the paper's *qualitative* experimental
//! claims, asserted on scaled-down twins. Absolute numbers differ from the
//! paper (synthetic data, different hardware) but the orderings — who wins,
//! where — must hold.

use sper::prelude::*;
use sper_datagen::DatasetKind;

fn auc10(method: ProgressiveMethod, data: &GeneratedDataset, config: &MethodConfig) -> f64 {
    let result = run_progressive(
        || sper::core::build_method(method, &data.profiles, config, data.schema_keys.as_deref()),
        &data.truth,
        RunOptions {
            max_ec_star: 10.0,
            stop_at_full_recall: true,
        },
    );
    result.auc(10.0)
}

/// §7.1: on structured data, the advanced similarity-based methods beat the
/// naive SA-PSN to a significant extent.
#[test]
fn advanced_beats_naive_on_structured() {
    let data = DatasetSpec::paper(DatasetKind::Census)
        .with_scale(0.5)
        .generate();
    let config = MethodConfig::default();
    let naive = auc10(ProgressiveMethod::SaPsn, &data, &config);
    for advanced in [ProgressiveMethod::LsPsn, ProgressiveMethod::GsPsn] {
        let score = auc10(advanced, &data, &config);
        assert!(
            score > naive,
            "{advanced} ({score:.3}) should beat SA-PSN ({naive:.3}) on census"
        );
    }
}

/// §7.1 / Fig. 10: the schema-agnostic advanced methods outperform the
/// schema-based PSN on the restaurant twin (high token overlap,
/// non-discriminative attributes).
#[test]
fn schema_agnostic_beats_psn_on_restaurant() {
    let data = DatasetSpec::paper(DatasetKind::Restaurant).generate();
    let config = MethodConfig::default();
    let psn = auc10(ProgressiveMethod::Psn, &data, &config);
    for advanced in ProgressiveMethod::ADVANCED {
        let score = auc10(advanced, &data, &config);
        assert!(
            score > psn,
            "{advanced} ({score:.3}) should beat PSN ({psn:.3}) on restaurant"
        );
    }
}

/// §7.2 / Fig. 11c: on the freebase twin, similarity-based methods collapse
/// (URI noise destroys alphabetical proximity) while the equality-based
/// methods stay robust: PBS and PPS dominate LS-PSN and GS-PSN.
#[test]
fn equality_methods_robust_on_freebase() {
    let data = DatasetSpec::paper(DatasetKind::Freebase)
        .with_scale(0.1)
        .generate();
    let config = MethodConfig::heterogeneous();
    let pbs = auc10(ProgressiveMethod::Pbs, &data, &config);
    let pps = auc10(ProgressiveMethod::Pps, &data, &config);
    let ls = auc10(ProgressiveMethod::LsPsn, &data, &config);
    let gs = auc10(ProgressiveMethod::GsPsn, &data, &config);
    assert!(
        pbs > ls && pbs > gs,
        "PBS ({pbs:.3}) must beat LS-PSN ({ls:.3}) and GS-PSN ({gs:.3})"
    );
    assert!(
        pps > ls && pps > gs,
        "PPS ({pps:.3}) must beat LS-PSN ({ls:.3}) and GS-PSN ({gs:.3})"
    );
}

/// §7.2: GS-PSN degrades *below* its structured-data self on freebase —
/// the RCF weighting cannot approximate similarity when the Neighbor List
/// is dominated by opaque machine-id tokens.
#[test]
fn gs_psn_degrades_on_rdf_noise() {
    let config = MethodConfig::heterogeneous();
    let freebase = DatasetSpec::paper(DatasetKind::Freebase)
        .with_scale(0.1)
        .generate();
    let movies = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(0.03)
        .generate();
    let on_freebase = auc10(ProgressiveMethod::GsPsn, &freebase, &config);
    let on_movies = auc10(ProgressiveMethod::GsPsn, &movies, &config);
    assert!(
        on_movies > on_freebase + 0.2,
        "GS-PSN should collapse on freebase: movies {on_movies:.3} vs freebase {on_freebase:.3}"
    );
}

/// §7.1 / Fig. 9c: equality-based methods cannot reach full recall on cora
/// (Token Blocking misses some duplicates after purging/filtering), while
/// exhaustive similarity methods can.
#[test]
fn pbs_final_recall_below_one_on_cora() {
    let data = DatasetSpec::paper(DatasetKind::Cora)
        .with_scale(0.3)
        .generate();
    let config = MethodConfig::default();
    let result = run_progressive(
        || sper::core::build_method(ProgressiveMethod::Pbs, &data.profiles, &config, None),
        &data.truth,
        RunOptions {
            max_ec_star: 1_000.0, // effectively unbounded
            stop_at_full_recall: true,
        },
    );
    let recall = result.curve.final_recall();
    assert!(
        recall > 0.9 && recall <= 1.0,
        "PBS exhausts near-but-possibly-below full recall: {recall}"
    );
}

/// §8 / Fig. 13: PBS has the lowest initialization time among the advanced
/// methods (the reason the paper recommends it for tight time budgets).
#[test]
fn pbs_has_cheapest_advanced_initialization() {
    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(0.05)
        .generate();
    let config = MethodConfig::heterogeneous();
    let init_of = |method: ProgressiveMethod| {
        let t0 = std::time::Instant::now();
        let mut m = sper::core::build_method(method, &data.profiles, &config, None);
        let _ = m.next();
        t0.elapsed()
    };
    // Warm up allocator/caches once.
    let _ = init_of(ProgressiveMethod::Pbs);
    let pbs = init_of(ProgressiveMethod::Pbs);
    let gs = init_of(ProgressiveMethod::GsPsn);
    assert!(
        pbs < gs,
        "PBS init ({pbs:?}) should undercut GS-PSN's wmax-deep pass ({gs:?})"
    );
}

/// Improved Early Quality (§3.1): at the same emission budget, every
/// advanced method finds at least as many matches as a batch-ordered
/// (arbitrary-order) execution would on average — approximated here by
/// SA-PSAB's hierarchy order on the restaurant twin.
#[test]
fn improved_early_quality_over_batch_like_order() {
    let data = DatasetSpec::paper(DatasetKind::Restaurant).generate();
    let config = MethodConfig::default();
    let batch_like = auc10(ProgressiveMethod::SaPsab, &data, &config);
    for advanced in ProgressiveMethod::ADVANCED {
        let score = auc10(advanced, &data, &config);
        assert!(
            score > batch_like,
            "{advanced} ({score:.3}) must beat the batch-like order ({batch_like:.3})"
        );
    }
}
