//! Minimal in-tree replacement for `serde`, vendored because the build
//! environment has no crates.io access.
//!
//! Provides the surface the workspace actually uses:
//!
//! * [`Serialize`] — JSON emission, implementable by hand or via
//!   `#[derive(Serialize)]` (from the vendored `serde_derive`),
//! * [`Deserialize`] — JSON parsing from a [`json::Value`] tree, via
//!   `#[derive(Deserialize)]` or hand-written impls,
//! * [`json::to_string`] / [`json::from_str`] — the `serde_json`
//!   stand-ins used by the bench exporters and the resume/merge paths.

// Lets the derive expansion's `serde::` paths resolve inside this crate's
// own tests as well.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can emit themselves as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Types that can reconstruct themselves from a parsed [`json::Value`].
///
/// The derive supports the same item shapes as `#[derive(Serialize)]`:
/// braced structs (JSON objects), tuple structs (newtypes transparent,
/// wider tuples as arrays, unit structs as `null`) and unit-only enums
/// (variant-name strings). Round-trips `to_string` → `from_str` exactly
/// for every shape the workspace serializes.
pub trait Deserialize: Sized {
    /// Builds `Self` from a parsed JSON value.
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error>;
}

/// Serialization helpers used by the derive expansion.
pub mod ser {
    /// Writes `s` as a JSON string literal (with escaping) into `out`.
    pub fn write_json_str(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Deserialization helpers used by the derive expansion.
pub mod de {
    use super::json::{Error, Value};
    use super::Deserialize;

    /// Builds a deserialization error.
    pub fn err(msg: impl Into<String>) -> Error {
        Error::msg(msg)
    }

    /// The value as an object's field list, or a type error.
    pub fn as_object<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        match value {
            Value::Object(fields) => Ok(fields),
            other => Err(err(format!(
                "{ty}: expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an array's element list, or a type error.
    pub fn as_array<'a>(value: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
        match value {
            Value::Array(items) => Ok(items),
            other => Err(err(format!("{ty}: expected array, found {}", other.kind()))),
        }
    }

    /// Deserializes the field `name` of an object. A missing field is
    /// handed to `T` as `null`, so `Option` fields tolerate omission
    /// while every other type reports it — with one deliberate
    /// exception: float fields deserialize `null` (and therefore a
    /// missing field) to `NaN`, because the Serialize side has no other
    /// encoding for non-finite floats and the round-trip wins.
    pub fn field<T: Deserialize>(
        fields: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        let value = fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null);
        T::deserialize_value(value).map_err(|e| err(format!("{ty}.{name}: {e}")))
    }

    /// Deserializes element `i` of a fixed-arity array (tuple structs).
    pub fn element<T: Deserialize>(items: &[Value], i: usize, ty: &str) -> Result<T, Error> {
        let value = items
            .get(i)
            .ok_or_else(|| err(format!("{ty}: missing element {i}")))?;
        T::deserialize_value(value).map_err(|e| err(format!("{ty}[{i}]: {e}")))
    }

    /// The value as an enum variant name, or a type error.
    pub fn variant<'a>(value: &'a Value, ty: &str) -> Result<&'a str, Error> {
        match value {
            Value::String(s) => Ok(s),
            other => Err(err(format!(
                "{ty}: expected variant string, found {}",
                other.kind()
            ))),
        }
    }

    /// Error for a variant string naming no variant of `ty`.
    pub fn unknown_variant(found: &str, ty: &str) -> Error {
        err(format!("{ty}: unknown variant \"{found}\""))
    }

    /// Expects `null` (unit structs), or reports a type error.
    pub fn expect_null(value: &Value, ty: &str) -> Result<(), Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(err(format!("{ty}: expected null, found {}", other.kind()))),
        }
    }
}

/// `serde_json`-shaped entry points: JSON emission, a small value-tree
/// parser and [`from_str`] deserialization.
pub mod json {
    use super::{Deserialize, Serialize};

    /// The JSON encoding of `value`.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.serialize_json(&mut out);
        out
    }

    /// Parses `text` and deserializes a `T` from it.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::deserialize_value(&parse(text)?)
    }

    /// A parse or deserialization error (message plus, for syntax errors,
    /// the byte offset).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
        /// Byte offset of a syntax error, when known.
        pub offset: Option<usize>,
    }

    impl Error {
        pub(crate) fn msg(msg: impl Into<String>) -> Self {
            Self {
                msg: msg.into(),
                offset: None,
            }
        }

        fn at(msg: impl Into<String>, offset: usize) -> Self {
            Self {
                msg: msg.into(),
                offset: Some(offset),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self.offset {
                Some(at) => write!(f, "{} (at byte {at})", self.msg),
                None => f.write_str(&self.msg),
            }
        }
    }

    impl std::error::Error for Error {}

    /// A JSON number, kept as its raw text so integers round-trip without
    /// a detour through `f64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Number {
        raw: String,
    }

    impl Number {
        /// The number as `f64`.
        pub fn as_f64(&self) -> Result<f64, Error> {
            self.raw
                .parse()
                .map_err(|_| Error::msg(format!("invalid number \"{}\"", self.raw)))
        }

        /// The number as a signed 128-bit integer (floats are rejected).
        pub fn as_i128(&self) -> Result<i128, Error> {
            self.raw
                .parse()
                .map_err(|_| Error::msg(format!("expected integer, found \"{}\"", self.raw)))
        }
    }

    /// A parsed JSON document.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (raw text retained).
        Number(Number),
        /// A string literal (escapes resolved).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; field order preserved, duplicate keys kept as-is
        /// (lookups take the first).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The value's JSON type name, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Number(_) => "number",
                Value::String(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }

        /// The field `name` of an object value, if present.
        pub fn get(&self, name: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
                _ => None,
            }
        }
    }

    /// Maximum nesting depth the parser accepts — a stack-overflow guard,
    /// far above anything the workspace emits.
    const MAX_DEPTH: usize = 128;

    /// Parses a JSON document into a [`Value`] tree.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(Error::at("trailing characters after document", p.at));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        at: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.at) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.at += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.at).copied()
        }

        fn eat(&mut self, token: &str) -> bool {
            if self.bytes[self.at..].starts_with(token.as_bytes()) {
                self.at += token.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, Error> {
            if depth > MAX_DEPTH {
                return Err(Error::at("nesting too deep", self.at));
            }
            match self.peek() {
                None => Err(Error::at("unexpected end of document", self.at)),
                Some(b'n') if self.eat("null") => Ok(Value::Null),
                Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b'[') => self.array(depth),
                Some(b'{') => self.object(depth),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                Some(b) => Err(Error::at(
                    format!("unexpected character '{}'", b as char),
                    self.at,
                )),
            }
        }

        fn array(&mut self, depth: usize) -> Result<Value, Error> {
            self.at += 1; // '['
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.at += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b']') => {
                        self.at += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::at("expected ',' or ']'", self.at)),
                }
            }
        }

        fn object(&mut self, depth: usize) -> Result<Value, Error> {
            self.at += 1; // '{'
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                if self.peek() != Some(b'"') {
                    return Err(Error::at("expected object key string", self.at));
                }
                let key = self.string()?;
                self.skip_ws();
                if self.peek() != Some(b':') {
                    return Err(Error::at("expected ':'", self.at));
                }
                self.at += 1;
                self.skip_ws();
                let value = self.value(depth + 1)?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b'}') => {
                        self.at += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::at("expected ',' or '}'", self.at)),
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.at;
            if self.peek() == Some(b'-') {
                self.at += 1;
            }
            let digits_start = self.at;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
            if self.at == digits_start {
                return Err(Error::at("expected digits", self.at));
            }
            if self.peek() == Some(b'.') {
                self.at += 1;
                let frac_start = self.at;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.at += 1;
                }
                if self.at == frac_start {
                    return Err(Error::at("expected fraction digits", self.at));
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.at += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.at += 1;
                }
                let exp_start = self.at;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.at += 1;
                }
                if self.at == exp_start {
                    return Err(Error::at("expected exponent digits", self.at));
                }
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.at])
                .expect("number bytes are ASCII")
                .to_string();
            Ok(Value::Number(Number { raw }))
        }

        fn string(&mut self) -> Result<String, Error> {
            self.at += 1; // opening '"'
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::at("unterminated string", self.at)),
                    Some(b'"') => {
                        self.at += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.at += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                self.at += 1;
                                let hi = self.hex4()?;
                                let c = if (0xD800..0xDC00).contains(&hi) {
                                    // Surrogate pair: a following \uXXXX low
                                    // surrogate completes the scalar.
                                    if !self.eat("\\u") {
                                        return Err(Error::at("lone high surrogate", self.at));
                                    }
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::at("invalid low surrogate", self.at));
                                    }
                                    let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(scalar)
                                        .ok_or_else(|| Error::at("invalid scalar", self.at))?
                                } else {
                                    char::from_u32(hi)
                                        .ok_or_else(|| Error::at("invalid scalar", self.at))?
                                };
                                out.push(c);
                                // hex4 advanced past the digits already.
                                continue;
                            }
                            _ => return Err(Error::at("invalid escape", self.at)),
                        }
                        self.at += 1;
                    }
                    Some(b) if b < 0x20 => {
                        return Err(Error::at("control character in string", self.at))
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so the
                        // encoding is valid by construction).
                        let rest =
                            std::str::from_utf8(&self.bytes[self.at..]).expect("input was a &str");
                        let c = rest.chars().next().expect("peeked non-empty");
                        out.push(c);
                        self.at += c.len_utf8();
                    }
                }
            }
        }

        /// Reads exactly four hex digits, advancing past them.
        fn hex4(&mut self) -> Result<u32, Error> {
            let end = self.at + 4;
            if end > self.bytes.len() {
                return Err(Error::at("truncated \\u escape", self.at));
            }
            let hex = std::str::from_utf8(&self.bytes[self.at..end])
                .map_err(|_| Error::at("invalid \\u escape", self.at))?;
            let v = u32::from_str_radix(hex, 16)
                .map_err(|_| Error::at("invalid \\u escape", self.at))?;
            self.at = end;
            Ok(v)
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
                match value {
                    json::Value::Number(n) => <$t>::try_from(n.as_i128()?)
                        .map_err(|_| de::err(concat!("out of range for ", stringify!($t)))),
                    other => Err(de::err(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

// `u128` exceeds `i128` range; parse its raw text directly.
impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}
impl Deserialize for u128 {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        match value {
            json::Value::Number(n) => {
                let as_i = n.as_i128()?;
                u128::try_from(as_i).map_err(|_| de::err("out of range for u128"))
            }
            other => Err(de::err(format!("expected u128, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&format!("{self}"));
                } else {
                    // JSON has no NaN/Inf; null is the conventional fallback.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
                match value {
                    json::Value::Number(n) => Ok(n.as_f64()? as $t),
                    // The Serialize side writes non-finite floats as
                    // null, so null must parse back to NaN for the
                    // round-trip. Side effect (documented on de::field):
                    // a *missing* non-Option float field also reads as
                    // NaN instead of erroring.
                    json::Value::Null => Ok(<$t>::NAN),
                    other => Err(de::err(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        match value {
            json::Value::Bool(b) => Ok(*b),
            other => Err(de::err(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_str(&self.to_string(), out);
    }
}
impl Deserialize for char {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        match value {
            json::Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(de::err(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_str(self, out);
    }
}
impl Deserialize for String {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        match value {
            json::Value::String(s) => Ok(s.clone()),
            other => Err(de::err(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        match value {
            json::Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        de::as_array(value, "Vec")?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
                let items = de::as_array(value, "tuple")?;
                let arity = [$($n),+].len();
                if items.len() != arity {
                    return Err(de::err(format!(
                        "expected {arity}-element array, found {}",
                        items.len()
                    )));
                }
                Ok(($(de::element::<$t>(items, $n, "tuple")?,)+))
            }
        }
    )+};
}
impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for std::time::Duration {
    fn serialize_json(&self, out: &mut String) {
        // Fractional seconds: convenient for plotting and diffing.
        self.as_secs_f64().serialize_json(out);
    }
}
impl Deserialize for std::time::Duration {
    fn deserialize_value(value: &json::Value) -> Result<Self, json::Error> {
        let secs = f64::deserialize_value(value)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(de::err(format!("invalid duration {secs}")));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(json::to_string(&42u32), "42");
        assert_eq!(json::to_string(&-3i64), "-3");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json::to_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&Some(1u8)), "1");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(
            json::to_string(&std::time::Duration::from_millis(1500)),
            "1.5"
        );
    }

    #[test]
    fn derived_struct_and_enum() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: String,
        }
        #[derive(Serialize)]
        struct Newtype(u32);
        #[derive(Serialize, Deserialize)]
        enum E {
            X,
            Y,
        }
        let s = S {
            a: 7,
            b: "hi".into(),
        };
        assert_eq!(json::to_string(&s), "{\"a\":7,\"b\":\"hi\"}");
        assert_eq!(json::to_string(&Newtype(9)), "9");
        assert_eq!(json::to_string(&E::X), "\"X\"");
        assert_eq!(json::to_string(&E::Y), "\"Y\"");
    }

    #[test]
    fn parse_documents() {
        use json::Value;
        let v = json::parse(r#" {"a": [1, -2.5, null], "b": "xé\n", "c": true} "#).unwrap();
        let a = v.get("a").unwrap();
        assert_eq!(a.kind(), "array");
        assert_eq!(v.get("b"), Some(&Value::String("xé\n".into())));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_errors_are_typed() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"k\" 1}",
            "12 34",
            "nul",
            "+1",
        ] {
            assert!(json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(json::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs() {
        let v = json::parse(r#""🦀""#).unwrap();
        assert_eq!(v, json::Value::String("🦀".into()));
        assert!(json::parse(r#""\ud83e""#).is_err(), "lone surrogate");
    }

    #[test]
    fn from_str_round_trips() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            a: u32,
            b: String,
            c: Option<f64>,
            d: Vec<(u64, f64)>,
        }
        let s = S {
            a: 7,
            b: "hi \"there\"".into(),
            c: None,
            d: vec![(1, 0.5), (2, 1.25)],
        };
        let text = json::to_string(&s);
        assert_eq!(json::from_str::<S>(&text).unwrap(), s);
    }

    #[test]
    fn from_str_newtype_and_enum() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Id(u32);
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum E {
            X,
            Y,
        }
        assert_eq!(json::from_str::<Id>("9").unwrap(), Id(9));
        assert_eq!(json::from_str::<E>("\"Y\"").unwrap(), E::Y);
        assert!(json::from_str::<E>("\"Z\"")
            .unwrap_err()
            .to_string()
            .contains("unknown variant"));
        assert!(json::from_str::<Id>("\"x\"").is_err());
    }

    #[test]
    fn integer_bounds_checked() {
        assert_eq!(json::from_str::<u8>("255").unwrap(), 255);
        assert!(json::from_str::<u8>("256").is_err());
        assert!(json::from_str::<u32>("-1").is_err());
        assert!(
            json::from_str::<u64>("1.5").is_err(),
            "floats are not integers"
        );
        assert!(json::from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn missing_fields_only_tolerated_for_option() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            a: u32,
            b: Option<u32>,
        }
        assert_eq!(
            json::from_str::<S>("{\"a\":1}").unwrap(),
            S { a: 1, b: None }
        );
        assert!(json::from_str::<S>("{\"b\":2}").is_err());
    }

    #[test]
    fn missing_float_field_is_nan_by_design() {
        // The documented exception to the strict-missing-field rule:
        // floats read null (and absence) as NaN, the price of exact
        // non-finite round-trips.
        #[derive(Debug, Serialize, Deserialize)]
        struct F {
            x: f64,
        }
        assert!(json::from_str::<F>("{}").unwrap().x.is_nan());
        let text = json::to_string(&F { x: f64::INFINITY });
        assert!(json::from_str::<F>(&text).unwrap().x.is_nan());
    }

    #[test]
    fn duration_round_trip() {
        let d = std::time::Duration::from_micros(1_234_567);
        let text = json::to_string(&d);
        let back: std::time::Duration = json::from_str(&text).unwrap();
        assert!((back.as_secs_f64() - d.as_secs_f64()).abs() < 1e-9);
        assert!(json::from_str::<std::time::Duration>("-1").is_err());
    }
}
