//! Minimal in-tree replacement for `serde`, vendored because the build
//! environment has no crates.io access.
//!
//! Provides the surface the workspace actually uses:
//!
//! * [`Serialize`] — JSON emission, implementable by hand or via
//!   `#[derive(Serialize)]` (from the vendored `serde_derive`),
//! * [`Deserialize`] — a marker trait so `#[derive(Deserialize)]` sites
//!   keep compiling (nothing in the workspace parses JSON back),
//! * [`json::to_string`] — the `serde_json::to_string` stand-in used by
//!   the bench exporters.

// Lets the derive expansion's `serde::` paths resolve inside this crate's
// own tests as well.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can emit themselves as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait backing `#[derive(Deserialize)]`.
pub trait Deserialize {}

/// Serialization helpers used by the derive expansion.
pub mod ser {
    /// Writes `s` as a JSON string literal (with escaping) into `out`.
    pub fn write_json_str(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// `serde_json`-shaped entry points.
pub mod json {
    use super::Serialize;

    /// The JSON encoding of `value`.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.serialize_json(&mut out);
        out
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&format!("{self}"));
                } else {
                    // JSON has no NaN/Inf; null is the conventional fallback.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_str(&self.to_string(), out);
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_str(self, out);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for std::time::Duration {
    fn serialize_json(&self, out: &mut String) {
        // Fractional seconds: convenient for plotting and diffing.
        self.as_secs_f64().serialize_json(out);
    }
}
impl Deserialize for std::time::Duration {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(json::to_string(&42u32), "42");
        assert_eq!(json::to_string(&-3i64), "-3");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json::to_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&Some(1u8)), "1");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(
            json::to_string(&std::time::Duration::from_millis(1500)),
            "1.5"
        );
    }

    #[test]
    fn derived_struct_and_enum() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: String,
        }
        #[derive(Serialize)]
        struct Newtype(u32);
        #[derive(Serialize, Deserialize)]
        enum E {
            X,
            Y,
        }
        let s = S {
            a: 7,
            b: "hi".into(),
        };
        assert_eq!(json::to_string(&s), "{\"a\":7,\"b\":\"hi\"}");
        assert_eq!(json::to_string(&Newtype(9)), "9");
        assert_eq!(json::to_string(&E::X), "\"X\"");
        assert_eq!(json::to_string(&E::Y), "\"Y\"");
    }
}
