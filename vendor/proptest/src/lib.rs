//! Minimal in-tree replacement for `proptest`, vendored because the build
//! environment has no crates.io access.
//!
//! Implements the subset the workspace's property tests use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * integer-range strategies (`0u32..12`), tuple strategies,
//! * string strategies from a small regex subset (`"[a-z]{0,12}"`,
//!   `"\\PC{0,16}"`),
//! * [`collection::vec`] and [`collection::btree_set`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros.
//!
//! Differences from upstream: no shrinking (failures report the first
//! counter-example verbatim) and a fixed deterministic seed schedule, so
//! test runs are reproducible by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic source of randomness for one generated case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for one case.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn gen_usize(&mut self, range: Range<usize>) -> usize {
        self.inner.gen_range(range)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// `prop_assert!`-family failure.
    Fail(String),
}

/// Result type of one generated case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// String strategies: a `&str` is interpreted as a pattern from a small
/// regex subset — a sequence of atoms, each a char class (`[a-z0-9,-]`),
/// the printable-char escape `\PC`, or a literal char, optionally
/// quantified with `{m,n}` / `{m}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (pool, lo, hi) in &atoms {
            let len = rng.gen_usize(*lo..*hi + 1);
            for _ in 0..len {
                out.push(pool[rng.gen_usize(0..pool.len())]);
            }
        }
        out
    }
}

/// Printable-char pool for `\PC`: ASCII printables plus a few multi-byte
/// code points so UTF-8 handling gets exercised.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    pool.extend(['à', 'é', 'ß', 'ü', 'µ', 'β', 'Ω', '東', '京']);
    pool
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let pool: Vec<char> = match chars[i] {
            '[' => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                let pool = parse_class(&chars[i + 1..end], pattern);
                i = end + 1;
                pool
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in {pattern:?}"
                );
                i += 3;
                printable_pool()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m,n} / {m} quantifier.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let spec: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let m: usize = spec.trim().parse().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "empty quantifier in {pattern:?}");
        atoms.push((pool, lo, hi));
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut pool = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "bad range in class of {pattern:?}");
            for c in lo..=hi {
                pool.push(char::from_u32(c).expect("bad class range"));
            }
            i += 3;
        } else {
            pool.push(body[i]);
            i += 1;
        }
    }
    assert!(!pool.is_empty(), "empty class in {pattern:?}");
    pool
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_usize(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of roughly `size` elements drawn from `element`
    /// (duplicates are re-drawn a bounded number of times, so a small
    /// domain can produce a set below the requested minimum).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_usize(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Number of cases generated per property.
pub const DEFAULT_CASES: u32 = 64;

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for [`DEFAULT_CASES`] cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut case: u32 = 0;
                let mut rejected: u32 = 0;
                while case < $crate::DEFAULT_CASES {
                    let draw = (case as u64) | ((rejected as u64) << 32);
                    let mut rng = $crate::TestRng::from_seed(
                        0x5005_7E57u64 ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let result: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match result {
                        Ok(()) => case += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 10_000,
                                "{}: too many rejected cases",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} failed on case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #[test]
        fn ranges_in_bounds(n in 3usize..9, m in 0u64..5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(m < 5);
        }

        #[test]
        fn assume_rejects(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn string_pattern_shapes(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn printable_escape(s in "\\PC{0,16}") {
            prop_assert!(s.chars().count() <= 16);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn collections_and_map(
            v in collection::vec((0usize..4, 0usize..4), 0..6),
            s in collection::btree_set("[a-e]{1,3}", 0..8),
        ) {
            prop_assert!(v.len() < 6);
            let mapped = collection::btree_set(0u32..12, 2..6)
                .prop_map(|s: BTreeSet<u32>| s.len());
            let mut rng = crate::TestRng::from_seed(1);
            let n = crate::Strategy::generate(&mapped, &mut rng);
            prop_assert!(n < 6);
            prop_assert!(s.len() < 8);
        }
    }

    #[test]
    fn class_with_literals_and_trailing_dash() {
        let pool = super::parse_class(&['a', '-', 'c', ',', '-'], "[a-c,-]");
        assert_eq!(pool, vec!['a', 'b', 'c', ',', '-']);
    }
}
