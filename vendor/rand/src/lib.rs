//! Minimal in-tree replacement for `rand`, vendored because the build
//! environment has no crates.io access.
//!
//! Implements the subset the workspace uses — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`] — with a deterministic xoshiro256++
//! generator. Streams differ from upstream `rand`'s `StdRng` (ChaCha12),
//! which is fine: the workspace only relies on *determinism per seed*,
//! never on specific stream values.

use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler (mirrors `rand::distributions::uniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// A uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Types samplable from the standard distribution via [`Rng::gen`]
/// (uniform bits for integers, `[0, 1)` for floats).
pub trait Standard {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, fast, small — not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(7); // unrelated
            a.gen_range(0u32..1000) == c.gen_range(0u32..1000)
        });
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
