//! Minimal in-tree replacement for `crossbeam`, vendored because the build
//! environment has no crates.io access.
//!
//! Only [`thread::scope`] is provided — a thin adapter over
//! `std::thread::scope` (stable since Rust 1.63) exposing the crossbeam
//! 0.8 calling convention the workspace uses: the spawn closure receives
//! the scope as an argument and `scope` returns a `Result`.

/// Scoped threads.
pub mod thread {
    /// A scope handle passed to [`scope`] closures and to every spawned
    /// thread's closure (crossbeam convention).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope (so it
        /// can spawn nested threads, as crossbeam allows).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. Mirrors `crossbeam::thread::scope`'s `Result` return:
    /// with `std::thread::scope` underneath, un-joined panics propagate as
    /// panics instead, so the result is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
