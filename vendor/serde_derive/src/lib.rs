//! Minimal in-tree replacement for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small serde-compatible surface: `#[derive(Serialize)]`
//! generates an implementation of the vendored `serde::Serialize` trait
//! (JSON emission), `#[derive(Deserialize)]` the mirror-image
//! `serde::Deserialize` implementation (construction from a parsed
//! `serde::json::Value`, exactly inverting the emitted shape).
//!
//! Supported item shapes — exactly what the workspace uses:
//!
//! * braced structs with named fields (serialized as JSON objects),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   JSON arrays),
//! * enums with unit variants only (serialized as the variant name).
//!
//! No generics, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` / `enum` definition.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
        /// Distinguishes `struct S(...)` (constructed as `S(..)`) from the
        /// fieldless `struct S;` (constructed as plain `S`).
        parens: bool,
    },
    UnitEnum {
        name: String,
        variants: Vec<String>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    let body = tokens.find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() != Delimiter::Bracket => Some(g),
        _ => None,
    });
    match kind.as_str() {
        "struct" => match body {
            Some(g) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(g) if g.delimiter() == Delimiter::Parenthesis => Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
                parens: true,
            },
            // `struct Unit;`
            _ => Item::TupleStruct {
                name,
                arity: 0,
                parens: false,
            },
        },
        "enum" => {
            let g = body.expect("enum without a body");
            Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream()),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Field names of a braced struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break;
        };
        fields.push(field.to_string());
        // Skip `: Type` up to the next top-level comma. Generic arguments
        // arrive as individual `<`/`>` puncts; groups are single trees, so
        // only angle-bracket depth needs tracking.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
            _ => any = true,
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Variant names of a unit-only enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(v)) = tokens.next() else {
            break;
        };
        variants.push(v.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            Some(TokenTree::Group(_)) => {
                panic!("derive(Serialize): only unit enum variants are supported")
            }
            Some(other) => panic!("unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            impl_block(&name, &body)
        }
        Item::TupleStruct { name, arity: 0, .. } => impl_block(&name, "out.push_str(\"null\");"),
        // Newtypes serialize transparently, as serde does.
        Item::TupleStruct { name, arity: 1, .. } => {
            impl_block(&name, "serde::Serialize::serialize_json(&self.0, out);")
        }
        Item::TupleStruct { name, arity, .. } => {
            let mut body = String::from("out.push('[');\n");
            for i in 0..arity {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');");
            impl_block(&name, &body)
        }
        Item::UnitEnum { name, variants } => {
            let mut body = String::from("match self {\n");
            for v in &variants {
                body.push_str(&format!(
                    "{name}::{v} => serde::ser::write_json_str(\"{v}\", out),\n"
                ));
            }
            body.push('}');
            impl_block(&name, &body)
        }
    };
    out.parse()
        .expect("derive(Serialize) generated invalid code")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let mut body =
                format!("let fields = serde::de::as_object(value, \"{name}\")?;\nOk(Self {{\n");
            for f in &fields {
                body.push_str(&format!(
                    "{f}: serde::de::field(fields, \"{f}\", \"{name}\")?,\n"
                ));
            }
            body.push_str("})");
            de_impl_block(&name, &body)
        }
        Item::TupleStruct {
            name,
            arity: 0,
            parens,
        } => {
            let construct = if parens { "Self()" } else { "Self" };
            de_impl_block(
                &name,
                &format!("serde::de::expect_null(value, \"{name}\")?;\nOk({construct})"),
            )
        }
        // Newtypes deserialize transparently, as serde does.
        Item::TupleStruct { name, arity: 1, .. } => de_impl_block(
            &name,
            "Ok(Self(serde::Deserialize::deserialize_value(value)?))",
        ),
        Item::TupleStruct { name, arity, .. } => {
            let mut body = format!(
                "let items = serde::de::as_array(value, \"{name}\")?;\n\
                 if items.len() != {arity} {{\n\
                     return Err(serde::de::err(\"{name}: wrong tuple arity\"));\n\
                 }}\nOk(Self(\n"
            );
            for i in 0..arity {
                body.push_str(&format!("serde::de::element(items, {i}, \"{name}\")?,\n"));
            }
            body.push_str("))");
            de_impl_block(&name, &body)
        }
        Item::UnitEnum { name, variants } => {
            let mut body = format!("match serde::de::variant(value, \"{name}\")? {{\n");
            for v in &variants {
                body.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
            }
            body.push_str(&format!(
                "other => Err(serde::de::unknown_variant(other, \"{name}\")),\n}}"
            ));
            de_impl_block(&name, &body)
        }
    };
    out.parse()
        .expect("derive(Deserialize) generated invalid code")
}

fn impl_block(name: &str, body: &str) -> String {
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n\
         }}"
    )
}

fn de_impl_block(name: &str, body: &str) -> String {
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &serde::json::Value) \
                 -> Result<Self, serde::json::Error> {{\n{body}\n}}\n\
         }}"
    )
}
