//! Minimal in-tree replacement for `criterion`, vendored because the build
//! environment has no crates.io access.
//!
//! Implements the calling convention of criterion 0.5 benches —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] / [`criterion_main!`] —
//! with a simple mean-of-samples timer instead of criterion's statistical
//! machinery. Results are printed as `group/bench  time: [..]` lines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batch sizing (accepted for API compatibility; the shim
/// always sets up per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sampling budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// No-op, for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_bench(&cfg, &name.into(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_bench(self.criterion, &label, f);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_bench(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        while self.samples.len() < self.sample_size && start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh values from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let start = Instant::now();
        while self.samples.len() < self.sample_size && start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F>(cfg: &Criterion, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass: run the closure once with a tiny budget.
    let mut warmup = Bencher {
        samples: Vec::new(),
        budget: cfg.warm_up_time,
        sample_size: cfg.sample_size.min(3),
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        samples: Vec::new(),
        budget: cfg.measurement_time,
        sample_size: cfg.sample_size,
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<40} time: [no samples]");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{label:<40} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group — both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; ignore all arguments.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn iter_runs() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &5u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
