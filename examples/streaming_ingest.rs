//! Ingest-while-resolving demo: feed a synthetic twin to a
//! [`ProgressiveSession`] in batches and watch recall climb epoch by epoch,
//! then confirm the Same-Eventual-Quality invariant against the one-shot
//! batch run.
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use sper::prelude::*;
use sper_model::Attribute;
use std::collections::HashSet;

fn main() {
    let data = DatasetSpec::paper(DatasetKind::Census).generate();
    let method = ProgressiveMethod::Pps;
    println!(
        "census twin: {} profiles, {} true matches; streaming with {} in 4 batches\n",
        data.profiles.len(),
        data.truth.num_matches(),
        method.name(),
    );

    // The exhaustive (unpruned) regime, under which the cumulative streamed
    // emission set is *exactly* the batch emission set (see sper-stream docs).
    let config = SessionConfig::exhaustive(method);
    let rows: Vec<Vec<Attribute>> = data.profiles.iter().map(|p| p.attributes.clone()).collect();
    let batches: Vec<Vec<Vec<Attribute>>> = rows
        .chunks(rows.len().div_ceil(4))
        .map(|c| c.to_vec())
        .collect();

    let (recall, reports) = run_streaming(
        ProfileCollectionBuilder::dirty().build(),
        batches,
        config.clone(),
        None,
        &data.truth,
    );

    println!("epoch  +profiles  emissions  suppressed  recall   reprioritize");
    for (mark, report) in recall.epochs.iter().zip(&reports) {
        println!(
            "{:<5}  {:<9}  {:<9}  {:<10}  {:.4}   {:?}",
            mark.epoch,
            report.ingested,
            mark.emissions_end,
            report.suppressed,
            mark.recall,
            report.init_time,
        );
    }

    // Same Eventual Quality: the streamed run's cumulative pairs equal the
    // batch method's pairs on the final collection.
    let batch_pairs: HashSet<Pair> =
        sper::core::build_method(method, &data.profiles, &config.config, None)
            .map(|c| c.pair)
            .collect();
    let streamed: u64 = recall.curve.emissions();
    assert_eq!(streamed as usize, batch_pairs.len());
    println!(
        "\nstreamed {} comparisons == batch emission set ({} pairs): eventual quality preserved",
        streamed,
        batch_pairs.len(),
    );
    println!("final recall: {:.4}", recall.final_recall());
}
