//! Crowdsourced-style ER with a perfect transitive oracle (extension of
//! §2's discussion).
//!
//! ```text
//! cargo run --release --example oracle_crowdsourcing
//! ```
//!
//! A progressive method decides which pair to ask the "crowd" next; the
//! crowd answers perfectly and transitively. A cluster of k duplicates then
//! costs only k−1 positive answers instead of k(k−1)/2 — on cluster-heavy
//! data the saving is enormous.

use sper::prelude::*;
use sper_datagen::DatasetKind;
use sper_eval::oracle::run_with_oracle;

fn main() {
    // Cora-like data: few entities, many citations each.
    let data = DatasetSpec::paper(DatasetKind::Cora)
        .with_scale(0.3)
        .generate();
    let total = data.truth.num_matches();
    println!(
        "cora twin at 0.3 scale: {} profiles, {} duplicate pairs\n",
        data.profiles.len(),
        total
    );

    let config = MethodConfig::default();
    println!(
        "{:<8} {:>9} {:>10} {:>14} {:>8}",
        "method", "queries", "positives", "deduced pairs", "recall"
    );
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::GsPsn] {
        let m =
            sper::core::build_method(method, &data.profiles, &config, data.schema_keys.as_deref());
        let result = run_with_oracle(m, &data.truth, data.profiles.len(), total as u64 * 30);
        println!(
            "{:<8} {:>9} {:>10} {:>14} {:>8.3}",
            result.method,
            result.queries,
            result.positive_queries,
            result.curve.matches_found() as u64 - result.positive_queries,
            result.curve.final_recall(),
        );
    }

    println!(
        "\nwithout transitivity every one of the {total} pairs would need its\n\
         own crowd task; with it, most pairs come for free."
    );
}
