//! Method selection guidelines (§8): which progressive method should you
//! use for your data?
//!
//! ```text
//! cargo run --release --example method_selection
//! ```
//!
//! The paper's conclusion, reproduced live:
//! * **structured/curated data** (character-level noise) → similarity-based
//!   methods (LS-PSN / GS-PSN) excel;
//! * **semi-structured/RDF data** (token-level noise, URIs) → only the
//!   equality-based methods (PBS / PPS) stay robust;
//! * PBS has the cheapest initialization; PPS the best overall
//!   progressiveness.

use sper::prelude::*;
use sper_datagen::DatasetKind;

fn run(kind: DatasetKind, scale: f64) -> Vec<(&'static str, f64)> {
    let data = DatasetSpec::paper(kind).with_scale(scale).generate();
    let config = if DatasetKind::STRUCTURED.contains(&kind) {
        MethodConfig::default()
    } else {
        MethodConfig::heterogeneous()
    };
    let options = RunOptions {
        max_ec_star: 10.0,
        stop_at_full_recall: true,
    };
    ProgressiveMethod::ADVANCED
        .into_iter()
        .map(|m| {
            let result = run_progressive(
                || {
                    sper::core::build_method(
                        m,
                        &data.profiles,
                        &config,
                        data.schema_keys.as_deref(),
                    )
                },
                &data.truth,
                options,
            );
            (m.name(), result.auc(10.0))
        })
        .collect()
}

fn main() {
    println!("AUC*@10 of the four advanced methods on two data regimes:\n");

    println!("structured (restaurant twin — curated, character-level noise):");
    let mut structured = run(DatasetKind::Restaurant, 1.0);
    structured.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, auc) in &structured {
        println!("   {name:<8} {auc:.3}");
    }

    println!("\nsemi-structured (freebase twin — RDF, URIs, token-level noise):");
    let mut rdf = run(DatasetKind::Freebase, 0.15);
    rdf.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, auc) in &rdf {
        println!("   {name:<8} {auc:.3}");
    }

    let best_rdf = rdf[0].0;
    println!(
        "\nguideline: similarity-based methods only for structured data;\n\
         equality-based methods ({best_rdf} here) are robust everywhere.\n\
         Pick PBS for the tightest init budgets, PPS otherwise (§8)."
    );
}
