//! Quickstart: resolve a handful of heterogeneous profiles progressively.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's running example (Fig. 3): six profiles extracted
//! from a data lake — relational rows, RDF resources and free text — with
//! no shared schema. We run PPS (the best all-round method) and print the
//! comparisons in the order a pay-as-you-go application would receive them.

use sper::prelude::*;

fn main() {
    // 1. Assemble profiles from heterogeneous sources. Attribute names are
    //    free-form; the methods never look at them.
    let mut builder = ProfileCollectionBuilder::dirty();
    let p1 = builder.add_profile([
        ("Name", "Carl"),
        ("Surname", "White"),
        ("City", "NY"),
        ("Profession", "Tailor"),
    ]);
    let p2 = builder.add_profile([
        (":livesIn", "NY"),
        (":n", "Carl_White"),
        (":workAs", "Tailor"),
    ]);
    let p3 = builder.add_profile([(":loc", "NY"), (":n", "Karl_White"), (":job", "Tailor")]);
    let p4 = builder.add_profile([
        ("Name", "Ellen"),
        ("Surname", "White"),
        ("City", "ML"),
        ("Profession", "Teacher"),
    ]);
    let p5 = builder.add_profile([("text", "Hellen White, ML teacher")]);
    let p6 = builder.add_profile([("text", "Emma White, WI Tailor")]);
    let profiles = builder.build();
    println!("{} profiles from 3 kinds of sources\n", profiles.len());

    // 2. Build a progressive method. PPS = Progressive Profile Scheduling:
    //    blocks → blocking graph → duplication likelihood per profile.
    //    (The 10% purging default is meant for large collections, so we use
    //    raw token blocks here.)
    let blocks = sper::blocking::TokenBlocking::default().build(&profiles);
    let pps = sper::core::pps::Pps::from_blocks(blocks, WeightingScheme::Arcs, 3);

    // 3. Consume comparisons best-first. A real application would stop
    //    whenever its time budget runs out — recall is front-loaded.
    println!("{:<6} {:>12} {:>9}", "rank", "comparison", "weight");
    for (rank, c) in pps.enumerate().take(8) {
        println!(
            "{:<6} {:>12} {:>9.3}",
            rank + 1,
            format!("{}", c.pair),
            c.weight
        );
    }

    // The true matches of this example:
    println!("\nground truth: {p1}≡{p2}≡{p3} and {p4}≡{p5}; {p6} is unique");
}
