//! Dirty ER on the census twin: compare the schema-based baseline (PSN)
//! against the schema-agnostic methods under a fixed comparison budget.
//!
//! ```text
//! cargo run --release --example dirty_er_census
//! ```
//!
//! Mirrors §7.1: on a curated, structured dataset the weighted
//! sorted-neighborhood methods (LS-PSN / GS-PSN) dominate, without needing
//! the domain expertise PSN's key requires.

use sper::prelude::*;
use sper_datagen::DatasetKind;

fn main() {
    // The Table 2 census twin: 841 profiles, 344 duplicate pairs.
    let data = DatasetSpec::paper(DatasetKind::Census).generate();
    println!(
        "census twin: {} profiles, {} true matches",
        data.profiles.len(),
        data.truth.num_matches()
    );
    println!("budget: ec* = 10 (ten comparisons per existing match)\n");

    let config = MethodConfig::default();
    let options = RunOptions {
        max_ec_star: 10.0,
        stop_at_full_recall: true,
    };

    println!(
        "{:<9} {:>8} {:>8} {:>9} {:>9}",
        "method", "recall", "AUC*@10", "found", "repeats"
    );
    for method in [
        ProgressiveMethod::Psn,
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ] {
        let result = run_progressive(
            || {
                sper::core::build_method(
                    method,
                    &data.profiles,
                    &config,
                    data.schema_keys.as_deref(),
                )
            },
            &data.truth,
            options,
        );
        println!(
            "{:<9} {:>8.3} {:>8.3} {:>9} {:>9}",
            method.name(),
            result.curve.final_recall(),
            result.auc(10.0),
            result.curve.matches_found(),
            result.repeated_emissions,
        );
    }

    println!(
        "\nPSN needed a hand-crafted key (Soundex(surname)+initials+zip);\n\
         the schema-agnostic methods needed nothing."
    );
}
