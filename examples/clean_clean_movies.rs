//! Clean-clean ER on the movies twin: linking an IMDB-style catalog to a
//! DBpedia-style one under a real match function and a wall-clock budget.
//!
//! ```text
//! cargo run --release --example clean_clean_movies
//! ```
//!
//! Mirrors §7.3: the progressive method decides the comparison *order*;
//! a Jaccard matcher (cheap) decides matches. A pay-as-you-go catalog
//! update would stop after its time slice — we show how much recall each
//! method banks in the same number of comparisons.

use sper::prelude::*;
use sper_datagen::DatasetKind;
use sper_model::{JaccardMatcher, ProfileText};

fn main() {
    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(0.1)
        .generate();
    println!(
        "movies twin: |P1| = {} (imdb-like, 4 attrs), |P2| = {} (dbpedia-like, 7 attrs)",
        data.profiles.len_first(),
        data.profiles.len_second()
    );
    println!(
        "{} true matches; schemata are disjoint\n",
        data.truth.num_matches()
    );

    let text = ProfileText::extract(&data.profiles);
    let matcher = JaccardMatcher::new(&text, 0.5);
    let config = MethodConfig::heterogeneous();
    let options = sper_eval::timing::TimingOptions {
        max_ec_star: 5.0,
        checkpoints: 10,
    };

    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>12}",
        "method", "init", "final recall", "declared", "total time"
    );
    for method in [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ] {
        let result = sper_eval::timing::run_timed(
            || {
                sper::core::build_method(
                    method,
                    &data.profiles,
                    &config,
                    data.schema_keys.as_deref(),
                )
            },
            &matcher,
            &data.truth,
            options,
        );
        println!(
            "{:<8} {:>10?} {:>12.3} {:>14} {:>12?}",
            result.method,
            result.init_time,
            result.final_recall(),
            result.declared_matches,
            result.trajectory.last().unwrap().0,
        );
    }

    println!(
        "\nSame emission budget (ec* = 5) for everyone: the equality-based\n\
         methods bank most of the recall, exactly as in Fig. 11a."
    );
}
