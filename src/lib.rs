//! # sper — Schema-agnostic Progressive Entity Resolution
//!
//! Façade crate re-exporting the whole workspace. See the README for a tour
//! and `DESIGN.md` for the system inventory.
//!
//! ```
//! use sper::prelude::*;
//!
//! let mut b = ProfileCollectionBuilder::dirty();
//! b.add_profile([("name", "Carl White"), ("job", "tailor")]);
//! b.add_profile([("fullname", "Karl White"), ("profession", "tailor")]);
//! let profiles = b.build();
//! assert_eq!(profiles.len(), 2);
//! ```

pub use sper_blocking as blocking;
pub use sper_core as core;
pub use sper_datagen as datagen;
pub use sper_eval as eval;
pub use sper_model as model;
pub use sper_obs as obs;
pub use sper_store as store;
pub use sper_stream as stream;
pub use sper_text as text;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use sper_blocking::{
        filtering::BlockFilter, graph::BlockingGraph, neighbor_list::NeighborList,
        profile_index::ProfileIndex, purging::BlockPurger, token_blocking::TokenBlocking,
        weights::WeightingScheme, BlockCollection, TokenBlockingWorkflow,
    };
    pub use sper_core::{
        gs_psn::GsPsn, ls_psn::LsPsn, pbs::Pbs, pps::Pps, psn::Psn, sa_psab::SaPsab, sa_psn::SaPsn,
        Comparison, MethodConfig, Parallelism, ProgressiveEr, ProgressiveMethod, ZeroThreads,
    };
    pub use sper_datagen::{DatasetKind, DatasetSpec, GeneratedDataset};
    pub use sper_eval::{
        auc::{mean_normalized_auc, normalized_auc},
        curve::RecallCurve,
        runner::{run_progressive, RunOptions, RunResult},
        timing::{run_timed, TimedResult, TimingOptions},
    };
    pub use sper_model::{
        ErKind, GroundTruth, MatchFunction, Pair, Profile, ProfileCollection,
        ProfileCollectionBuilder, ProfileId, SourceId,
    };
    pub use sper_store::{
        CheckpointOutcome, CheckpointWriter, OnCheckpointFailure, RetryPolicy, SalvageReport,
        SessionCheckpoint, Snapshot, StoreError,
    };
    pub use sper_stream::{
        run_streaming, run_streaming_with, EpochOutcome, EpochReport, ProgressiveSession,
        SessionConfig, SessionState,
    };
}
