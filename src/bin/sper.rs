//! `sper` — command-line progressive entity resolution over CSV files.
//!
//! ```text
//! sper resolve <profiles.csv> [--method pps] [--budget 5000] [--threshold 0.5]
//! sper evaluate <profiles.csv> <matches.csv> [--method pps] [--ec-star 10]
//! sper generate <dataset> [--scale 1.0] [--out profiles.csv --truth matches.csv]
//! sper stream   <dataset|profiles.csv> [--method pps] [--batches 5]
//!               [--epoch-budget N] [--truth matches.csv] [--exhaustive]
//! ```
//!
//! * `resolve` — emit likely matches best-first, scored with the Jaccard
//!   match function, until the comparison budget is spent.
//! * `evaluate` — given a ground-truth match file (`id,id` per line),
//!   report recall progressiveness and `AUC*`.
//! * `generate` — write one of the seven synthetic twins to CSV.
//! * `stream` — ingest-while-resolving: feed the profiles to a
//!   [`ProgressiveSession`] in batches and report each `ingest →
//!   reprioritize → emit` epoch (plus per-epoch recall when a ground truth
//!   is available).

use sper::prelude::*;
use sper_model::io as model_io;
use sper_model::{Attribute, JaccardMatcher, ProfileText};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sper resolve  <profiles.csv> [--method psn|sa-psn|sa-psab|ls-psn|gs-psn|pbs|pps]
                [--budget N] [--threshold T] [--threads N]
  sper evaluate <profiles.csv> <matches.csv> [--method M] [--ec-star X] [--threads N]
  sper generate <census|restaurant|cora|cddb|movies|dbpedia|freebase>
                [--scale S] [--out FILE] [--truth FILE]
  sper stream   <dataset|profiles.csv> [--method M] [--batches N]
                [--epoch-budget N] [--scale S] [--truth FILE] [--exhaustive]
                [--threads N]

--threads defaults to the machine's available parallelism; results are
bit-identical at any thread count.";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `--threads N` (validated ≥ 1), defaulting to the machine's available
/// parallelism. Emission order does not depend on the choice.
fn parse_threads(args: &[String]) -> Result<Parallelism, String> {
    match args.iter().position(|a| a == "--threads") {
        None => Ok(Parallelism::available()),
        Some(i) => {
            // A present flag must have a value: silently falling back to
            // the default would mask a misconfiguration.
            let s = args.get(i + 1).ok_or("--threads needs a value")?;
            let n: usize = s.parse().map_err(|e| format!("--threads: {e}"))?;
            Parallelism::new(n).map_err(|e| format!("--threads: {e}"))
        }
    }
}

fn parse_method(s: &str) -> Result<ProgressiveMethod, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "psn" => ProgressiveMethod::Psn,
        "sa-psn" => ProgressiveMethod::SaPsn,
        "sa-psab" => ProgressiveMethod::SaPsab,
        "ls-psn" => ProgressiveMethod::LsPsn,
        "gs-psn" => ProgressiveMethod::GsPsn,
        "pbs" => ProgressiveMethod::Pbs,
        "pps" => ProgressiveMethod::Pps,
        other => return Err(format!("unknown method '{other}'")),
    })
}

fn parse_dataset(s: &str) -> Result<DatasetKind, String> {
    DatasetKind::ALL
        .into_iter()
        .find(|k| k.name() == s.to_ascii_lowercase())
        .ok_or_else(|| format!("unknown dataset '{s}'"))
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("resolve") => resolve(args),
        Some("evaluate") => evaluate(args),
        Some("generate") => generate(args),
        Some("stream") => stream(args),
        _ => Err("missing or unknown subcommand".into()),
    }
}

fn load_profiles(path: &str) -> Result<ProfileCollection, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    model_io::read_csv(&text).map_err(|e| format!("{path}: {e}"))
}

fn resolve(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("resolve needs a CSV path")?;
    let profiles = load_profiles(path)?;
    let method = parse_method(&flag(args, "--method").unwrap_or_else(|| "pps".into()))?;
    if method.is_schema_based() {
        return Err("PSN needs schema keys; use a schema-agnostic method".into());
    }
    let budget: u64 = flag(args, "--budget")
        .map(|s| s.parse().map_err(|e| format!("--budget: {e}")))
        .transpose()?
        .unwrap_or(10 * profiles.len() as u64);
    let threshold: f64 = flag(args, "--threshold")
        .map(|s| s.parse().map_err(|e| format!("--threshold: {e}")))
        .transpose()?
        .unwrap_or(0.5);

    let threads = parse_threads(args)?;
    eprintln!(
        "{} profiles; method {}; budget {budget} comparisons; jaccard ≥ {threshold}; {threads} threads",
        profiles.len(),
        method.name()
    );
    let config = MethodConfig::default().with_threads(threads);
    let text = ProfileText::extract(&profiles);
    let matcher = JaccardMatcher::new(&text, threshold);
    let m = sper::core::build_method(method, &profiles, &config, None);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // A closed downstream pipe (e.g. `| head`) is a normal way to stop a
    // progressive run early — treat it as success.
    let write_row = |out: &mut dyn Write, line: String| -> Result<bool, String> {
        match writeln!(out, "{line}") {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
            Err(e) => Err(e.to_string()),
        }
    };
    let mut emitted = 0u64;
    let mut declared = 0u64;
    let mut seen = std::collections::HashSet::new();
    if !write_row(&mut out, "profile_a,profile_b,jaccard".into())? {
        return Ok(());
    }
    for c in m {
        if emitted >= budget {
            break;
        }
        emitted += 1;
        if !seen.insert(c.pair) {
            continue;
        }
        let sim = matcher.similarity(c.pair.first, c.pair.second);
        if sim >= threshold {
            declared += 1;
            let row = format!("{},{},{sim:.4}", c.pair.first.0, c.pair.second.0);
            if !write_row(&mut out, row)? {
                return Ok(());
            }
        }
    }
    eprintln!("{emitted} comparisons emitted, {declared} matches declared");
    Ok(())
}

fn evaluate(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("evaluate needs a profiles CSV path")?;
    let matches_path = args.get(2).ok_or("evaluate needs a matches CSV path")?;
    let profiles = load_profiles(path)?;
    let truth_text = std::fs::read(matches_path).map_err(|e| format!("{matches_path}: {e}"))?;
    let truth = model_io::read_matches(&truth_text[..], profiles.len())
        .map_err(|e| format!("{matches_path}: {e}"))?;
    let method = parse_method(&flag(args, "--method").unwrap_or_else(|| "pps".into()))?;
    let ec_star: f64 = flag(args, "--ec-star")
        .map(|s| s.parse().map_err(|e| format!("--ec-star: {e}")))
        .transpose()?
        .unwrap_or(10.0);

    let config = MethodConfig::default().with_threads(parse_threads(args)?);
    let result = run_progressive(
        || sper::core::build_method(method, &profiles, &config, None),
        &truth,
        RunOptions {
            max_ec_star: ec_star,
            stop_at_full_recall: true,
        },
    );
    println!("method        : {}", result.method);
    println!("|P|           : {}", profiles.len());
    println!("|DP|          : {}", truth.num_matches());
    println!("emissions     : {}", result.curve.emissions());
    println!("matches found : {}", result.curve.matches_found());
    println!("final recall  : {:.4}", result.curve.final_recall());
    println!("AUC*@{ec_star:<7}: {:.4}", result.auc(ec_star));
    println!("init time     : {:?}", result.init_time);
    Ok(())
}

/// Ingest-while-resolving over a dataset name (generated twin, ground
/// truth included) or a profiles CSV (ground truth via `--truth`).
fn stream(args: &[String]) -> Result<(), String> {
    let source = args
        .get(1)
        .ok_or("stream needs a dataset name or CSV path")?;
    let method = parse_method(&flag(args, "--method").unwrap_or_else(|| "pps".into()))?;
    if method.is_schema_based() {
        return Err("PSN needs schema keys; streaming is schema-agnostic".into());
    }
    let n_batches: usize = flag(args, "--batches")
        .map(|s| s.parse().map_err(|e| format!("--batches: {e}")))
        .transpose()?
        .unwrap_or(5);
    if n_batches == 0 {
        return Err("--batches must be ≥ 1".into());
    }
    let epoch_budget: Option<u64> = flag(args, "--epoch-budget")
        .map(|s| s.parse().map_err(|e| format!("--epoch-budget: {e}")))
        .transpose()?;

    let (profiles, truth) = match parse_dataset(source) {
        Ok(kind) => {
            let scale: f64 = flag(args, "--scale")
                .map(|s| s.parse().map_err(|e| format!("--scale: {e}")))
                .transpose()?
                .unwrap_or(1.0);
            let data = DatasetSpec::paper(kind).with_scale(scale).generate();
            (data.profiles, Some(data.truth))
        }
        Err(_) => {
            let profiles = load_profiles(source)?;
            let truth = flag(args, "--truth")
                .map(|p| {
                    let text = std::fs::read(&p).map_err(|e| format!("{p}: {e}"))?;
                    model_io::read_matches(&text[..], profiles.len())
                        .map_err(|e| format!("{p}: {e}"))
                })
                .transpose()?;
            (profiles, truth)
        }
    };

    let session_config = if args.iter().any(|a| a == "--exhaustive") {
        SessionConfig::exhaustive(method)
    } else {
        SessionConfig::new(method)
    }
    .with_threads(parse_threads(args)?);
    // Dirty tasks stream every profile into an empty base. Clean-clean
    // tasks fix `P1` as the session base and stream only `P2` — appends to
    // a Clean-clean collection join the second source, so ids (and the
    // ground truth) line up with the batch collection.
    let (initial, rows): (ProfileCollection, Vec<Vec<Attribute>>) = match profiles.kind() {
        ErKind::Dirty => (
            ProfileCollectionBuilder::dirty().build(),
            profiles.iter().map(|p| p.attributes.clone()).collect(),
        ),
        ErKind::CleanClean => {
            let split = profiles.len_first();
            let mut b = ProfileCollectionBuilder::clean_clean();
            for p in profiles.iter().take(split) {
                b.add_attributes(p.attributes.clone());
            }
            b.start_second_source();
            (
                b.build(),
                profiles
                    .iter()
                    .skip(split)
                    .map(|p| p.attributes.clone())
                    .collect(),
            )
        }
    };
    eprintln!(
        "streaming {} profiles into {} batches (base: {}); method {}; epoch budget {}",
        rows.len(),
        n_batches,
        initial.len(),
        method.name(),
        epoch_budget.map_or("∞".into(), |b| b.to_string()),
    );
    let chunk = rows.len().div_ceil(n_batches).max(1);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(chunk).map(|c| c.to_vec()).collect();
    println!("epoch,ingested,profiles,new_emissions,suppressed,init_us,emit_us");
    let (recall, _reports) = run_streaming_with(
        initial,
        batches,
        session_config,
        epoch_budget,
        truth.as_ref(),
        |outcome| {
            let r = &outcome.report;
            println!(
                "{},{},{},{},{},{},{}",
                r.epoch,
                r.ingested,
                r.profiles_total,
                r.new_emissions,
                r.suppressed,
                r.init_time.as_micros(),
                r.emission_time.as_micros(),
            );
        },
    );

    if let Some(recall) = recall {
        eprintln!();
        eprintln!("epoch  profiles  emissions  new_matches  recall");
        for m in &recall.epochs {
            eprintln!(
                "{:<5}  {:<8}  {:<9}  {:<11}  {:.4}",
                m.epoch, m.profiles_total, m.emissions_end, m.new_matches, m.recall
            );
        }
        eprintln!(
            "final recall {:.4} ({} matches) over {} emissions",
            recall.final_recall(),
            recall.curve.matches_found(),
            recall.curve.emissions(),
        );
    } else {
        eprintln!("(no ground truth — pass --truth FILE for per-epoch recall)");
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let kind = parse_dataset(args.get(1).ok_or("generate needs a dataset name")?)?;
    let scale: f64 = flag(args, "--scale")
        .map(|s| s.parse().map_err(|e| format!("--scale: {e}")))
        .transpose()?
        .unwrap_or(1.0);
    let data = DatasetSpec::paper(kind).with_scale(scale).generate();
    eprintln!(
        "{}: {} profiles, {} matches",
        kind,
        data.profiles.len(),
        data.truth.num_matches()
    );
    match flag(args, "--out") {
        Some(path) => {
            let mut f = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            model_io::write_csv(&data.profiles, &mut f).map_err(|e| e.to_string())?;
            eprintln!("profiles → {path}");
        }
        None => {
            let stdout = std::io::stdout();
            model_io::write_csv(&data.profiles, &mut stdout.lock()).map_err(|e| e.to_string())?;
        }
    }
    if let Some(path) = flag(args, "--truth") {
        let mut f = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
        model_io::write_matches(&data.truth, &mut f).map_err(|e| e.to_string())?;
        eprintln!("truth → {path}");
    }
    Ok(())
}
