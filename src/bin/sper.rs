//! `sper` — command-line progressive entity resolution over CSV files.
//!
//! ```text
//! sper resolve  <profiles.csv> [--method pps] [--budget 5000] [--threshold 0.5]
//! sper evaluate <profiles.csv> <matches.csv> [--method pps] [--ec-star 10]
//! sper generate <dataset> [--scale 1.0] [--out profiles.csv --truth matches.csv]
//! sper stream   <dataset|profiles.csv> [--method pps] [--batches 5]
//!               [--epoch-budget N] [--truth matches.csv] [--exhaustive]
//!               [--checkpoint run.sper] [--checkpoint-every N]
//!               [--on-checkpoint-failure abort|continue]
//!               [--mutations feed.txt] [--emit-pairs pairs.csv]
//! sper snapshot <dataset|profiles.csv> [--out snapshot.sper] [--with-graph]
//! sper snapshot <corrupt.sper> --salvage [--out salvaged.sper]
//! sper resume   <run.sper> [--epoch-budget N] [--checkpoint run.sper]
//!               [--emit-pairs pairs.csv]
//! sper report   --trace run.jsonl [--metrics run.json] [--recall recall.csv]
//!               [--out report.html] [--title NAME]
//! ```
//!
//! * `resolve` — emit likely matches best-first, scored with the Jaccard
//!   match function, until the comparison budget is spent.
//! * `evaluate` — given a ground-truth match file (`id,id` per line),
//!   report recall progressiveness and `AUC*`.
//! * `generate` — write one of the seven synthetic twins to CSV.
//! * `stream` — ingest-while-resolving: feed the profiles to a
//!   [`ProgressiveSession`] in batches and report each `ingest →
//!   reprioritize → emit` epoch; `--checkpoint` persists the session
//!   every `--checkpoint-every` epochs so a later `sper resume` continues
//!   exactly where the run stopped. `--mutations FILE` scripts
//!   update/delete operations against the stream (see [`load_mutations`]
//!   for the line format); `--emit-pairs FILE` dumps every emission as
//!   `first,second,weight-bits` for bit-exact diffing between runs.
//! * `snapshot` — build the columnar substrates (blocks, profile index,
//!   neighbor list, optionally the materialized blocking graph) and write
//!   them to a versioned, checksummed `.sper` store for instant reload.
//!   With `--salvage` the positional argument is instead a corrupted
//!   `.sper` file: every section whose CRC still validates is recovered
//!   and rewritten to `--out`, with a report of what was lost.
//! * `resume` — rehydrate a checkpointed session and drain its remaining
//!   emissions, bit-identical to what the original run would have emitted.
//!   When the checkpoint is corrupt, resume falls back to the rotated
//!   last-good `.prev` generation with a warning.
//!
//! Checkpoints are written with last-good rotation (`FILE` + `FILE.prev`)
//! through a retrying writer; `--on-checkpoint-failure continue` lets a
//! run outlive a dead checkpoint disk (the default, `abort`, stops it).
//! `--failpoints SPEC` (or the `SPER_FAILPOINTS` env var) arms the
//! deterministic fault-injection harness — see `sper_obs::fault` for the
//! grammar.
//!
//! Every failure path reports a typed error and a nonzero exit code:
//! usage errors exit 2, runtime errors (IO, corrupt stores, bad data)
//! exit 1. Salvage-with-losses and `.prev`-fallback resume succeed (exit
//! 0) with warnings: recovering *something* is these modes' job.
//!
//! * `report` — fuse a `--trace` JSONL and a `--metrics` JSON dump (plus
//!   an optional recall CSV) into one self-contained HTML file.
//!
//! Observability flags (valid after any subcommand): `-v`/`-vv` stream
//! human-readable progress to stderr, `--trace FILE` writes a
//! machine-readable JSON-lines trace, `--metrics FILE` dumps the metrics
//! registry on exit (Prometheus text format, or JSON when FILE ends in
//! `.json`). The stderr sink filters to its own `-v` level independently
//! of every other sink: `--trace` alone prints nothing to the terminal.
//!
//! Live introspection: `--listen ADDR` starts a scrape endpoint
//! (`/metrics`, `/healthz`, `/buildz`, `/tracez`) on a background thread
//! for the duration of the run; `--profile FILE` writes collapsed stacks
//! (flamegraph.pl/inferno format) and `--chrome-trace FILE` a Perfetto-
//! loadable trace-event JSON, both aggregated from the span stream;
//! `--progress` renders a single in-place status line on a TTY stderr.
//! None of it changes emissions: all output-producing paths are
//! bit-identical with observability on or off.

use sper::prelude::*;
use sper_model::io as model_io;
use sper_model::{Attribute, JaccardMatcher, ProfileId, ProfileText};
use sper_obs::{event, span, Level};
use std::io::{IsTerminal, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The counting allocator behind the `--progress` peak-RSS readout and
/// the per-epoch `cli.epoch_alloc` trace events. Two relaxed atomic ops
/// per allocation — unobservable next to the allocation itself.
#[global_allocator]
static ALLOC: sper_obs::PeakAllocTracker = sper_obs::PeakAllocTracker::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = match ObsSetup::from_args(&args) {
        Ok(obs) => obs,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let result = run(&args);
    if let Err(err) = obs.finish() {
        eprintln!("error: {err}");
        return ExitCode::FAILURE;
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The observability configuration of one invocation: sinks (and the
/// scrape server) installed up front, exports written after the
/// subcommand returns.
struct ObsSetup {
    metrics_out: Option<String>,
    profile_out: Option<String>,
    chrome_out: Option<String>,
    /// In-process record capture feeding `--profile`/`--chrome-trace`.
    capture: Option<Arc<sper_obs::CaptureSink>>,
    /// The `--listen` scrape server, held open for the whole run.
    server: Option<sper_obs::ObsServer>,
    /// The `--progress` status-line renderer, if active.
    progress: Option<ProgressLine>,
}

impl ObsSetup {
    /// Parses the observability flags (`-v`/`-vv`, `--trace`, `--metrics`,
    /// `--listen`, `--profile`, `--chrome-trace`, `--progress`),
    /// installing sinks, starting the scrape server, and enabling the
    /// metrics registry as requested.
    ///
    /// Each sink filters independently: the stderr sink shows exactly the
    /// `-v` level however detailed the global threshold is, while the
    /// trace file, the flight-recorder ring, and the profiler capture
    /// always get Debug detail. The global threshold is the most detailed
    /// level any installed sink wants.
    fn from_args(args: &[String]) -> Result<Self, CliError> {
        let verbosity = args
            .iter()
            .map(|a| match a.as_str() {
                "-v" => 1usize,
                "-vv" => 2,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        // `sper report` *consumes* `--trace`/`--metrics` files; installing
        // the writer sinks would truncate its inputs. Only `-v` applies.
        let reading = args.first().map(String::as_str) == Some("report");
        let trace_path = flag(args, "--trace").filter(|_| !reading);
        let metrics_out = flag(args, "--metrics").filter(|_| !reading);
        let profile_out = flag(args, "--profile").filter(|_| !reading);
        let chrome_out = flag(args, "--chrome-trace").filter(|_| !reading);
        let listen = flag(args, "--listen").filter(|_| !reading);
        let progress_wanted = !reading && args.iter().any(|a| a == "--progress");

        let mut sinks: Vec<Arc<dyn sper_obs::Sink>> = Vec::new();
        if verbosity > 0 {
            let max = if verbosity >= 2 {
                Level::Debug
            } else {
                Level::Info
            };
            sinks.push(Arc::new(sper_obs::StderrSink::new(max)));
        }
        if let Some(path) = &trace_path {
            let sink = sper_obs::JsonLinesSink::create(Path::new(path))
                .map_err(CliError::io(path.as_str()))?;
            sinks.push(Arc::new(sink));
        }
        let capture = (profile_out.is_some() || chrome_out.is_some())
            .then(|| Arc::new(sper_obs::CaptureSink::new()));
        if let Some(capture) = &capture {
            sinks.push(Arc::clone(capture) as Arc<dyn sper_obs::Sink>);
        }
        let ring = listen
            .as_ref()
            .map(|_| Arc::new(sper_obs::RingSink::new(sper_obs::DEFAULT_RING_CAPACITY)));
        if let Some(ring) = &ring {
            sinks.push(Arc::clone(ring) as Arc<dyn sper_obs::Sink>);
        }
        if !sinks.is_empty() {
            // The machine-readable sinks want full Debug detail; stderr
            // keeps filtering itself to the `-v` level either way.
            let level = if verbosity >= 2 || sinks.len() > usize::from(verbosity > 0) {
                Level::Debug
            } else {
                Level::Info
            };
            let sink: Arc<dyn sper_obs::Sink> = if sinks.len() == 1 {
                sinks.pop().expect("one sink")
            } else {
                Arc::new(sper_obs::MultiSink::new(sinks))
            };
            sper_obs::trace::install_sink(sink, level);
        }
        let server = listen
            .map(|addr| {
                let build = sper_obs::BuildInfo {
                    version: env!("CARGO_PKG_VERSION").to_string(),
                    kernel: sper::blocking::KernelPath::active().name().to_string(),
                };
                let server = sper_obs::serve(addr.as_str(), build, ring.clone())
                    .map_err(CliError::io(addr.as_str()))?;
                // The one place the bound address is reported — tests and
                // scripts parse this line to find an ephemeral port.
                eprintln!("listening on {}", server.addr());
                Ok::<_, CliError>(server)
            })
            .transpose()?;
        // The scrape endpoint and the progress line both read the
        // registry, so either one turns it on.
        if metrics_out.is_some() || server.is_some() || progress_wanted {
            sper_obs::metrics::set_enabled(true);
        }
        // The progress line owns the terminal's current row: suppressed
        // when stderr is not a TTY (it would garble piped output) or when
        // `-v` already streams records onto the same stream.
        let progress = (progress_wanted && verbosity == 0 && std::io::stderr().is_terminal())
            .then(ProgressLine::start);
        Ok(Self {
            metrics_out,
            profile_out,
            chrome_out,
            capture,
            server,
            progress,
        })
    }

    /// Stops the live surfaces and writes every requested export: the
    /// metrics dump, the collapsed-stack profile, the Chrome trace.
    fn finish(&mut self) -> Result<(), CliError> {
        if let Some(progress) = self.progress.take() {
            progress.stop();
        }
        sper_obs::trace::clear_sink();
        if let Some(server) = &mut self.server {
            server.shutdown();
        }
        if let Some(capture) = &self.capture {
            let records: Vec<sper_obs::ProfileRecord> =
                capture.records().iter().map(Into::into).collect();
            if let Some(path) = &self.profile_out {
                let profile = sper_obs::SpanProfile::from_records(&records).with_threads(&records);
                std::fs::write(path, profile.to_collapsed())
                    .map_err(CliError::io(path.as_str()))?;
            }
            if let Some(path) = &self.chrome_out {
                std::fs::write(path, sper_obs::chrome_trace(&records))
                    .map_err(CliError::io(path.as_str()))?;
            }
        }
        if let Some(path) = &self.metrics_out {
            let registry = sper_obs::metrics::global();
            let text = if path.ends_with(".json") {
                registry.to_json()
            } else {
                registry.to_prometheus()
            };
            std::fs::write(path, text).map_err(CliError::io(path.as_str()))?;
        }
        Ok(())
    }
}

/// The `--progress` in-place status line: a background thread re-renders
/// one stderr row (epoch, pairs, throughput, peak RSS) from the metrics
/// registry a few times a second, and clears it on stop. Purely
/// observational — it only ever *reads* the registry and the allocator.
struct ProgressLine {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressLine {
    fn start() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sper-progress".to_string())
            .spawn(move || {
                let registry = sper_obs::metrics::global();
                let mut last_raw = 0u64;
                let mut last_t = Instant::now();
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(250));
                    let epoch = registry.gauge("session.epoch").get();
                    let raw = registry.counter("session.raw_emissions").get();
                    let emitted = registry.gauge("session.emitted_total").get();
                    let dt = last_t.elapsed().as_secs_f64();
                    let cps = if dt > 0.0 {
                        (raw.saturating_sub(last_raw)) as f64 / dt
                    } else {
                        0.0
                    };
                    last_raw = raw;
                    last_t = Instant::now();
                    let peak_mib = ALLOC.peak_bytes() as f64 / (1024.0 * 1024.0);
                    // `\r` + clear-to-end keeps the line in place however
                    // much shorter the new render is.
                    eprint!(
                        "\repoch {epoch} · {emitted} pairs · {cps:.0} cmp/s · peak {peak_mib:.0} MiB\x1b[K"
                    );
                }
                eprint!("\r\x1b[K");
            })
            .expect("spawn progress thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Every way a `sper` invocation can fail, with the exit code it maps to.
#[derive(Debug)]
enum CliError {
    /// Bad command line (unknown subcommand, missing operand, bad flag
    /// value). Exit code 2, with usage.
    Usage(String),
    /// A filesystem operation failed. Exit code 1.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// A `.sper` store failed to parse, validate, or write. Exit code 1.
    Store { path: String, source: StoreError },
    /// Input data (CSV, ground truth) failed to parse. Exit code 1.
    Data { path: String, detail: String },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Store { path, source } => write!(f, "{path}: {source}"),
            CliError::Data { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

impl CliError {
    fn io(path: impl Into<String>) -> impl FnOnce(std::io::Error) -> Self {
        let path = path.into();
        move |source| CliError::Io { path, source }
    }

    fn store(path: impl Into<String>) -> impl FnOnce(StoreError) -> Self {
        let path = path.into();
        move |source| CliError::Store { path, source }
    }

    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }
}

const USAGE: &str = "usage:
  sper resolve  <profiles.csv> [--method psn|sa-psn|sa-psab|ls-psn|gs-psn|pbs|pps]
                [--budget N] [--threshold T] [--threads N]
  sper evaluate <profiles.csv> <matches.csv> [--method M] [--ec-star X] [--threads N]
  sper generate <census|restaurant|cora|cddb|movies|dbpedia|freebase>
                [--scale S] [--out FILE] [--truth FILE]
  sper stream   <dataset|profiles.csv> [--method M] [--batches N]
                [--epoch-budget N] [--scale S] [--truth FILE] [--exhaustive]
                [--threads N] [--checkpoint FILE] [--checkpoint-every N]
                [--on-checkpoint-failure abort|continue]
                [--mutations FILE] [--emit-pairs FILE]
  sper snapshot <dataset|profiles.csv> [--scale S] [--seed N] [--out FILE]
                [--with-graph]
  sper snapshot <corrupt.sper> --salvage [--out FILE]
  sper resume   <checkpoint.sper> [--epoch-budget N] [--threads N]
                [--checkpoint FILE] [--emit-pairs FILE]
  sper report   --trace FILE [--metrics FILE] [--recall FILE]
                [--out FILE] [--title NAME]

Observability (any subcommand): -v / -vv print progress to stderr,
--trace FILE writes a JSON-lines span/event trace, --metrics FILE dumps
the metrics registry on exit (Prometheus text, or JSON for *.json).
--listen ADDR serves /metrics /healthz /buildz /tracez while the run is
live (port 0 picks one; the bound address prints to stderr).
--profile FILE writes collapsed stacks (flamegraph.pl/inferno),
--chrome-trace FILE a Perfetto-loadable trace-event JSON.
--progress renders an in-place status line on a TTY stderr
(suppressed under -v). None of these change what gets emitted.

--threads defaults to the machine's available parallelism; results are
bit-identical at any thread count — with or without tracing. Checkpoints
and snapshots are versioned, checksummed binary stores (magic SPER);
`sper resume` continues a checkpointed stream bit-identically.

Fault tolerance: checkpoints rotate the previous generation to
FILE.prev and `sper resume` falls back to it when FILE is corrupt;
`sper snapshot FILE --salvage` recovers the CRC-valid sections of a
damaged store. --failpoints SPEC (or SPER_FAILPOINTS) arms deterministic
fault injection, e.g. 'store.rename=1*err(io);store.fsync=1in5*delay(50)'
(see the sper_obs::fault docs for sites, actions, and triggers).";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    flag(args, name)
        .map(|s| {
            s.parse()
                .map_err(|e| CliError::usage(format!("{name}: {e}")))
        })
        .transpose()
}

/// `--threads N` (validated ≥ 1), defaulting to the machine's available
/// parallelism. Emission order does not depend on the choice.
fn parse_threads(args: &[String]) -> Result<Parallelism, CliError> {
    match args.iter().position(|a| a == "--threads") {
        None => Ok(Parallelism::available()),
        Some(i) => {
            // A present flag must have a value: silently falling back to
            // the default would mask a misconfiguration.
            let s = args
                .get(i + 1)
                .ok_or_else(|| CliError::usage("--threads needs a value"))?;
            let n: usize = s
                .parse()
                .map_err(|e| CliError::usage(format!("--threads: {e}")))?;
            Parallelism::new(n).map_err(|e| CliError::usage(format!("--threads: {e}")))
        }
    }
}

fn parse_method(s: &str) -> Result<ProgressiveMethod, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "psn" => ProgressiveMethod::Psn,
        "sa-psn" => ProgressiveMethod::SaPsn,
        "sa-psab" => ProgressiveMethod::SaPsab,
        "ls-psn" => ProgressiveMethod::LsPsn,
        "gs-psn" => ProgressiveMethod::GsPsn,
        "pbs" => ProgressiveMethod::Pbs,
        "pps" => ProgressiveMethod::Pps,
        other => return Err(CliError::usage(format!("unknown method '{other}'"))),
    })
}

fn method_flag(args: &[String]) -> Result<ProgressiveMethod, CliError> {
    parse_method(&flag(args, "--method").unwrap_or_else(|| "pps".into()))
}

fn parse_dataset(s: &str) -> Result<DatasetKind, CliError> {
    DatasetKind::ALL
        .into_iter()
        .find(|k| k.name() == s.to_ascii_lowercase())
        .ok_or_else(|| CliError::usage(format!("unknown dataset '{s}'")))
}

/// Arms the fault-injection harness: `--failpoints SPEC` wins over the
/// `SPER_FAILPOINTS` environment variable. A malformed spec is a usage
/// error (exit 2) — a typo must not silently run an unfaulted schedule.
fn arm_failpoints(args: &[String]) -> Result<(), CliError> {
    match flag(args, "--failpoints") {
        Some(spec) => sper_obs::fault::arm(&spec),
        None => sper_obs::fault::arm_from_env(),
    }
    .map(|_| ())
    .map_err(|e| CliError::usage(e.to_string()))
}

fn run(args: &[String]) -> Result<(), CliError> {
    arm_failpoints(args)?;
    match args.first().map(String::as_str) {
        Some("resolve") => resolve(args),
        Some("evaluate") => evaluate(args),
        Some("generate") => generate(args),
        Some("stream") => stream(args),
        Some("snapshot") => snapshot(args),
        Some("resume") => resume(args),
        Some("report") => report(args),
        _ => Err(CliError::usage("missing or unknown subcommand")),
    }
}

fn load_profiles(path: &str) -> Result<ProfileCollection, CliError> {
    let text = std::fs::read_to_string(path).map_err(CliError::io(path))?;
    model_io::read_csv(&text).map_err(|e| CliError::Data {
        path: path.into(),
        detail: e.to_string(),
    })
}

fn load_truth(path: &str, n_profiles: usize) -> Result<GroundTruth, CliError> {
    let text = std::fs::read(path).map_err(CliError::io(path))?;
    model_io::read_matches(&text[..], n_profiles).map_err(|e| CliError::Data {
        path: path.into(),
        detail: e.to_string(),
    })
}

/// Loads a dataset operand: a known twin name (generated, truth included)
/// or a CSV path (truth via `--truth`).
fn load_source(
    args: &[String],
    source: &str,
) -> Result<(ProfileCollection, Option<GroundTruth>), CliError> {
    match parse_dataset(source) {
        Ok(kind) => {
            let scale: f64 = parse_flag(args, "--scale")?.unwrap_or(1.0);
            let data = DatasetSpec::paper(kind).with_scale(scale).generate();
            Ok((data.profiles, Some(data.truth)))
        }
        Err(_) => {
            let profiles = load_profiles(source)?;
            let truth = flag(args, "--truth")
                .map(|p| load_truth(&p, profiles.len()))
                .transpose()?;
            Ok((profiles, truth))
        }
    }
}

fn resolve(args: &[String]) -> Result<(), CliError> {
    let path = args
        .get(1)
        .ok_or_else(|| CliError::usage("resolve needs a CSV path"))?;
    let profiles = load_profiles(path)?;
    let method = method_flag(args)?;
    if method.is_schema_based() {
        return Err(CliError::usage(
            "PSN needs schema keys; use a schema-agnostic method",
        ));
    }
    let budget: u64 = parse_flag(args, "--budget")?.unwrap_or(10 * profiles.len() as u64);
    let threshold: f64 = parse_flag(args, "--threshold")?.unwrap_or(0.5);

    let threads = parse_threads(args)?;
    event!(
        Level::Info,
        "cli.resolve",
        profiles = profiles.len(),
        method = method.name(),
        budget = budget,
        threshold = threshold,
        threads = threads.get(),
    );
    let config = MethodConfig::default().with_threads(threads);
    let text = ProfileText::extract(&profiles);
    let matcher = JaccardMatcher::new(&text, threshold);
    let m = sper::core::build_method(method, &profiles, &config, None);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // A closed downstream pipe (e.g. `| head`) is a normal way to stop a
    // progressive run early — treat it as success.
    let write_row = |out: &mut dyn Write, line: String| -> Result<bool, CliError> {
        match writeln!(out, "{line}") {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
            Err(e) => Err(CliError::Io {
                path: "<stdout>".into(),
                source: e,
            }),
        }
    };
    let mut emitted = 0u64;
    let mut declared = 0u64;
    let mut seen = std::collections::HashSet::new();
    if !write_row(&mut out, "profile_a,profile_b,jaccard".into())? {
        return Ok(());
    }
    for c in m {
        if emitted >= budget {
            break;
        }
        emitted += 1;
        if !seen.insert(c.pair) {
            continue;
        }
        let sim = matcher.similarity(c.pair.first, c.pair.second);
        if sim >= threshold {
            declared += 1;
            let row = format!("{},{},{sim:.4}", c.pair.first.0, c.pair.second.0);
            if !write_row(&mut out, row)? {
                return Ok(());
            }
        }
    }
    event!(
        Level::Info,
        "cli.resolve_done",
        emitted = emitted,
        declared = declared,
    );
    Ok(())
}

fn evaluate(args: &[String]) -> Result<(), CliError> {
    let path = args
        .get(1)
        .ok_or_else(|| CliError::usage("evaluate needs a profiles CSV path"))?;
    let matches_path = args
        .get(2)
        .ok_or_else(|| CliError::usage("evaluate needs a matches CSV path"))?;
    let profiles = load_profiles(path)?;
    let truth = load_truth(matches_path, profiles.len())?;
    let method = method_flag(args)?;
    let ec_star: f64 = parse_flag(args, "--ec-star")?.unwrap_or(10.0);

    let config = MethodConfig::default().with_threads(parse_threads(args)?);
    let result = run_progressive(
        || sper::core::build_method(method, &profiles, &config, None),
        &truth,
        RunOptions {
            max_ec_star: ec_star,
            stop_at_full_recall: true,
        },
    );
    println!("method        : {}", result.method);
    println!("|P|           : {}", profiles.len());
    println!("|DP|          : {}", truth.num_matches());
    println!("emissions     : {}", result.curve.emissions());
    println!("matches found : {}", result.curve.matches_found());
    println!("final recall  : {:.4}", result.curve.final_recall());
    println!("AUC*@{ec_star:<7}: {:.4}", result.auc(ec_star));
    println!("init time     : {:?}", result.init_time);
    Ok(())
}

/// Emits the per-epoch allocation sample (`cli.epoch_alloc`: this epoch's
/// peak heap bytes) and resets the high-water mark, so each epoch reports
/// its own peak rather than the run's running maximum. The run report
/// charts these events against the epoch wall-clock series.
fn record_epoch_alloc(epoch: usize) {
    event!(
        Level::Debug,
        "cli.epoch_alloc",
        epoch = epoch,
        peak_bytes = ALLOC.peak_bytes() as u64,
        live_bytes = ALLOC.live_bytes() as u64,
    );
    ALLOC.reset_peak();
}

/// The per-epoch CSV header every streaming-shaped subcommand shares.
const EPOCH_HEADER: &str =
    "epoch,ingested,profiles,new_emissions,suppressed,init_us,emit_us,wall_us,cps";

/// Prints the per-epoch CSV row every streaming-shaped subcommand shares.
fn print_epoch_row(outcome: &EpochOutcome) {
    let r = &outcome.report;
    println!(
        "{},{},{},{},{},{},{},{},{:.0}",
        r.epoch,
        r.ingested,
        r.profiles_total,
        r.new_emissions,
        r.suppressed,
        r.init_time.as_micros(),
        r.emission_time.as_micros(),
        r.wall_clock.as_micros(),
        r.comparisons_per_sec,
    );
}

/// One scripted mutation from a `--mutations` feed, bound to the batch it
/// fires after.
enum Mutation {
    /// `<batch> del <id>` — retract a previously ingested profile.
    Del(u32),
    /// `<batch> upd <id> k=v[;k=v…]` — amend: retract `<id>`, re-ingest
    /// the new attribute set under a fresh id.
    Upd(u32, Vec<Attribute>),
    /// `<batch> compact` — physically drop pending tombstones now.
    Compact,
}

/// Parses a `--mutations` feed into per-batch operation lists.
///
/// One operation per line, blank lines and `#` comments ignored:
///
/// ```text
/// <batch> del <id>
/// <batch> upd <id> <key>=<value>[;<key>=<value>…]
/// <batch> compact
/// ```
///
/// `<batch>` is the 0-based ingest batch the operation fires after —
/// mutations apply once that batch's rows are ingested, before the
/// epoch's emission. Ids are session profile ids (dense ingest order;
/// for Clean-clean streams the base `P1` occupies the low ids). Ids are
/// validated lazily at application time, so a feed may delete a profile
/// an earlier `upd` created.
fn load_mutations(path: &str, n_batches: usize) -> Result<Vec<Vec<Mutation>>, CliError> {
    let data = |detail: String| CliError::Data {
        path: path.into(),
        detail,
    };
    let text = std::fs::read_to_string(path).map_err(CliError::io(path))?;
    let mut ops: Vec<Vec<Mutation>> = (0..n_batches).map(|_| Vec::new()).collect();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| data(format!("line {}: {msg}: '{line}'", lineno + 1));
        let mut fields = line.splitn(3, char::is_whitespace);
        let batch: usize = fields
            .next()
            .expect("non-empty line")
            .parse()
            .map_err(|_| err("batch index is not a number"))?;
        if batch >= n_batches {
            return Err(data(format!(
                "line {}: batch {batch} out of range (--batches {n_batches})",
                lineno + 1
            )));
        }
        let op = match fields.next() {
            Some("del") => {
                let id = fields
                    .next()
                    .ok_or_else(|| err("del needs a profile id"))?
                    .trim()
                    .parse()
                    .map_err(|_| err("del id is not a number"))?;
                Mutation::Del(id)
            }
            Some("upd") => {
                let rest = fields
                    .next()
                    .ok_or_else(|| err("upd needs id and attributes"))?;
                let (id, spec) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("upd needs attributes after the id"))?;
                let id = id.parse().map_err(|_| err("upd id is not a number"))?;
                let attrs: Vec<Attribute> = spec
                    .split(';')
                    .map(|kv| {
                        kv.split_once('=')
                            .map(|(k, v)| Attribute::new(k.trim(), v.trim()))
                            .ok_or_else(|| err("attribute is not key=value"))
                    })
                    .collect::<Result<_, _>>()?;
                Mutation::Upd(id, attrs)
            }
            Some("compact") => Mutation::Compact,
            _ => return Err(err("unknown operation (del, upd, compact)")),
        };
        ops[batch].push(op);
    }
    Ok(ops)
}

/// Applies one batch's scripted mutations to the session, validating ids
/// against the live collection (a typed error, never a panic, on a stale
/// or unknown id).
fn apply_mutations(
    session: &mut ProgressiveSession,
    ops: &[Mutation],
    path: &str,
) -> Result<(), CliError> {
    let check = |session: &ProgressiveSession, id: u32| -> Result<ProfileId, CliError> {
        let id = ProfileId(id);
        if id.index() >= session.profiles().len() {
            return Err(CliError::Data {
                path: path.into(),
                detail: format!("{id} was never ingested"),
            });
        }
        if session.is_retracted(id) {
            return Err(CliError::Data {
                path: path.into(),
                detail: format!("{id} is already retracted"),
            });
        }
        Ok(id)
    };
    for op in ops {
        match op {
            Mutation::Del(id) => session.retract(check(session, *id)?),
            Mutation::Upd(id, attrs) => {
                let new_id = session.amend(check(session, *id)?, attrs.clone());
                event!(
                    Level::Debug,
                    "cli.amend",
                    old = *id as u64,
                    new = new_id.0 as u64
                );
            }
            Mutation::Compact => {
                session.compact();
            }
        }
    }
    Ok(())
}

/// Ingest-while-resolving over a dataset name (generated twin, ground
/// truth included) or a profiles CSV (ground truth via `--truth`). With
/// `--checkpoint FILE`, the session is persisted every
/// `--checkpoint-every N` epochs (default every epoch), so `sper resume`
/// can continue the run bit-identically after a crash or budget stop.
/// `--mutations FILE` replays a scripted update/delete feed against the
/// stream (see [`load_mutations`]); `--emit-pairs FILE` records every
/// emission as `first,second,<weight bits as hex>` for bit-exact diffing.
fn stream(args: &[String]) -> Result<(), CliError> {
    let source = args
        .get(1)
        .ok_or_else(|| CliError::usage("stream needs a dataset name or CSV path"))?;
    let method = method_flag(args)?;
    if method.is_schema_based() {
        return Err(CliError::usage(
            "PSN needs schema keys; streaming is schema-agnostic",
        ));
    }
    let n_batches: usize = parse_flag(args, "--batches")?.unwrap_or(5);
    if n_batches == 0 {
        return Err(CliError::usage("--batches must be ≥ 1"));
    }
    let epoch_budget: Option<u64> = parse_flag(args, "--epoch-budget")?;
    let checkpoint_path = flag(args, "--checkpoint");
    let checkpoint_every: usize = parse_flag(args, "--checkpoint-every")?.unwrap_or(1);
    if checkpoint_every == 0 {
        return Err(CliError::usage("--checkpoint-every must be ≥ 1"));
    }
    if checkpoint_path.is_none() && flag(args, "--checkpoint-every").is_some() {
        return Err(CliError::usage(
            "--checkpoint-every needs --checkpoint FILE",
        ));
    }
    let on_checkpoint_failure = match flag(args, "--on-checkpoint-failure") {
        None => OnCheckpointFailure::Abort,
        Some(s) => OnCheckpointFailure::parse(&s).ok_or_else(|| {
            CliError::usage("--on-checkpoint-failure must be `abort` or `continue`")
        })?,
    };
    if checkpoint_path.is_none() && flag(args, "--on-checkpoint-failure").is_some() {
        return Err(CliError::usage(
            "--on-checkpoint-failure needs --checkpoint FILE",
        ));
    }

    let (profiles, truth) = load_source(args, source)?;

    let session_config = if args.iter().any(|a| a == "--exhaustive") {
        SessionConfig::exhaustive(method)
    } else {
        SessionConfig::new(method)
    }
    .with_threads(parse_threads(args)?);
    // Dirty tasks stream every profile into an empty base. Clean-clean
    // tasks fix `P1` as the session base and stream only `P2` — appends to
    // a Clean-clean collection join the second source, so ids (and the
    // ground truth) line up with the batch collection.
    let (initial, rows): (ProfileCollection, Vec<Vec<Attribute>>) = match profiles.kind() {
        ErKind::Dirty => (
            ProfileCollectionBuilder::dirty().build(),
            profiles.iter().map(|p| p.attributes.clone()).collect(),
        ),
        ErKind::CleanClean => {
            let split = profiles.len_first();
            let mut b = ProfileCollectionBuilder::clean_clean();
            for p in profiles.iter().take(split) {
                b.add_attributes(p.attributes.clone());
            }
            b.start_second_source();
            (
                b.build(),
                profiles
                    .iter()
                    .skip(split)
                    .map(|p| p.attributes.clone())
                    .collect(),
            )
        }
    };
    event!(
        Level::Info,
        "cli.stream",
        profiles = rows.len(),
        batches = n_batches,
        base = initial.len(),
        method = method.name(),
        epoch_budget = epoch_budget.unwrap_or(u64::MAX),
    );
    let mut run_span = span!("cli.stream_run", method = method.name());
    let chunk = rows.len().div_ceil(n_batches).max(1);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(chunk).map(|c| c.to_vec()).collect();
    let mutations = flag(args, "--mutations")
        .map(|path| Ok::<_, CliError>((load_mutations(&path, batches.len())?, path)))
        .transpose()?;
    let mut emit_pairs = flag(args, "--emit-pairs")
        .map(|path| {
            let f = std::fs::File::create(&path).map_err(CliError::io(path.as_str()))?;
            Ok::<_, CliError>((std::io::BufWriter::new(f), path))
        })
        .transpose()?;
    println!("{EPOCH_HEADER}");

    let mut session = ProgressiveSession::new(initial, session_config);
    let mut epochs: Vec<sper::eval::StreamEpoch> = Vec::new();
    let mut checkpointed_epoch = 0usize;
    // Checkpoints go through the self-healing writer: bounded retries
    // with jittered backoff, last-good rotation to FILE.prev, and the
    // `--on-checkpoint-failure` policy when retries run dry.
    let mut checkpointer = checkpoint_path
        .as_ref()
        .map(|p| CheckpointWriter::new(p).with_on_failure(on_checkpoint_failure));
    for (batch_no, batch) in batches.into_iter().enumerate() {
        session.ingest_batch(batch);
        if let Some((ops, path)) = &mutations {
            apply_mutations(&mut session, &ops[batch_no], path)?;
        }
        let outcome = session.emit_epoch(epoch_budget);
        record_epoch_alloc(outcome.report.epoch);
        print_epoch_row(&outcome);
        if let Some((w, path)) = emit_pairs.as_mut() {
            for c in &outcome.comparisons {
                writeln!(
                    w,
                    "{},{},{:016x}",
                    c.pair.first.0,
                    c.pair.second.0,
                    c.weight.to_bits()
                )
                .map_err(CliError::io(path.as_str()))?;
            }
        }
        epochs.push(sper::eval::StreamEpoch {
            profiles_total: outcome.report.profiles_total,
            pairs: outcome.comparisons.iter().map(|c| c.pair).collect(),
        });
        if let (Some(writer), Some(path)) = (checkpointer.as_mut(), checkpoint_path.as_ref()) {
            if outcome.report.epoch.is_multiple_of(checkpoint_every) {
                match writer.save(&session).map_err(CliError::store(path))? {
                    CheckpointOutcome::Saved => {
                        checkpointed_epoch = outcome.report.epoch;
                        event!(
                            Level::Info,
                            "cli.checkpoint",
                            path = path.as_str(),
                            epoch = outcome.report.epoch,
                        );
                    }
                    CheckpointOutcome::FailedContinuing => {
                        eprintln!(
                            "warning: checkpoint to {path} failed after retries; \
                             run continues (last good generation kept)"
                        );
                    }
                }
            }
        }
    }
    // The final state is always persisted, whatever the cadence — unless
    // the last epoch already was.
    if let (Some(writer), Some(path)) = (checkpointer.as_mut(), checkpoint_path.as_ref()) {
        if checkpointed_epoch != session.reports().len() {
            match writer.save(&session).map_err(CliError::store(path))? {
                CheckpointOutcome::Saved => {
                    event!(Level::Info, "cli.checkpoint_final", path = path.as_str());
                }
                CheckpointOutcome::FailedContinuing => {
                    eprintln!(
                        "warning: final checkpoint to {path} failed after retries; \
                         emissions above are complete, resume from the last good generation"
                    );
                }
            }
        }
    }
    if let Some((w, path)) = emit_pairs.as_mut() {
        w.flush().map_err(CliError::io(path.as_str()))?;
    }
    run_span.record("epochs", session.reports().len());
    run_span.record("emitted", session.emitted().len());
    drop(run_span);

    if mutations.is_some() {
        // Ground truth maps the *original* ids; deletes and amends leave
        // holes and fresh ids it knows nothing about, so per-epoch recall
        // is meaningless for a mutated stream.
        let retracted = (0..session.profiles().len() as u32)
            .filter(|&i| session.is_retracted(ProfileId(i)))
            .count();
        eprintln!(
            "(mutation feed active — recall skipped; {retracted} retracted, {} tombstones pending)",
            session.pending_tombstones(),
        );
    } else if let Some(truth) = truth {
        let recall = sper::eval::streaming_recall(&epochs, &truth);
        eprintln!();
        eprintln!("epoch  profiles  emissions  new_matches  recall");
        for m in &recall.epochs {
            eprintln!(
                "{:<5}  {:<8}  {:<9}  {:<11}  {:.4}",
                m.epoch, m.profiles_total, m.emissions_end, m.new_matches, m.recall
            );
        }
        eprintln!(
            "final recall {:.4} ({} matches) over {} emissions",
            recall.final_recall(),
            recall.curve.matches_found(),
            recall.curve.emissions(),
        );
    } else {
        eprintln!("(no ground truth — pass --truth FILE for per-epoch recall)");
    }
    Ok(())
}

/// Builds the columnar substrates for a collection and writes them to a
/// `.sper` snapshot: interner, profiles, cardinality-scheduled blocks,
/// profile index, neighbor list, and (with `--with-graph`) the
/// materialized blocking graph. Loading the file reproduces every array
/// bit for bit, skipping tokenization and sorting entirely.
fn snapshot(args: &[String]) -> Result<(), CliError> {
    if args.iter().any(|a| a == "--salvage") {
        return salvage(args);
    }
    let source = args
        .get(1)
        .ok_or_else(|| CliError::usage("snapshot needs a dataset name or CSV path"))?;
    let out = flag(args, "--out").unwrap_or_else(|| "snapshot.sper".into());
    let seed: u64 = parse_flag(args, "--seed")?.unwrap_or(42);
    let (profiles, _truth) = load_source(args, source)?;

    let t0 = Instant::now();
    let mut blocks = TokenBlocking::default().build(&profiles);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    let nl = NeighborList::build(&profiles, seed);
    let build_time = t0.elapsed();

    let mut snapshot = Snapshot::new(std::sync::Arc::clone(blocks.interner()));
    if args.iter().any(|a| a == "--with-graph") {
        snapshot.graph = Some(BlockingGraph::build(&blocks, WeightingScheme::Arcs));
    }
    snapshot.profiles = Some(profiles);
    snapshot.blocks = Some(blocks);
    snapshot.profile_index = Some(index);
    snapshot.neighbor_list = Some(nl);

    let t1 = Instant::now();
    snapshot
        .write_to_path(Path::new(&out))
        .map_err(CliError::store(&out))?;
    let write_time = t1.elapsed();
    let size = std::fs::metadata(&out).map_err(CliError::io(&out))?.len();
    event!(
        Level::Info,
        "cli.snapshot",
        path = out.as_str(),
        bytes = size,
        sections = snapshot.describe().join(", "),
        build_us = build_time.as_micros() as u64,
        write_us = write_time.as_micros() as u64,
    );
    Ok(())
}

/// Recovers what survives of a damaged `.sper` store: every section whose
/// CRC-32 still validates and whose payload still decodes is kept, every
/// other one becomes a typed loss-report entry. Losing a section is exit 0
/// with a warning — losing *everything* (or the header) is exit 1.
fn salvage(args: &[String]) -> Result<(), CliError> {
    let source = args
        .get(1)
        .ok_or_else(|| CliError::usage("snapshot --salvage needs a .sper path"))?;
    let bytes = std::fs::read(source).map_err(CliError::io(source.as_str()))?;
    let (snapshot, report) = Snapshot::salvage(&bytes).map_err(CliError::store(source.as_str()))?;
    println!("{}", report.summary());
    for lost in &report.lost {
        eprintln!("warning: lost section {}: {}", lost.section, lost.reason);
        event!(
            Level::Warn,
            "cli.salvage_loss",
            path = source.as_str(),
            section = lost.section.as_str(),
            reason = lost.reason.as_str(),
        );
    }
    if report.recovered.is_empty() {
        return Err(CliError::Store {
            path: source.clone(),
            source: StoreError::Corrupt {
                section: "container".into(),
                detail: "no section survived salvage".into(),
            },
        });
    }
    if let Some(out) = flag(args, "--out") {
        snapshot
            .write_to_path(Path::new(&out))
            .map_err(CliError::store(&out))?;
        event!(
            Level::Info,
            "cli.salvage_out",
            path = out.as_str(),
            sections = snapshot.describe().join(", "),
        );
        eprintln!("recovered snapshot written to {out}");
    }
    Ok(())
}

/// Rehydrates a checkpointed session and drains its remaining emissions —
/// bit-identical to what the uninterrupted run would have emitted. With
/// `--epoch-budget N` the drain runs budgeted epochs until the method is
/// exhausted; `--checkpoint FILE` re-persists the final state. A corrupt
/// primary falls back to the rotated `FILE.prev` generation (exit 0, with
/// a warning).
fn resume(args: &[String]) -> Result<(), CliError> {
    let path = args
        .get(1)
        .ok_or_else(|| CliError::usage("resume needs a checkpoint path"))?;
    let epoch_budget: Option<u64> = parse_flag(args, "--epoch-budget")?;
    let checkpoint_out = flag(args, "--checkpoint");

    let t0 = Instant::now();
    let (checkpoint, used_prev) =
        CheckpointWriter::resume(Path::new(path)).map_err(CliError::store(path.as_str()))?;
    if used_prev {
        eprintln!("warning: {path} was unreadable; resumed from rotated {path}.prev");
    }
    let load_time = t0.elapsed();
    let mut state = checkpoint.state;
    if args.iter().any(|a| a == "--threads") {
        state.config.threads = parse_threads(args)?;
    }
    event!(
        Level::Info,
        "cli.resume",
        method = state.method.name(),
        profiles = state.profiles.len(),
        emitted = state.emitted.len(),
        epochs_done = state.reports.len(),
        load_us = load_time.as_micros() as u64,
    );
    let mut session = ProgressiveSession::rehydrate(state);
    let mut emit_pairs = flag(args, "--emit-pairs")
        .map(|path| {
            let f = std::fs::File::create(&path).map_err(CliError::io(path.as_str()))?;
            Ok::<_, CliError>((std::io::BufWriter::new(f), path))
        })
        .transpose()?;

    println!("{EPOCH_HEADER}");
    loop {
        let outcome = session.emit_epoch(epoch_budget);
        record_epoch_alloc(outcome.report.epoch);
        print_epoch_row(&outcome);
        if let Some((w, path)) = emit_pairs.as_mut() {
            for c in &outcome.comparisons {
                writeln!(
                    w,
                    "{},{},{:016x}",
                    c.pair.first.0,
                    c.pair.second.0,
                    c.weight.to_bits()
                )
                .map_err(CliError::io(path.as_str()))?;
            }
            // Flushed per epoch so a later kill loses at most the epoch
            // in flight — the fault-smoke harness diffs this file.
            w.flush().map_err(CliError::io(path.as_str()))?;
        }
        // An unbudgeted epoch is already exhaustive. A budgeted drain
        // loops while epochs fill their budget; the first epoch that
        // falls short ran the method dry (a rebuilt method re-emits
        // suppressed repeats forever, so `raw > 0` is not progress).
        let exhausted = epoch_budget.is_none_or(|b| outcome.report.new_emissions < b);
        if exhausted {
            break;
        }
    }
    event!(
        Level::Info,
        "cli.resume_done",
        emitted = session.emitted().len(),
        epochs = session.reports().len(),
    );
    if let Some(out) = checkpoint_out {
        match CheckpointWriter::new(&out)
            .save(&session)
            .map_err(CliError::store(&out))?
        {
            CheckpointOutcome::Saved => {
                event!(Level::Info, "cli.checkpoint_final", path = out.as_str());
            }
            // Unreachable with the default Abort policy, but the match
            // keeps the exit-code contract explicit.
            CheckpointOutcome::FailedContinuing => {
                eprintln!("warning: final checkpoint to {out} failed after retries");
            }
        }
    }
    Ok(())
}

/// Fuses a `--trace` JSONL, a `--metrics` JSON dump, and an optional
/// recall CSV into one self-contained HTML report (inline SVG charts, no
/// external assets of any kind — it renders from an archive or a mail
/// attachment).
fn report(args: &[String]) -> Result<(), CliError> {
    let trace_path = flag(args, "--trace")
        .ok_or_else(|| CliError::usage("report needs --trace FILE (a JSON-lines trace)"))?;
    let out = flag(args, "--out").unwrap_or_else(|| "report.html".into());
    let trace_text =
        std::fs::read_to_string(&trace_path).map_err(CliError::io(trace_path.as_str()))?;
    let metrics_json = flag(args, "--metrics")
        .map(|p| std::fs::read_to_string(&p).map_err(CliError::io(p.as_str())))
        .transpose()?;
    let recall_csv = flag(args, "--recall")
        .map(|p| std::fs::read_to_string(&p).map_err(CliError::io(p.as_str())))
        .transpose()?;
    let title = flag(args, "--title").unwrap_or_else(|| {
        Path::new(&trace_path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "sper run".into())
    });
    let stamp = sper_obs::RunStamp::capture();
    let inputs = sper_obs::ReportInputs {
        title,
        trace: sper_obs::parse_trace(&trace_text),
        metrics_json,
        recall_csv,
        stamp: Some(format!("{} @ {}", stamp.timestamp, stamp.git_rev)),
    };
    let html = sper_obs::render_html(&inputs);
    std::fs::write(&out, &html).map_err(CliError::io(out.as_str()))?;
    event!(
        Level::Info,
        "cli.report",
        path = out.as_str(),
        records = inputs.trace.len(),
        bytes = html.len(),
    );
    eprintln!(
        "wrote {out} ({} records, {} bytes)",
        inputs.trace.len(),
        html.len()
    );
    Ok(())
}

fn generate(args: &[String]) -> Result<(), CliError> {
    let kind = parse_dataset(
        args.get(1)
            .ok_or_else(|| CliError::usage("generate needs a dataset name"))?,
    )?;
    let scale: f64 = parse_flag(args, "--scale")?.unwrap_or(1.0);
    let data = DatasetSpec::paper(kind).with_scale(scale).generate();
    event!(
        Level::Info,
        "cli.generate",
        dataset = kind.name(),
        profiles = data.profiles.len(),
        matches = data.truth.num_matches(),
    );
    match flag(args, "--out") {
        Some(path) => {
            let mut f = std::fs::File::create(&path).map_err(CliError::io(&path))?;
            model_io::write_csv(&data.profiles, &mut f).map_err(CliError::io(&path))?;
            event!(Level::Info, "cli.wrote_profiles", path = path.as_str());
        }
        None => {
            let stdout = std::io::stdout();
            model_io::write_csv(&data.profiles, &mut stdout.lock())
                .map_err(CliError::io("<stdout>"))?;
        }
    }
    if let Some(path) = flag(args, "--truth") {
        let mut f = std::fs::File::create(&path).map_err(CliError::io(&path))?;
        model_io::write_matches(&data.truth, &mut f).map_err(CliError::io(&path))?;
        event!(Level::Info, "cli.wrote_truth", path = path.as_str());
    }
    Ok(())
}
