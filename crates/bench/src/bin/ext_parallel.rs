//! Extension experiment: shared-memory parallel blocking (§8 future work).
//!
//! Measures the speedup of parallel Token Blocking and parallel
//! blocking-graph weighting over their sequential counterparts on the
//! movies twin, and verifies result identity.

use sper_blocking::{
    parallel_blocking_graph, parallel_token_blocking, BlockingGraph, TokenBlocking, WeightingScheme,
};
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_eval::report::{fmt_duration, Table};
use std::time::Instant;

fn main() {
    println!("== Extension: parallel blocking / meta-blocking ==\n");
    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(0.25)
        .generate();
    println!("movies twin, |P| = {}\n", data.profiles.len());

    // --- Token Blocking ---
    let t0 = Instant::now();
    let sequential = TokenBlocking::default().build(&data.profiles);
    let seq_time = t0.elapsed();

    let mut table = Table::new(["threads", "token blocking", "speedup", "identical"]);
    table.add_row([
        "1 (sequential)".to_string(),
        fmt_duration(seq_time),
        "1.00x".to_string(),
        "—".to_string(),
    ]);
    for threads in [2, 4, 8] {
        let t0 = Instant::now();
        let parallel = parallel_token_blocking(&data.profiles, threads).expect("threads > 0");
        let time = t0.elapsed();
        // Ids are interner-local; identity is judged on resolved key
        // strings and member lists.
        let identical = parallel.len() == sequential.len()
            && parallel
                .iter()
                .zip(sequential.iter())
                .all(|(a, b)| a.key_str() == b.key_str() && a.profiles() == b.profiles());
        table.add_row([
            threads.to_string(),
            fmt_duration(time),
            format!("{:.2}x", seq_time.as_secs_f64() / time.as_secs_f64()),
            identical.to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- Blocking-graph weighting ---
    let mut blocks = TokenBlocking::default().build(&data.profiles);
    blocks.sort_by_cardinality();
    let t0 = Instant::now();
    let seq_graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
    let seq_time = t0.elapsed();

    let mut table = Table::new(["threads", "edge weighting", "speedup", "edges"]);
    table.add_row([
        "1 (sequential)".to_string(),
        fmt_duration(seq_time),
        "1.00x".to_string(),
        seq_graph.num_edges().to_string(),
    ]);
    for threads in [2, 4, 8] {
        let t0 = Instant::now();
        let par_graph =
            parallel_blocking_graph(&blocks, WeightingScheme::Arcs, threads).expect("threads > 0");
        let time = t0.elapsed();
        assert_eq!(par_graph.num_edges(), seq_graph.num_edges());
        table.add_row([
            threads.to_string(),
            fmt_duration(time),
            format!("{:.2}x", seq_time.as_secs_f64() / time.as_secs_f64()),
            par_graph.num_edges().to_string(),
        ]);
    }
    println!("{}", table.render());
}
