//! Figure 1: the motivation plot — schema-based PSN's recall against the
//! normalized number of comparisons on the four structured datasets,
//! showing how far from ideal the schema-based state of the art is
//! (census ≈ 85 % and cora ≈ 60 % at ec* = 10; restaurant needs two orders
//! of magnitude more comparisons than ideal; cddb stays below 80 %).

use sper_bench::{dataset, paper_config, run_on};
use sper_core::ProgressiveMethod;
use sper_datagen::DatasetKind;
use sper_eval::report::{f3, Table};

fn main() {
    println!("== Figure 1: PSN on the structured datasets ==\n");
    let grid = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    let mut table = Table::new(
        std::iter::once("dataset".to_string()).chain(grid.iter().map(|e| format!("ec*={e}"))),
    );
    for kind in DatasetKind::STRUCTURED {
        let data = dataset(kind);
        let config = paper_config(kind);
        let result = run_on(ProgressiveMethod::Psn, &data, &config, 100.0);
        let mut row = vec![kind.name().to_string()];
        for &(_, recall) in &result.curve.sample(&grid) {
            row.push(f3(recall));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
    println!("ideal: recall 1.000 at ec*=1 on every dataset");
}
