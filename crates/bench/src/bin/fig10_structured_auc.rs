//! Figure 10: mean normalized area under the recall curve (`AUC*_m@ec*`)
//! across the four structured datasets, at `ec* ∈ {1, 5, 10, 20}`.
//!
//! The paper's headline: LS-PSN and GS-PSN are the top performers, with
//! `AUC*@1` three times PSN's and PBS's.

use sper_bench::{dataset, methods_for, paper_config, run_on};
use sper_core::ProgressiveMethod;
use sper_datagen::DatasetKind;
use sper_eval::auc::PAPER_EC_STARS;
use sper_eval::report::{f3, Table};
use std::collections::HashMap;

fn main() {
    println!("== Figure 10: mean AUC*@ec*, structured datasets ==\n");
    // method -> per-dataset AUC at each checkpoint
    let mut scores: HashMap<ProgressiveMethod, Vec<[f64; 4]>> = HashMap::new();
    for kind in DatasetKind::STRUCTURED {
        let data = dataset(kind);
        let config = paper_config(kind);
        for method in methods_for(kind) {
            let result = run_on(method, &data, &config, 25.0);
            let mut aucs = [0.0; 4];
            for (i, &ec) in PAPER_EC_STARS.iter().enumerate() {
                aucs[i] = result.auc(ec);
            }
            scores.entry(method).or_default().push(aucs);
        }
    }

    let mut table = Table::new(["method", "AUC*@1", "AUC*@5", "AUC*@10", "AUC*@20"]);
    let order = [
        ProgressiveMethod::Psn,
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::SaPsab,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];
    for method in order {
        let Some(per_dataset) = scores.get(&method) else {
            continue;
        };
        let n = per_dataset.len() as f64;
        let mut row = vec![method.name().to_string()];
        for i in 0..4 {
            let mean = per_dataset.iter().map(|a| a[i]).sum::<f64>() / n;
            row.push(f3(mean));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}
