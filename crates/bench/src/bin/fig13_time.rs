//! Figure 13: time-efficiency experiments on movies and dbpedia.
//!
//! Each schema-agnostic method is paired with the cheap match function
//! (Jaccard similarity, `O(s+t)`) and the expensive one (edit distance,
//! `O(s·t)`), per §7.3. We report the initialization time (Fig. 13e), the
//! wall-clock time to reach recall milestones, and the final recall within
//! the emission budget. As in the paper (footnote 10), the match function
//! is *executed* for its cost but recall is scored against the ground
//! truth.

use sper_bench::{dataset, paper_config};
use sper_core::{build_method, ProgressiveMethod};
use sper_datagen::DatasetKind;
use sper_eval::report::{fmt_duration, Table};
use sper_eval::timing::{run_timed, TimingOptions};
use sper_model::{EditDistanceMatcher, JaccardMatcher, MatchFunction, ProfileText};

fn main() {
    println!("== Figure 13: time experiments (movies, dbpedia) ==\n");
    let methods = [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];
    let options = TimingOptions {
        max_ec_star: 10.0,
        checkpoints: 40,
    };

    for kind in [DatasetKind::Movies, DatasetKind::Dbpedia] {
        let data = dataset(kind);
        let config = paper_config(kind);
        let text = ProfileText::extract(&data.profiles);
        println!(
            "-- {} (|P| = {}, |DP| = {}) --",
            kind,
            data.profiles.len(),
            data.truth.num_matches()
        );

        for cheap in [true, false] {
            let jaccard;
            let edit;
            let matcher: &dyn MatchFunction = if cheap {
                jaccard = JaccardMatcher::new(&text, 0.5);
                &jaccard
            } else {
                edit = EditDistanceMatcher::new(&text, 0.8);
                &edit
            };
            println!(
                "   match function: {} ({})",
                matcher.name(),
                if cheap {
                    "cheap, O(s+t)"
                } else {
                    "expensive, O(s·t)"
                }
            );
            let mut table = Table::new([
                "method",
                "init",
                "t@recall.25",
                "t@recall.50",
                "t@recall.75",
                "final recall",
                "total time",
            ]);
            for method in methods {
                let result = run_timed(
                    || build_method(method, &data.profiles, &config, data.schema_keys.as_deref()),
                    matcher,
                    &data.truth,
                    options,
                );
                let milestone = |target: f64| {
                    result
                        .time_to_recall(target)
                        .map_or("—".to_string(), fmt_duration)
                };
                table.add_row([
                    method.name().to_string(),
                    fmt_duration(result.init_time),
                    milestone(0.25),
                    milestone(0.50),
                    milestone(0.75),
                    format!("{:.3}", result.final_recall()),
                    fmt_duration(result.trajectory.last().unwrap().0),
                ]);
            }
            println!("{}", table.render());
        }
    }

    println!("-- Fig. 13(e): initialization times (independent of match function) --");
    let mut table = Table::new(["dataset", "SA-PSN", "LS-PSN", "GS-PSN", "PBS", "PPS"]);
    for kind in [DatasetKind::Movies, DatasetKind::Dbpedia] {
        let data = dataset(kind);
        let config = paper_config(kind);
        let mut row = vec![kind.name().to_string()];
        for method in &methods {
            let t0 = std::time::Instant::now();
            let mut m = build_method(
                *method,
                &data.profiles,
                &config,
                data.schema_keys.as_deref(),
            );
            let _ = m.next(); // include the first emission, as in the paper
            row.push(fmt_duration(t0.elapsed()));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}
