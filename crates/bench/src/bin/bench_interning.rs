//! Interning perf harness: times the interned columnar paths against the
//! string-keyed seed paths (`sper_blocking::legacy`) and emits
//! `BENCH_interning.json` — the perf-trajectory baseline future PRs
//! compare against.
//!
//! ```text
//! cargo run -q --release -p sper-bench --bin bench_interning            # full run
//! cargo run -q --release -p sper-bench --bin bench_interning -- --quick # CI smoke
//! cargo run -q --release -p sper-bench --bin bench_interning -- --out x.json
//! ```
//!
//! Each measurement is the median of `iters` wall-clock runs (quick: 3,
//! full: 9) on the movies twin — the largest, most heterogeneous
//! generated dataset, where token-text costs dominate. Speedup =
//! string-keyed time / interned time; the acceptance bar for PR 2 was
//! ≥ 1.5× on token-blocking build or meta-blocking weighting.

use serde::Serialize;
use sper_blocking::{
    legacy, IncrementalProfileIndex, NeighborList, ProfileIndex, TokenBlocking, WeightingScheme,
};
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_model::ProfileId;
use sper_obs::{event, Level};
use std::time::Instant;

#[derive(Serialize)]
struct Measurement {
    name: String,
    /// What the interned path is measured against — the seed's
    /// string-keyed build where one exists, otherwise the seed's memory
    /// layout (the weighting path was already integer-keyed in the seed).
    baseline: String,
    interned_ms: f64,
    baseline_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    n_profiles: usize,
    iters: usize,
    host: sper_bench::HostInfo,
    stamp: sper_bench::RunStamp,
    measurements: Vec<Measurement>,
}

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    sper_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_interning.json")
        .to_string();
    let iters = if quick { 3 } else { 9 };
    // Quick mode still needs enough volume for the ratios to mean
    // anything — token-text costs only dominate at scale.
    let scale = if quick { 0.1 } else { 0.5 };

    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(scale)
        .generate();
    let profiles = &data.profiles;
    event!(
        Level::Info,
        "bench_interning.start",
        dataset = "movies",
        profiles = profiles.len(),
        iters = iters,
    );

    let mut measurements = Vec::new();

    // --- Token Blocking build ---
    let interned = median_ms(iters, || {
        std::hint::black_box(TokenBlocking::default().build(profiles));
    });
    let string_keyed = median_ms(iters, || {
        std::hint::black_box(legacy::string_token_blocking(profiles));
    });
    measurements.push(Measurement {
        name: "token_blocking_build".into(),
        baseline: "string-keyed HashMap<String, Vec<_>> build (seed)".into(),
        interned_ms: interned,
        baseline_ms: string_keyed,
        speedup: string_keyed / interned,
    });

    // --- Meta-blocking edge weighting ---
    // The seed's profile index was already integer-keyed (Vec<Vec<u32>>),
    // so this row isolates the CSR layout change, not interning.
    let mut blocks = TokenBlocking::default().build(profiles);
    blocks.sort_by_cardinality();
    let csr = ProfileIndex::build(&blocks);
    let mut vec_of_vec = IncrementalProfileIndex::new_empty(blocks.n_profiles());
    for blk in blocks.iter() {
        vec_of_vec.push_block(blk.profiles(), blk.cardinality(blocks.kind()));
    }
    let n = profiles.len() as u32;
    let pairs: Vec<(ProfileId, ProfileId)> = (0..50_000u32)
        .map(|i| (ProfileId(i % n), ProfileId((i.wrapping_mul(7) + 1) % n)))
        .filter(|(a, b)| a != b)
        .collect();
    let weight_all = |idx: &dyn Fn(ProfileId, ProfileId) -> f64| {
        let mut acc = 0.0;
        for &(i, j) in &pairs {
            acc += idx(i, j);
        }
        std::hint::black_box(acc);
    };
    let interned = median_ms(iters, || {
        weight_all(&|i, j| csr.weight(i, j, WeightingScheme::Arcs));
    });
    let string_keyed = median_ms(iters, || {
        weight_all(&|i, j| vec_of_vec.weight(i, j, WeightingScheme::Arcs));
    });
    measurements.push(Measurement {
        name: "metablocking_weighting_50k_pairs".into(),
        baseline: "vec-of-vec profile-index layout (seed)".into(),
        interned_ms: interned,
        baseline_ms: string_keyed,
        speedup: string_keyed / interned,
    });

    // --- Neighbor List build ---
    let interned = median_ms(iters, || {
        std::hint::black_box(NeighborList::build(profiles, 42));
    });
    let string_keyed = median_ms(iters, || {
        std::hint::black_box(legacy::string_neighbor_list(profiles, 42));
    });
    measurements.push(Measurement {
        name: "neighbor_list_build".into(),
        baseline: "string-sorted owned placements (seed)".into(),
        interned_ms: interned,
        baseline_ms: string_keyed,
        speedup: string_keyed / interned,
    });

    let report = Report {
        dataset: "movies".into(),
        n_profiles: profiles.len(),
        iters,
        host: sper_bench::host_info(),
        stamp: sper_bench::run_stamp(),
        measurements,
    };
    for m in &report.measurements {
        println!(
            "{:<34} interned {:>9.3} ms   baseline {:>9.3} ms   speedup {:>5.2}x   ({})",
            m.name, m.interned_ms, m.baseline_ms, m.speedup, m.baseline
        );
    }
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    event!(Level::Info, "bench_interning.wrote", path = out.as_str());
}
