//! Sparse-accumulator weighting perf harness: times the kernel
//! (`sper_blocking::spacc`) against the legacy seen-set + merge-intersect
//! edge-list builder for every weighting scheme at 1/2/4/8 worker
//! threads, tracking **peak bytes allocated** per path, and emits
//! `BENCH_weighting.json` — the weighting-curve baseline future PRs
//! compare against.
//!
//! ```text
//! cargo run -q --release -p sper-bench --bin bench_weighting            # full run
//! cargo run -q --release -p sper-bench --bin bench_weighting -- --quick # CI smoke
//! cargo run -q --release -p sper-bench --bin bench_weighting -- --out x.json
//! ```
//!
//! Each measurement is the median of `iters` wall-clock runs (quick: 3,
//! full: 5) on the movies twin. Per scheme the JSON records:
//!
//! * **baseline** — [`sper_blocking::legacy::legacy_graph_edges`], the
//!   pre-kernel builder (hashed `seen` set, `O(|B_i| + |B_j|)` merge per
//!   pair), with its peak allocation;
//! * **points** — the kernel edge list at 1/2/4/8 threads
//!   ([`sper_blocking::spacc::weighted_edge_list`] through
//!   `parallel_blocking_graph`'s entry shape), each with speedup and peak
//!   allocation;
//! * **identical** — edge-sequence equality (pairs and weight bits) of the
//!   kernel output against the legacy builder at every thread count;
//!
//! plus one `methods` section asserting that all seven progressive methods
//! emit identical `(pair, weight)` sequences at 1 vs 4 worker threads now
//! that PBS/PPS run on the kernel.
//!
//! The report also records which SIMD kernel the dispatcher chose
//! (`kernel_path` — rerun under `SPER_NO_SIMD=1` for the forced-scalar
//! curve) and, per point, the per-worker utilization of the work-stealing
//! fan-out. Speedups only materialize on multi-core hosts; on a 1-core
//! container the multi-thread points still run their **identity checks**
//! but skip timing (`timed: false`, zeroed ms/speedup) instead of
//! committing scheduler noise as speedup numbers — the *sequential* point
//! is the honest single-core kernel-vs-legacy comparison either way.

use serde::Serialize;
use sper_bench::peak_bytes;
use sper_blocking::legacy::legacy_graph_edges;
use sper_blocking::spacc::weighted_edge_list;
use sper_blocking::{Parallelism, ProfileIndex, TokenBlocking, WeightingScheme};
use sper_core::{build_method, MethodConfig, ProgressiveMethod};
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_obs::{event, Level};
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    threads: usize,
    ms: f64,
    /// Legacy-baseline time / this time.
    speedup: f64,
    /// High-water allocation of one build, bytes.
    peak_bytes: usize,
    /// False when timing was skipped (multi-thread point on a 1-core
    /// host) — `ms`/`speedup` are zeroed, the identity check still ran.
    timed: bool,
    /// Per-worker busy-time / wall-time of the work-stealing fan-out
    /// (from the identity-check build).
    utilization: Vec<f64>,
}

#[derive(Serialize)]
struct SchemeCurve {
    scheme: String,
    baseline: String,
    baseline_ms: f64,
    baseline_peak_bytes: usize,
    /// Kernel edge sequence equals the legacy builder's (pairs and weight
    /// bits) at every thread count.
    identical: bool,
    points: Vec<Point>,
}

#[derive(Serialize)]
struct MethodCheck {
    method: String,
    /// First `emissions` comparisons are identical at 1 vs 4 threads.
    identical: bool,
    emissions: usize,
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    n_profiles: usize,
    iters: usize,
    host_parallelism: usize,
    host: sper_bench::HostInfo,
    stamp: sper_bench::RunStamp,
    /// The SIMD kernel the runtime dispatcher chose for this run
    /// (`avx2`/`sse2`/`scalar`; forced to `scalar` under `SPER_NO_SIMD=1`).
    kernel_path: &'static str,
    schemes: Vec<SchemeCurve>,
    methods: Vec<MethodCheck>,
}

const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    sper_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_weighting.json")
        .to_string();
    let iters = if quick { 3 } else { 5 };
    let scale = if quick { 0.1 } else { 0.5 };

    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(scale)
        .generate();
    let profiles = &data.profiles;
    event!(
        Level::Info,
        "bench_weighting.start",
        dataset = "movies",
        profiles = profiles.len(),
        iters = iters,
        host_parallelism = Parallelism::available().get(),
    );

    let mut blocks = TokenBlocking::default().build(profiles);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);

    let mut schemes = Vec::new();
    for scheme in WeightingScheme::ALL {
        let (reference, baseline_peak) = peak_bytes(|| legacy_graph_edges(&blocks, scheme));
        let baseline_ms = median_ms(iters, || {
            std::hint::black_box(legacy_graph_edges(&blocks, scheme));
        });

        let mut identical = true;
        let mut points = Vec::new();
        let single_core = Parallelism::available().get() == 1;
        for &threads in &THREAD_STEPS {
            let par = Parallelism::new(threads).expect("threads > 0");
            // Drain stale fan-out stats so the utilization below belongs
            // to this build.
            let _ = sper_blocking::take_last_fanout_stats();
            let (edges, peak) = peak_bytes(|| weighted_edge_list(&blocks, &index, scheme, par));
            let utilization = sper_blocking::take_last_fanout_stats()
                .map(|s| {
                    s.utilization()
                        .iter()
                        .map(|u| (u * 1000.0).round() / 1000.0)
                        .collect()
                })
                .unwrap_or_default();
            identical &= edges.len() == reference.len()
                && edges
                    .iter()
                    .zip(&reference)
                    .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
            // Multi-thread timings on a 1-core host are scheduler noise;
            // keep the identity check, skip the stopwatch.
            let timed = threads == 1 || !single_core;
            let (ms, speedup) = if timed {
                let ms = median_ms(iters, || {
                    std::hint::black_box(weighted_edge_list(&blocks, &index, scheme, par));
                });
                (ms, baseline_ms / ms)
            } else {
                (0.0, 0.0)
            };
            points.push(Point {
                threads,
                ms,
                speedup,
                peak_bytes: peak,
                timed,
                utilization,
            });
        }
        schemes.push(SchemeCurve {
            scheme: scheme.name().into(),
            baseline: "legacy seen-set + merge-intersect edge list".into(),
            baseline_ms,
            baseline_peak_bytes: baseline_peak,
            identical,
            points,
        });
    }

    // Method identity: every progressive method emits the same (pair,
    // weight-bits) sequence at 1 vs 4 worker threads on the kernel-backed
    // engine. Bounded drain keeps the harness fast; `remaining` is not
    // compared because similarity methods size their windows lazily.
    let emissions = if quick { 20_000 } else { 100_000 };
    let mut methods = Vec::new();
    // PSN needs one schema key per profile; the movies twin carries none,
    // so derive the usual concatenated-values key.
    let schema_keys: Vec<String> = data.schema_keys.clone().unwrap_or_else(|| {
        profiles
            .iter()
            .map(|p| p.concat_values().to_lowercase())
            .collect()
    });
    let all_methods = [ProgressiveMethod::Psn]
        .into_iter()
        .chain(ProgressiveMethod::SCHEMA_AGNOSTIC);
    for method in all_methods {
        let drain = |threads: usize| {
            let config = MethodConfig::default()
                .with_threads(Parallelism::new(threads).expect("threads > 0"));
            build_method(method, profiles, &config, Some(&schema_keys))
                .take(emissions)
                .collect::<Vec<_>>()
        };
        let (seq, par) = (drain(1), drain(4));
        let identical = seq.len() == par.len()
            && seq
                .iter()
                .zip(&par)
                .all(|(a, b)| a.pair == b.pair && a.weight.to_bits() == b.weight.to_bits());
        methods.push(MethodCheck {
            method: method.name().into(),
            identical,
            emissions: seq.len(),
        });
    }

    let report = Report {
        dataset: "movies".into(),
        n_profiles: profiles.len(),
        iters,
        host_parallelism: Parallelism::available().get(),
        host: sper_bench::host_info(),
        stamp: sper_bench::run_stamp(),
        kernel_path: sper_blocking::KernelPath::active().name(),
        schemes,
        methods,
    };
    println!("kernel dispatch: {}", report.kernel_path);
    for c in &report.schemes {
        println!(
            "{:<5} baseline {:>9.3} ms  peak {:>6.1} MiB   identical {}",
            c.scheme,
            c.baseline_ms,
            c.baseline_peak_bytes as f64 / (1024.0 * 1024.0),
            c.identical
        );
        for p in &c.points {
            if p.timed {
                println!(
                    "    {:>2} threads  {:>9.3} ms   speedup {:>6.2}x   peak {:>6.1} MiB",
                    p.threads,
                    p.ms,
                    p.speedup,
                    p.peak_bytes as f64 / (1024.0 * 1024.0)
                );
            } else {
                println!(
                    "    {:>2} threads  timing skipped (1-core host)   peak {:>6.1} MiB",
                    p.threads,
                    p.peak_bytes as f64 / (1024.0 * 1024.0)
                );
            }
        }
    }
    for m in &report.methods {
        println!(
            "{:<8} identical {}  ({} emissions)",
            m.method, m.identical, m.emissions
        );
    }
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    event!(Level::Info, "bench_weighting.wrote", path = out.as_str());
    // The identity checks are a CI gate, not just a record: a determinism
    // regression must fail the build, not merely write `false` into JSON.
    let broken = report
        .schemes
        .iter()
        .map(|c| (&c.scheme, c.identical))
        .chain(report.methods.iter().map(|m| (&m.method, m.identical)))
        .filter(|&(_, ok)| !ok)
        .map(|(name, _)| name.as_str())
        .collect::<Vec<_>>();
    if !broken.is_empty() {
        eprintln!("error: identity check failed for: {}", broken.join(", "));
        std::process::exit(1);
    }
}
