//! Figure 12: mean normalized AUC across the heterogeneous datasets at
//! `ec* ∈ {1, 5, 10, 20}` — the paper's verdict that PPS is the best
//! performer over large, heterogeneous data.
//!
//! SA-PSAB is averaged over movies only (it does not scale to the RDF
//! twins, §7.2) and flagged with `*`.

use sper_bench::{dataset, methods_for, paper_config, run_on};
use sper_core::ProgressiveMethod;
use sper_datagen::DatasetKind;
use sper_eval::auc::PAPER_EC_STARS;
use sper_eval::report::{f3, Table};
use std::collections::HashMap;

fn main() {
    println!("== Figure 12: mean AUC*@ec*, heterogeneous datasets ==\n");
    let mut scores: HashMap<ProgressiveMethod, Vec<[f64; 4]>> = HashMap::new();
    for kind in DatasetKind::HETEROGENEOUS {
        let data = dataset(kind);
        let config = paper_config(kind);
        for method in methods_for(kind) {
            let result = run_on(method, &data, &config, 25.0);
            let mut aucs = [0.0; 4];
            for (i, &ec) in PAPER_EC_STARS.iter().enumerate() {
                aucs[i] = result.auc(ec);
            }
            scores.entry(method).or_default().push(aucs);
        }
    }

    let mut table = Table::new(["method", "#ds", "AUC*@1", "AUC*@5", "AUC*@10", "AUC*@20"]);
    let order = [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::SaPsab,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];
    for method in order {
        let Some(per_dataset) = scores.get(&method) else {
            continue;
        };
        let n = per_dataset.len() as f64;
        let name = if per_dataset.len() < 3 {
            format!("{}*", method.name())
        } else {
            method.name().to_string()
        };
        let mut row = vec![name, per_dataset.len().to_string()];
        for i in 0..4 {
            let mean = per_dataset.iter().map(|a| a[i]).sum::<f64>() / n;
            row.push(f3(mean));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
    println!("* averaged over movies only (SA-PSAB does not scale to the RDF twins)");
}
