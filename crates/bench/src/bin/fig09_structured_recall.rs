//! Figure 9: recall progressiveness over the four structured datasets.
//!
//! Prints, per dataset, one row per method with recall sampled at the
//! paper's `ec*` grid (the paper plots `ec* ∈ \[0, 30\]` with a focus on
//! `\[0, 10\]`).

use sper_bench::{dataset, methods_for, paper_config, run_on, EC_GRID};
use sper_datagen::DatasetKind;
use sper_eval::report::{f3, Table};

fn main() {
    println!("== Figure 9: recall progressiveness, structured datasets ==\n");
    for kind in DatasetKind::STRUCTURED {
        let data = dataset(kind);
        let config = paper_config(kind);
        println!(
            "-- {} (|P| = {}, |DP| = {}) --",
            kind,
            data.profiles.len(),
            data.truth.num_matches()
        );
        let mut table = Table::new(
            std::iter::once("method".to_string()).chain(EC_GRID.iter().map(|e| format!("ec*={e}"))),
        );
        for method in methods_for(kind) {
            let result = run_on(method, &data, &config, *EC_GRID.last().unwrap());
            let mut row = vec![method.name().to_string()];
            for &(_, recall) in &result.curve.sample(&EC_GRID) {
                row.push(f3(recall));
            }
            table.add_row(row);
        }
        println!("{}", table.render());
    }
}
