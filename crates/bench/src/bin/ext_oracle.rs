//! Extension experiment: progressive ER with a perfect transitive oracle
//! (the crowdsourced setting of §2).
//!
//! For each method on the cora twin (large equivalence clusters → maximal
//! transitivity leverage), reports how many oracle queries full recall
//! needs, how many positives were saved by deduction, and the AUC of the
//! recall-per-query curve.

use sper_bench::{dataset, paper_config};
use sper_core::{build_method, ProgressiveMethod};
use sper_datagen::DatasetKind;
use sper_eval::oracle::run_with_oracle;
use sper_eval::report::{f3, Table};

fn main() {
    println!("== Extension: transitive-oracle progressive ER (cora twin) ==\n");
    let data = dataset(DatasetKind::Cora);
    let config = paper_config(DatasetKind::Cora);
    let total = data.truth.num_matches();
    println!(
        "|P| = {}, |DP| = {} (clusters up to 30 profiles)\n",
        data.profiles.len(),
        total
    );

    let mut table = Table::new([
        "method",
        "queries",
        "positives",
        "deduced pairs",
        "recall",
        "AUC*@1 (per query)",
    ]);
    for method in [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ] {
        let m = build_method(method, &data.profiles, &config, data.schema_keys.as_deref());
        let budget = (total as u64) * 30;
        let result = run_with_oracle(m, &data.truth, data.profiles.len(), budget);
        table.add_row([
            method.name().to_string(),
            result.queries.to_string(),
            result.positive_queries.to_string(),
            (result.curve.matches_found() as u64 - result.positive_queries).to_string(),
            f3(result.curve.final_recall()),
            f3(sper_eval::normalized_auc(&result.curve, 1.0)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "a cluster of k duplicates needs only k−1 positive answers for its\n\
         k(k−1)/2 pairs — the oracle setting the paper's methods deliberately\n\
         do not assume (§2), quantified here on top of them."
    );
}
