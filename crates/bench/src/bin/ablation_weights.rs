//! Ablation: weighting schemes for the equality-based methods.
//!
//! The paper fixes ARCS (§7 workflow step 4) but the Blocking Graph accepts
//! "all other weighting functions \[12\], \[20\]". This binary sweeps
//! ARCS / CBS / JS / ECBS through PBS and PPS on one structured and one RDF
//! twin, reporting `AUC*@{1,5,10}` — the design-choice ablation called out
//! in DESIGN.md §5.

use sper_bench::{dataset, paper_config, run_on};
use sper_blocking::WeightingScheme;
use sper_core::ProgressiveMethod;
use sper_datagen::DatasetKind;
use sper_eval::report::{f3, Table};

fn main() {
    println!("== Ablation: meta-blocking weighting schemes (PBS & PPS) ==\n");
    for kind in [DatasetKind::Restaurant, DatasetKind::Freebase] {
        let data = dataset(kind);
        println!(
            "-- {} (|P| = {}, |DP| = {}) --",
            kind,
            data.profiles.len(),
            data.truth.num_matches()
        );
        let mut table = Table::new(["method", "scheme", "AUC*@1", "AUC*@5", "AUC*@10"]);
        for method in [ProgressiveMethod::Pbs, ProgressiveMethod::Pps] {
            for scheme in WeightingScheme::ALL {
                let mut config = paper_config(kind);
                config.scheme = scheme;
                let result = run_on(method, &data, &config, 15.0);
                table.add_row([
                    method.name().to_string(),
                    scheme.name().to_string(),
                    f3(result.auc(1.0)),
                    f3(result.auc(5.0)),
                    f3(result.auc(10.0)),
                ]);
            }
        }
        println!("{}", table.render());
    }
}
