//! Exports the Fig. 9 / Fig. 11 recall curves (one series per method ×
//! dataset, sampled on a dense ec\* grid) for external plotting and
//! trajectory tracking.
//!
//! ```text
//! cargo run -p sper-bench --release --bin export_curves > curves.csv
//! cargo run -p sper-bench --release --bin export_curves -- --json > curves.json
//! ```
//!
//! The JSON form is machine-readable for `BENCH_*.json` trajectory
//! tracking: an array of series, each carrying its summary statistics
//! (`auc_at_10`, `final_recall`, timing) next to the sampled curve.

use serde::Serialize;
use sper_bench::{dataset, methods_for, paper_config, run_on};
use sper_datagen::DatasetKind;

#[derive(Serialize)]
struct SamplePoint {
    ec_star: f64,
    recall: f64,
}

#[derive(Serialize)]
struct CurveSeries {
    dataset: &'static str,
    method: &'static str,
    n_profiles: usize,
    n_matches: usize,
    auc_at_10: f64,
    final_recall: f64,
    init_time_us: u128,
    emission_time_us: u128,
    samples: Vec<SamplePoint>,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    // Dense ec* grid for smooth plots.
    let grid: Vec<f64> = (1..=60).map(|i| i as f64 * 0.5).collect();
    let mut series: Vec<CurveSeries> = Vec::new();
    if !json {
        println!("dataset,method,ec_star,recall");
    }
    for kind in DatasetKind::ALL {
        let data = dataset(kind);
        let config = paper_config(kind);
        for method in methods_for(kind) {
            let result = run_on(method, &data, &config, 30.0);
            let samples = result.curve.sample(&grid);
            if json {
                series.push(CurveSeries {
                    dataset: kind.name(),
                    method: method.name(),
                    n_profiles: data.profiles.len(),
                    n_matches: data.truth.num_matches(),
                    auc_at_10: result.auc(10.0),
                    final_recall: result.curve.final_recall(),
                    init_time_us: result.init_time.as_micros(),
                    emission_time_us: result.emission_time.as_micros(),
                    samples: samples
                        .into_iter()
                        .map(|(ec_star, recall)| SamplePoint { ec_star, recall })
                        .collect(),
                });
            } else {
                for (ec, recall) in samples {
                    println!("{},{},{ec},{recall:.6}", kind.name(), method.name());
                }
            }
        }
    }
    if json {
        println!("{}", serde::json::to_string(&series));
    }
}
