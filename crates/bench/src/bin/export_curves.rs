//! Exports the Fig. 9 / Fig. 11 recall curves as CSV (one row per method ×
//! dataset × ec\* sample) for external plotting.
//!
//! ```text
//! cargo run -p sper-bench --release --bin export_curves > curves.csv
//! ```

use sper_bench::{dataset, methods_for, paper_config, run_on};
use sper_datagen::DatasetKind;

fn main() {
    // Dense ec* grid for smooth plots.
    let grid: Vec<f64> = (1..=60).map(|i| i as f64 * 0.5).collect();
    println!("dataset,method,ec_star,recall");
    for kind in DatasetKind::ALL {
        let data = dataset(kind);
        let config = paper_config(kind);
        for method in methods_for(kind) {
            let result = run_on(method, &data, &config, 30.0);
            for (ec, recall) in result.curve.sample(&grid) {
                println!("{},{},{ec},{recall:.6}", kind.name(), method.name());
            }
        }
    }
}
