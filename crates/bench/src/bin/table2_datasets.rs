//! Table 2: the dataset characteristics of the seven twins at their
//! reference sizes (`scale = 1.0`; the heterogeneous twins' scale 1.0 is a
//! laptop-sized downscaling of the paper's millions — see DESIGN.md §2).

use sper_datagen::{DatasetKind, DatasetSpec};

fn main() {
    println!("== Table 2: dataset characteristics (synthetic twins) ==\n");
    println!(
        "{:<11} {:>13} {:>7} {:>9} {:>7}",
        "dataset", "|P|", "#attr", "|DP|", "|p̄|"
    );
    println!("{}", "-".repeat(52));
    for kind in DatasetKind::ALL {
        let data = DatasetSpec::paper(kind).generate();
        println!("{}", data.table2_row());
    }
    println!();
    println!("paper reference:");
    println!("  census      841        5     344    4.65   (twin: scale 1.0 = paper)");
    println!("  restaurant  864        5     112    5.00   (twin: scale 1.0 = paper)");
    println!("  cora        1.3k       12    17k    5.53   (twin: scale 1.0 = paper)");
    println!("  cddb        9.8k       106   300    18.75  (twin: scale 1.0 = paper)");
    println!("  movies      28k—23k    4—7   23k    7.11   (twin: scale 1.0 = paper)");
    println!("  dbpedia     1.2M—2.2M  30—50k 893k  15.47  (twin: 1:100 downscale)");
    println!("  freebase    4.2M—3.7M  37—11k 1.5M  24.54  (twin: 1:200 downscale)");
}
