//! Table 1: measured counterpart of the complexity table — initialization
//! time and emission throughput of every schema-agnostic method as the
//! input doubles, verifying the near-linear `O(|p̄|·|P|·log(|p̄|·|P|))`
//! initialization and `O(1)` amortized emission the paper claims.

use sper_bench::paper_config;
use sper_core::{build_method, ProgressiveMethod};
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_eval::report::{fmt_duration, Table};
use std::time::Instant;

fn main() {
    println!("== Table 1 (measured): init time & emission throughput vs |P| ==\n");
    let scales = [0.05, 0.1, 0.2];
    let methods = [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::SaPsab,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ];

    let mut table = Table::new(["method", "|P|", "init", "emit 10k", "emissions/ms"]);
    for &scale in &scales {
        let data = DatasetSpec::paper(DatasetKind::Movies)
            .with_scale(scale)
            .generate();
        let config = paper_config(DatasetKind::Movies);
        for method in methods {
            let t0 = Instant::now();
            let mut m = build_method(method, &data.profiles, &config, data.schema_keys.as_deref());
            let init = t0.elapsed();

            let t1 = Instant::now();
            let mut emitted = 0u32;
            while emitted < 10_000 {
                if m.next().is_none() {
                    break;
                }
                emitted += 1;
            }
            let emit = t1.elapsed();
            let per_ms = emitted as f64 / emit.as_secs_f64() / 1_000.0;
            table.add_row([
                method.name().to_string(),
                data.profiles.len().to_string(),
                fmt_duration(init),
                fmt_duration(emit),
                format!("{per_ms:.0}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!("paper Table 1 (asymptotic):");
    println!("  SA-PSN   space O(|p̄||P|)       init O(|p̄||P| log |p̄||P|)   emit O(1)");
    println!("  SA-PSAB  space O(s̄e|P|)        init O(s̄e|P| log s̄e|P|)     emit O(1)");
    println!("  GS-PSN   space O(wmax|p̄||P|)   init O(|p̄||P| log |p̄||P|)   emit O(1)");
    println!("  LS-PSN   space O(|p̄||P|)       init O(|p̄||P| log |p̄||P|)   emit O(1) or O(|p̄||P|)");
    println!(
        "  PPS      space O(|p̄||P|)       init O(|V|+|E|)              emit O(1) or O(|p̄||b̄|)"
    );
    println!(
        "  PBS      space O(|p̄||P|)       init O(|B| log |B|)          emit O(1) or O(‖b̄‖ log ‖b̄‖)"
    );
}
