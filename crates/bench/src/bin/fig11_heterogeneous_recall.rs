//! Figure 11: recall progressiveness over the large, heterogeneous
//! datasets (movies, dbpedia, freebase).
//!
//! Schema-based PSN is inapplicable (no usable schema keys); SA-PSAB runs
//! only on movies — its suffix forest does not scale to the RDF twins,
//! exactly as reported in §7.2.

use sper_bench::{dataset, methods_for, paper_config, run_on, EC_GRID};
use sper_datagen::DatasetKind;
use sper_eval::report::{f3, Table};

fn main() {
    println!("== Figure 11: recall progressiveness, heterogeneous datasets ==\n");
    for kind in DatasetKind::HETEROGENEOUS {
        let data = dataset(kind);
        let config = paper_config(kind);
        println!(
            "-- {} (|P1| = {}, |P2| = {}, |DP| = {}) --",
            kind,
            data.profiles.len_first(),
            data.profiles.len_second(),
            data.truth.num_matches()
        );
        let mut table = Table::new(
            std::iter::once("method".to_string()).chain(EC_GRID.iter().map(|e| format!("ec*={e}"))),
        );
        for method in methods_for(kind) {
            let result = run_on(method, &data, &config, *EC_GRID.last().unwrap());
            let mut row = vec![method.name().to_string()];
            for &(_, recall) in &result.curve.sample(&EC_GRID) {
                row.push(f3(recall));
            }
            table.add_row(row);
        }
        println!("{}", table.render());
    }
}
