//! Parallel-engine perf harness: times the sharded execution paths against
//! their sequential counterparts at 1/2/4/8 worker threads and emits
//! `BENCH_parallel.json` — the scaling-trajectory baseline future PRs
//! compare against.
//!
//! ```text
//! cargo run -q --release -p sper-bench --bin bench_parallel            # full run
//! cargo run -q --release -p sper-bench --bin bench_parallel -- --quick # CI smoke
//! cargo run -q --release -p sper-bench --bin bench_parallel -- --out x.json
//! ```
//!
//! Each measurement is the median of `iters` wall-clock runs (quick: 3,
//! full: 7) on the movies twin. The curves cover the three parallelized
//! layers of the engine:
//!
//! * **weight computation** — `parallel_blocking_graph` (LeCoBI-sharded
//!   meta-blocking edge weighting) vs `BlockingGraph::build`;
//! * **neighbor-list construction** — `NeighborList::par_build` (sharded
//!   tokenize/sort + tournament merge) vs `NeighborList::build`;
//! * **top-k scheduling** — `Pps::from_blocks_par` (parallel Algorithm-5
//!   initialization) vs the sequential constructor.
//!
//! Every parallel path is bit-identical to its sequential twin, so the
//! JSON also records a cheap identity check per curve, plus the dispatched
//! SIMD kernel (`kernel_path`) and the per-worker utilization of each
//! work-stealing fan-out. Speedups only materialize on multi-core hosts:
//! on a 1-core container the multi-thread points keep their identity
//! checks but skip timing (`timed: false`, zeroed ms/speedup) instead of
//! committing scheduler noise as speedup numbers.

use serde::Serialize;
use sper_bench::peak_bytes;
use sper_blocking::{
    parallel_blocking_graph, BlockingGraph, NeighborList, Parallelism, TokenBlocking,
    WeightingScheme,
};
use sper_core::pps::Pps;
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_obs::{event, Level};
use std::time::Instant;

const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct Point {
    threads: usize,
    ms: f64,
    /// Sequential-baseline time / this time.
    speedup: f64,
    /// High-water allocation of one build, bytes.
    peak_bytes: usize,
    /// False when timing was skipped (multi-thread point on a 1-core
    /// host) — `ms`/`speedup` are zeroed, the identity check still ran.
    timed: bool,
    /// Per-worker busy-time / wall-time of the work-stealing fan-out of
    /// the untimed build (empty for paths without stealing fan-outs).
    utilization: Vec<f64>,
}

#[derive(Serialize)]
struct Curve {
    name: String,
    baseline: String,
    baseline_ms: f64,
    /// Results verified identical to the sequential path at every point.
    identical: bool,
    points: Vec<Point>,
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    n_profiles: usize,
    iters: usize,
    /// Worker threads the measuring machine can actually run — scaling is
    /// bounded by this, not by the requested thread count.
    host_parallelism: usize,
    host: sper_bench::HostInfo,
    stamp: sper_bench::RunStamp,
    /// The SIMD kernel the runtime dispatcher chose for this run
    /// (`avx2`/`sse2`/`scalar`; forced to `scalar` under `SPER_NO_SIMD=1`).
    kernel_path: &'static str,
    curves: Vec<Curve>,
}

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn curve(
    name: &str,
    baseline: &str,
    baseline_ms: f64,
    identical: bool,
    mut build_peak: impl FnMut(usize) -> usize,
    mut timed_ms: impl FnMut(usize) -> f64,
) -> Curve {
    let single_core = Parallelism::available().get() == 1;
    let points = THREAD_STEPS
        .iter()
        .map(|&threads| {
            // Drain stale fan-out stats so the utilization below belongs
            // to this curve's build.
            let _ = sper_blocking::take_last_fanout_stats();
            let peak = build_peak(threads);
            let utilization = sper_blocking::take_last_fanout_stats()
                .map(|s| {
                    s.utilization()
                        .iter()
                        .map(|u| (u * 1000.0).round() / 1000.0)
                        .collect()
                })
                .unwrap_or_default();
            // Multi-thread timings on a 1-core host are scheduler noise;
            // keep the identity check and peak, skip the stopwatch.
            let timed = threads == 1 || !single_core;
            let (ms, speedup) = if timed {
                let ms = timed_ms(threads);
                (ms, baseline_ms / ms)
            } else {
                (0.0, 0.0)
            };
            Point {
                threads,
                ms,
                speedup,
                peak_bytes: peak,
                timed,
                utilization,
            }
        })
        .collect();
    Curve {
        name: name.into(),
        baseline: baseline.into(),
        baseline_ms,
        identical,
        points,
    }
}

fn main() {
    sper_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_parallel.json")
        .to_string();
    let iters = if quick { 3 } else { 7 };
    // Quick mode still needs enough volume for per-thread scaling to mean
    // anything — spawn/join overhead dominates tiny inputs.
    let scale = if quick { 0.1 } else { 0.5 };

    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(scale)
        .generate();
    let profiles = &data.profiles;
    event!(
        Level::Info,
        "bench_parallel.start",
        dataset = "movies",
        profiles = profiles.len(),
        iters = iters,
        host_parallelism = Parallelism::available().get(),
    );

    let mut curves = Vec::new();

    // --- Meta-blocking edge weighting (the acceptance-bar curve) ---
    let mut blocks = TokenBlocking::default().build(profiles);
    blocks.sort_by_cardinality();
    let sequential_graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
    let baseline_ms = median_ms(iters, || {
        std::hint::black_box(BlockingGraph::build(&blocks, WeightingScheme::Arcs));
    });
    let identical = THREAD_STEPS.iter().all(|&t| {
        let g = parallel_blocking_graph(&blocks, WeightingScheme::Arcs, t).expect("threads > 0");
        g.edges().zip(sequential_graph.edges()).all(|(a, b)| a == b)
            && g.num_edges() == sequential_graph.num_edges()
    });
    curves.push(curve(
        "edge_weighting",
        "sequential BlockingGraph::build",
        baseline_ms,
        identical,
        |threads| {
            peak_bytes(|| parallel_blocking_graph(&blocks, WeightingScheme::Arcs, threads).unwrap())
                .1
        },
        |threads| {
            median_ms(iters, || {
                std::hint::black_box(
                    parallel_blocking_graph(&blocks, WeightingScheme::Arcs, threads).unwrap(),
                );
            })
        },
    ));

    // --- Neighbor-list construction ---
    let sequential_nl = NeighborList::build(profiles, 42);
    let baseline_ms = median_ms(iters, || {
        std::hint::black_box(NeighborList::build(profiles, 42));
    });
    let identical = THREAD_STEPS.iter().all(|&t| {
        NeighborList::par_build(profiles, 42, t).unwrap().as_slice() == sequential_nl.as_slice()
    });
    curves.push(curve(
        "neighbor_list_build",
        "sequential NeighborList::build",
        baseline_ms,
        identical,
        |threads| peak_bytes(|| NeighborList::par_build(profiles, 42, threads).unwrap()).1,
        |threads| {
            median_ms(iters, || {
                std::hint::black_box(NeighborList::par_build(profiles, 42, threads).unwrap());
            })
        },
    ));

    // --- PPS top-k scheduling (Algorithm-5 initialization) ---
    // Token blocking is built once outside the timed closures; the clone
    // per iteration is three memcpys of the CSR arrays, so the curve
    // isolates the (parallelized) scheduling init itself.
    let pps_blocks = TokenBlocking::default().build(profiles);
    let scheduled =
        || Pps::from_blocks(pps_blocks.clone(), WeightingScheme::Arcs, Pps::DEFAULT_KMAX);
    let sequential_order: Vec<_> = scheduled().sorted_profile_list().to_vec();
    let baseline_ms = median_ms(iters, || {
        std::hint::black_box(scheduled());
    });
    let identical = THREAD_STEPS.iter().all(|&t| {
        let pps = Pps::from_blocks_par(
            pps_blocks.clone(),
            WeightingScheme::Arcs,
            Pps::DEFAULT_KMAX,
            Parallelism::new(t).unwrap(),
        );
        pps.sorted_profile_list() == sequential_order.as_slice()
    });
    curves.push(curve(
        "pps_scheduling_init",
        "sequential Pps::from_blocks",
        baseline_ms,
        identical,
        |threads| {
            peak_bytes(|| {
                Pps::from_blocks_par(
                    pps_blocks.clone(),
                    WeightingScheme::Arcs,
                    Pps::DEFAULT_KMAX,
                    Parallelism::new(threads).unwrap(),
                )
            })
            .1
        },
        |threads| {
            median_ms(iters, || {
                std::hint::black_box(Pps::from_blocks_par(
                    pps_blocks.clone(),
                    WeightingScheme::Arcs,
                    Pps::DEFAULT_KMAX,
                    Parallelism::new(threads).unwrap(),
                ));
            })
        },
    ));

    let report = Report {
        dataset: "movies".into(),
        n_profiles: profiles.len(),
        iters,
        host_parallelism: Parallelism::available().get(),
        host: sper_bench::host_info(),
        stamp: sper_bench::run_stamp(),
        kernel_path: sper_blocking::KernelPath::active().name(),
        curves,
    };
    println!("kernel dispatch: {}", report.kernel_path);
    for c in &report.curves {
        println!(
            "{:<22} baseline {:>9.3} ms   identical {}",
            c.name, c.baseline_ms, c.identical
        );
        for p in &c.points {
            if p.timed {
                println!(
                    "    {:>2} threads  {:>9.3} ms   speedup {:>5.2}x",
                    p.threads, p.ms, p.speedup
                );
            } else {
                println!("    {:>2} threads  timing skipped (1-core host)", p.threads);
            }
        }
    }
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    event!(Level::Info, "bench_parallel.wrote", path = out.as_str());
    // The per-curve identity checks are a CI gate: a bit-identity
    // regression must fail the build, not merely write `false` into JSON.
    let broken: Vec<&str> = report
        .curves
        .iter()
        .filter(|c| !c.identical)
        .map(|c| c.name.as_str())
        .collect();
    if !broken.is_empty() {
        eprintln!("error: identity check failed for: {}", broken.join(", "));
        std::process::exit(1);
    }
}
