//! Persistence perf harness: times loading a `.sper` snapshot against the
//! cold substrate rebuild it replaces, and the checkpoint save/load cycle
//! of a mid-stream session, emitting `BENCH_store.json` — the baseline
//! future PRs compare against.
//!
//! ```text
//! cargo run -q --release -p sper-bench --bin bench_store            # full run
//! cargo run -q --release -p sper-bench --bin bench_store -- --quick # CI smoke
//! cargo run -q --release -p sper-bench --bin bench_store -- --out x.json
//! ```
//!
//! Each measurement is the median of `iters` wall-clock runs (quick: 3,
//! full: 7) on the movies twin:
//!
//! * **cold rebuild** — token blocking + cardinality scheduling + profile
//!   index + neighbor list from raw profiles (tokenize, hash, sort);
//! * **snapshot write / load** — the same substrates through the store's
//!   sectioned binary format (array dumps + CRC32, no tokenization);
//! * **checkpoint write / load / resume** — a budgeted PPS streaming
//!   session persisted mid-run and rehydrated.
//!
//! The loaded substrates are verified bit-identical to the built ones, so
//! the recorded speedup is for an exact replacement, not an approximation.

use serde::Serialize;
use sper_bench::peak_bytes;
use sper_blocking::{NeighborList, ProfileIndex, TokenBlocking};
use sper_core::ProgressiveMethod;
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_obs::{event, Level};
use sper_store::{SessionCheckpoint, Snapshot, Store};
use sper_stream::{ProgressiveSession, SessionConfig};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    dataset: String,
    n_profiles: usize,
    iters: usize,
    host: sper_bench::HostInfo,
    stamp: sper_bench::RunStamp,
    /// Tokenize + block + schedule + index + neighbor-list, from raw
    /// profiles.
    cold_rebuild_ms: f64,
    /// High-water allocation of one cold rebuild, bytes.
    cold_rebuild_peak_bytes: usize,
    /// Serializing the same substrates to the sectioned store (in
    /// memory; the file write adds only the page-cache copy).
    snapshot_write_ms: f64,
    /// Parsing + validating + reassembling the substrates from bytes.
    snapshot_load_ms: f64,
    /// High-water allocation of one snapshot load, bytes.
    snapshot_load_peak_bytes: usize,
    /// `cold_rebuild_ms / snapshot_load_ms` — the acceptance-bar number.
    load_speedup_vs_rebuild: f64,
    /// Snapshot size on disk.
    snapshot_bytes: usize,
    /// Loaded substrates verified bit-identical to the built ones.
    identical: bool,
    /// Mid-stream session state → store bytes.
    checkpoint_write_ms: f64,
    /// Store bytes → validated, resumable session state.
    checkpoint_load_ms: f64,
    /// High-water allocation of one checkpoint load, bytes.
    checkpoint_load_peak_bytes: usize,
    /// Checkpoint size.
    checkpoint_bytes: usize,
    /// Epochs the checkpointed session had completed.
    checkpoint_epochs: usize,
}

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

fn main() {
    sper_bench::init_obs();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_store.json")
        .to_string();
    let iters = if quick { 3 } else { 7 };
    let scale = if quick { 0.1 } else { 0.5 };

    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(scale)
        .generate();
    let profiles = &data.profiles;
    event!(
        Level::Info,
        "bench_store.start",
        dataset = "movies",
        profiles = profiles.len(),
        iters = iters,
    );

    // --- Cold rebuild: what a restart pays without the store ---
    let build = || {
        let mut blocks = TokenBlocking::default().build(profiles);
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let nl = NeighborList::build(profiles, 42);
        (blocks, index, nl)
    };
    let ((blocks, index, nl), cold_rebuild_peak_bytes) = peak_bytes(build);
    let cold_rebuild_ms = median_ms(iters, || {
        std::hint::black_box(build());
    });

    // --- Snapshot write / load ---
    let make_snapshot = || {
        let mut s = Snapshot::new(Arc::clone(blocks.interner()));
        s.profiles = Some(profiles.clone());
        s.blocks = Some(blocks.clone());
        s.profile_index = Some(index.clone());
        s.neighbor_list = Some(nl.clone());
        s
    };
    let bytes = make_snapshot()
        .to_store()
        .expect("substrates share one interner")
        .to_bytes();
    let snapshot_bytes = bytes.len();
    let snapshot_write_ms = median_ms(iters, || {
        std::hint::black_box(
            make_snapshot()
                .to_store()
                .expect("substrates share one interner")
                .to_bytes(),
        );
    });
    let snapshot_load_ms = median_ms(iters, || {
        let store = Store::from_bytes(&bytes).expect("clean bytes parse");
        std::hint::black_box(Snapshot::from_store(&store).expect("clean snapshot loads"));
    });
    let (_, snapshot_load_peak_bytes) = peak_bytes(|| {
        let store = Store::from_bytes(&bytes).expect("clean bytes parse");
        Snapshot::from_store(&store).expect("clean snapshot loads")
    });

    // --- Identity: the load is an exact replacement for the rebuild ---
    let loaded = Snapshot::from_store(&Store::from_bytes(&bytes).expect("parses")).expect("loads");
    let identical = {
        let a = blocks.raw_parts();
        let b = loaded.blocks.as_ref().expect("blocks stored").raw_parts();
        let l_index = loaded.profile_index.as_ref().expect("index stored");
        let l_nl = loaded.neighbor_list.as_ref().expect("nl stored");
        a.keys == b.keys
            && a.offsets == b.offsets
            && a.members == b.members
            && a.n_firsts == b.n_firsts
            && index.raw_parts() == l_index.raw_parts()
            && nl.as_slice() == l_nl.as_slice()
    };

    // --- Checkpoint save / load of a mid-stream session ---
    let mut session = ProgressiveSession::new(
        sper_model::ProfileCollectionBuilder::dirty().build(),
        SessionConfig::new(ProgressiveMethod::Pps),
    );
    let rows: Vec<Vec<sper_model::Attribute>> =
        profiles.iter().map(|p| p.attributes.clone()).collect();
    for chunk in rows.chunks(rows.len().div_ceil(3).max(1)) {
        session.ingest_batch(chunk.to_vec());
        session.emit_epoch(Some(500));
    }
    let checkpoint_epochs = session.reports().len();
    let ck_bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
    let checkpoint_bytes = ck_bytes.len();
    let checkpoint_write_ms = median_ms(iters, || {
        std::hint::black_box(SessionCheckpoint::of(&session).to_store().to_bytes());
    });
    let checkpoint_load_ms = median_ms(iters, || {
        let store = Store::from_bytes(&ck_bytes).expect("clean bytes parse");
        std::hint::black_box(
            SessionCheckpoint::from_store(&store).expect("clean checkpoint loads"),
        );
    });
    let (_, checkpoint_load_peak_bytes) = peak_bytes(|| {
        let store = Store::from_bytes(&ck_bytes).expect("clean bytes parse");
        SessionCheckpoint::from_store(&store).expect("clean checkpoint loads")
    });

    let report = Report {
        dataset: "movies".into(),
        n_profiles: profiles.len(),
        iters,
        host: sper_bench::host_info(),
        stamp: sper_bench::run_stamp(),
        cold_rebuild_ms,
        cold_rebuild_peak_bytes,
        snapshot_write_ms,
        snapshot_load_ms,
        snapshot_load_peak_bytes,
        load_speedup_vs_rebuild: cold_rebuild_ms / snapshot_load_ms,
        snapshot_bytes,
        identical,
        checkpoint_write_ms,
        checkpoint_load_ms,
        checkpoint_load_peak_bytes,
        checkpoint_bytes,
        checkpoint_epochs,
    };
    println!(
        "cold rebuild      {:>9.3} ms\nsnapshot write    {:>9.3} ms\nsnapshot load     {:>9.3} ms   ({:.2}x faster than rebuild)\nsnapshot size     {:>9} bytes   identical {}\ncheckpoint write  {:>9.3} ms\ncheckpoint load   {:>9.3} ms\ncheckpoint size   {:>9} bytes   ({} epochs)",
        report.cold_rebuild_ms,
        report.snapshot_write_ms,
        report.snapshot_load_ms,
        report.load_speedup_vs_rebuild,
        report.snapshot_bytes,
        report.identical,
        report.checkpoint_write_ms,
        report.checkpoint_load_ms,
        report.checkpoint_bytes,
        report.checkpoint_epochs,
    );
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    event!(Level::Info, "bench_store.wrote", path = out.as_str());
}
