//! Observability overhead harness: runs the same progressive stream on
//! the movies twin twice — once with every probe dark, once with the
//! full live-introspection stack armed (Debug-level ring sink, metrics
//! registry, HTTP scrape listener) — and emits `BENCH_obs.json`.
//!
//! ```text
//! cargo run -q --release -p sper-bench --bin bench_obs            # full run
//! cargo run -q --release -p sper-bench --bin bench_obs -- --quick # CI smoke
//! cargo run -q --release -p sper-bench --bin bench_obs -- --out x.json
//! ```
//!
//! Two gates, one hard and one honest:
//!
//! * **identical** — the instrumented run's `(pair, weight-bits)` epoch
//!   sequence equals the dark run's, byte for byte. A mismatch exits
//!   non-zero: observability perturbing emission is a correctness bug,
//!   not a perf regression.
//! * **overhead** — instrumented wall-clock / dark wall-clock. The
//!   budget is ≤ 5%; a full (non-`--quick`) run over budget exits
//!   non-zero, quick runs only record the number (CI containers are too
//!   noisy for a tight timing gate on a small workload).

use serde::Serialize;
use sper_core::ProgressiveMethod;
use sper_datagen::{DatasetKind, DatasetSpec};
use sper_obs::{metrics, trace, BuildInfo, Level, RingSink, DEFAULT_RING_CAPACITY};
use sper_stream::{ProgressiveSession, SessionConfig};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    dataset: String,
    n_profiles: usize,
    batches: usize,
    iters: usize,
    host: sper_bench::HostInfo,
    stamp: sper_bench::RunStamp,
    /// What the instrumented configuration armed.
    instrumented_with: &'static str,
    /// Median wall-clock of the dark run, ms.
    off_ms: f64,
    /// Median wall-clock of the instrumented run, ms.
    on_ms: f64,
    /// Median of the per-iteration instrumented/dark ratios (each pair
    /// runs back to back so container drift cancels) — 1.05 is the budget.
    overhead: f64,
    /// Instrumented and dark runs emitted identical (pair, weight-bits)
    /// epoch sequences.
    identical: bool,
    /// Comparisons emitted across all epochs (same in both runs when
    /// `identical`).
    emissions: usize,
    /// Records held by the flight-recorder ring after the instrumented
    /// runs, and how many older ones it evicted.
    ring_len: usize,
    ring_dropped: u64,
    /// Median wall-clock with the fault registry fully disarmed, ms.
    fault_unarmed_ms: f64,
    /// Median wall-clock with the registry armed on an inert site (a
    /// failpoint that no code path ever hits), ms.
    fault_armed_ms: f64,
    /// Median paired armed-inert/unarmed ratio. Armed-but-not-matching
    /// is the *expensive* side of the unarmed-failpoint claim (every hit
    /// site takes the registry lock instead of one relaxed load), so
    /// this bounds the cost of compiling failpoints in — 1.01 is the
    /// budget.
    fault_overhead: f64,
    /// The armed-inert run emitted the same stream as the dark run.
    fault_identical: bool,
}

/// Streams the rows in `batches` ingest/emit rounds and returns every
/// emitted comparison as comparable bits, epoch order preserved.
fn stream_once(
    rows: &[Vec<sper_model::Attribute>],
    batches: usize,
) -> Vec<(sper_model::Pair, u64)> {
    let mut session = ProgressiveSession::new(
        sper_model::ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    let mut out = Vec::new();
    for batch in rows.chunks(rows.len().div_ceil(batches).max(1)) {
        session.ingest_batch(batch.to_vec());
        let outcome = session.emit_epoch(None);
        out.extend(
            outcome
                .comparisons
                .iter()
                .map(|c| (c.pair, c.weight.to_bits())),
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_obs.json")
        .to_string();
    // The workload is an *exhaustive* epoch drain (every comparison in
    // every epoch), which grows quadratically with scale — 0.2 keeps the
    // full run in minutes while still emitting ~16M comparisons per pass.
    let iters = if quick { 3 } else { 5 };
    let scale = if quick { 0.1 } else { 0.2 };
    let batches = 4;

    let data = DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(scale)
        .generate();
    let rows: Vec<_> = data.profiles.iter().map(|p| p.attributes.clone()).collect();
    println!(
        "movies twin: {} profiles, {} batches, {} iters",
        rows.len(),
        batches,
        iters
    );

    // Identity first: one dark run vs one run under the full
    // live-introspection stack — the same shape `sper stream --listen`
    // arms: a Debug-level flight-recorder ring, the metrics registry,
    // and the HTTP scrape listener.
    assert!(!trace::enabled(Level::Error), "a trace sink leaked in");
    assert!(!metrics::enabled(), "metrics leaked in");
    let dark = stream_once(&rows, batches);

    let ring = Arc::new(RingSink::new(DEFAULT_RING_CAPACITY));
    let arm = || {
        trace::install_sink(ring.clone(), Level::Debug);
        metrics::set_enabled(true);
    };
    let disarm = || {
        trace::clear_sink();
        metrics::set_enabled(false);
    };
    let mut server = sper_obs::serve(
        "127.0.0.1:0",
        BuildInfo {
            version: env!("CARGO_PKG_VERSION").to_string(),
            kernel: "bench".to_string(),
        },
        Some(ring.clone()),
    )
    .expect("bind scrape listener");
    arm();
    let lit = stream_once(&rows, batches);
    let identical = dark == lit;

    // Timing is *paired*: each iteration runs dark then instrumented
    // back to back and contributes one overhead ratio, so slow drift on
    // a shared container (thermal, noisy neighbors) hits both sides of
    // every pair equally instead of biasing whichever phase ran later.
    // The listener thread stays up throughout — idle-blocked in accept,
    // it costs nothing — only the sink and the metrics switch toggle.
    let mut offs = Vec::with_capacity(iters);
    let mut ons = Vec::with_capacity(iters);
    let mut ratios = Vec::with_capacity(iters);
    for _ in 0..iters {
        disarm();
        let t0 = Instant::now();
        std::hint::black_box(stream_once(&rows, batches));
        let off = t0.elapsed().as_secs_f64() * 1e3;
        arm();
        let t0 = Instant::now();
        std::hint::black_box(stream_once(&rows, batches));
        let on = t0.elapsed().as_secs_f64() * 1e3;
        offs.push(off);
        ons.push(on);
        ratios.push(on / off);
    }
    server.shutdown();
    disarm();

    // Failpoint harness cost, measured from its expensive side: an
    // *armed* registry whose only site is never hit forces every real
    // site the stream touches through the slow registry path, so the
    // ratio upper-bounds what unarmed failpoints (one relaxed load per
    // site) can cost. Probes stay dark — this isolates the fault layer.
    assert!(!sper_obs::fault::armed(), "a fault schedule leaked in");
    sper_obs::fault::arm("bench.inert.site=err(io)").expect("inert schedule parses");
    let inert = stream_once(&rows, batches);
    let fault_identical = dark == inert;
    assert_eq!(
        sper_obs::fault::fired("bench.inert.site"),
        0,
        "the inert site must never fire"
    );
    sper_obs::fault::disarm();
    let mut fault_offs = Vec::with_capacity(iters);
    let mut fault_ons = Vec::with_capacity(iters);
    let mut fault_ratios = Vec::with_capacity(iters);
    for _ in 0..iters {
        sper_obs::fault::disarm();
        let t0 = Instant::now();
        std::hint::black_box(stream_once(&rows, batches));
        let off = t0.elapsed().as_secs_f64() * 1e3;
        sper_obs::fault::arm("bench.inert.site=err(io)").expect("inert schedule parses");
        let t0 = Instant::now();
        std::hint::black_box(stream_once(&rows, batches));
        let on = t0.elapsed().as_secs_f64() * 1e3;
        fault_offs.push(off);
        fault_ons.push(on);
        fault_ratios.push(on / off);
    }
    sper_obs::fault::disarm();

    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let (off_ms, on_ms) = (median(offs), median(ons));
    let overhead = median(ratios);
    let (fault_unarmed_ms, fault_armed_ms) = (median(fault_offs), median(fault_ons));
    let fault_overhead = median(fault_ratios);
    let report = Report {
        dataset: "movies".into(),
        n_profiles: rows.len(),
        batches,
        iters,
        host: sper_bench::host_info(),
        stamp: sper_bench::run_stamp(),
        instrumented_with: "ring sink (Debug) + metrics registry + scrape listener",
        off_ms,
        on_ms,
        overhead: (overhead * 10_000.0).round() / 10_000.0,
        identical,
        emissions: dark.len(),
        ring_len: ring.snapshot().len(),
        ring_dropped: ring.dropped(),
        fault_unarmed_ms,
        fault_armed_ms,
        fault_overhead: (fault_overhead * 10_000.0).round() / 10_000.0,
        fault_identical,
    };
    println!(
        "dark {:>9.3} ms   instrumented {:>9.3} ms   overhead {:>5.2}%   identical {}",
        report.off_ms,
        report.on_ms,
        (report.overhead - 1.0) * 100.0,
        report.identical
    );
    println!(
        "fault unarmed {:>9.3} ms   armed-inert {:>9.3} ms   overhead {:>5.2}%   identical {}",
        report.fault_unarmed_ms,
        report.fault_armed_ms,
        (report.fault_overhead - 1.0) * 100.0,
        report.fault_identical
    );
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if !report.identical {
        eprintln!("error: instrumentation changed the emission stream");
        std::process::exit(1);
    }
    if !report.fault_identical {
        eprintln!("error: an armed (never-firing) fault schedule changed the emission stream");
        std::process::exit(1);
    }
    if !quick && report.overhead > 1.05 {
        eprintln!(
            "error: instrumentation overhead {:.2}% exceeds the 5% budget",
            (report.overhead - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    if !quick && report.fault_overhead > 1.01 {
        eprintln!(
            "error: failpoint overhead {:.2}% exceeds the 1% budget",
            (report.fault_overhead - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}
