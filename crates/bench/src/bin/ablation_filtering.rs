//! Ablation: the Block Filtering ratio (§7 workflow step 3 fixes 0.8).
//!
//! Sweeps the retained-blocks ratio and reports final recall plus
//! `AUC*@10` for PPS — showing the recall/efficiency trade-off behind the
//! paper's default.

use sper_bench::{dataset, paper_config, run_on};
use sper_blocking::TokenBlockingWorkflow;
use sper_core::ProgressiveMethod;
use sper_datagen::DatasetKind;
use sper_eval::report::{f3, Table};

fn main() {
    println!("== Ablation: Block Filtering ratio (PPS, dbpedia twin) ==\n");
    let data = dataset(DatasetKind::Dbpedia);
    let mut table = Table::new([
        "filter ratio",
        "AUC*@1",
        "AUC*@10",
        "final recall",
        "emissions",
    ]);
    for ratio in [0.4, 0.6, 0.8, 1.0] {
        let mut config = paper_config(DatasetKind::Dbpedia);
        config.workflow = TokenBlockingWorkflow {
            purge_ratio: 0.1,
            filter_ratio: ratio,
        };
        let result = run_on(ProgressiveMethod::Pps, &data, &config, 15.0);
        table.add_row([
            format!("{ratio:.1}"),
            f3(result.auc(1.0)),
            f3(result.auc(10.0)),
            f3(result.curve.final_recall()),
            result.curve.emissions().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper default: 0.8 (retain each profile in 80% of its smallest blocks)");
}
