//! # sper-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the index) plus criterion
//! micro-benchmarks (`benches/benches.rs`).
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run -p sper-bench --release --bin fig09_structured_recall
//! SPER_SCALE=1.0 cargo run -p sper-bench --release --bin fig11_heterogeneous_recall
//! ```
//!
//! `SPER_SCALE` multiplies the per-dataset default scale (the heterogeneous
//! twins default to a fraction of their laptop-scale-1.0 size so every
//! binary finishes in minutes).

use serde::Serialize;
use sper_core::{build_method, MethodConfig, ProgressiveMethod};
use sper_datagen::{DatasetKind, DatasetSpec, GeneratedDataset};
use sper_eval::runner::{run_progressive, RunOptions, RunResult};

/// The counting allocator every bench binary measures through: two
/// relaxed atomic ops per allocation, shared here so each harness reads
/// peaks from one place instead of hand-rolling its own wrapper.
#[global_allocator]
pub static ALLOC: sper_obs::PeakAllocTracker = sper_obs::PeakAllocTracker::new();

/// Runs `f` once and returns its result plus its peak allocation delta in
/// bytes: the high-water mark above the bytes already live at entry.
pub fn peak_bytes<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOC.live_bytes();
    ALLOC.reset_peak();
    let out = f();
    (out, ALLOC.peak_bytes().saturating_sub(before))
}

/// Serializable mirror of [`sper_obs::HostInfo`] (the orphan rule keeps
/// the serde derive out of the dependency-free obs crate), stamped into
/// every committed `BENCH_*.json` so baselines are self-describing.
#[derive(Serialize, Debug, Clone)]
pub struct HostInfo {
    /// `processor` entries in `/proc/cpuinfo` (0 if unreadable).
    pub cores: usize,
    /// `std::thread::available_parallelism()` — what the scheduler grants.
    pub host_parallelism: usize,
    /// Memory page size in bytes (0 off-Linux).
    pub page_size: usize,
    /// Operating system the binary was compiled for.
    pub os: &'static str,
    /// SIMD extensions detected at runtime (empty off x86_64).
    pub cpu_features: Vec<&'static str>,
}

/// Probes the measuring machine for the `host` section of a BENCH report.
pub fn host_info() -> HostInfo {
    let h = sper_obs::HostInfo::probe();
    HostInfo {
        cores: h.cores,
        host_parallelism: h.host_parallelism,
        page_size: h.page_size,
        os: h.os,
        cpu_features: h.cpu_features,
    }
}

/// Serializable mirror of [`sper_obs::RunStamp`]: when the numbers were
/// taken and at which revision, so a committed `BENCH_*.json` can be
/// matched to the commit that produced it without trusting git history.
#[derive(Serialize, Debug, Clone)]
pub struct RunStamp {
    /// ISO-8601 UTC wall-clock time the report was produced.
    pub timestamp: String,
    /// Abbreviated git revision of the working tree (`"unknown"` when
    /// not built inside a repository).
    pub git_rev: String,
}

/// Captures the timestamp + git revision stamped into every BENCH report.
pub fn run_stamp() -> RunStamp {
    let s = sper_obs::RunStamp::capture();
    RunStamp {
        timestamp: s.timestamp,
        git_rev: s.git_rev,
    }
}

/// Installs the human-readable stderr sink the bench binaries report
/// progress through (Info level) — their old `eprintln!` status lines,
/// now flowing through the same pipeline the CLI's `-v` uses.
pub fn init_obs() {
    sper_obs::trace::install_sink(
        std::sync::Arc::new(sper_obs::StderrSink::new(sper_obs::Level::Info)),
        sper_obs::Level::Info,
    );
}

/// The `ec*` sampling grid used by the recall-progressiveness figures.
pub const EC_GRID: [f64; 9] = [1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0];

/// Default generation scale per dataset: Table 2 scale for the structured
/// twins, a fraction of laptop-scale-1.0 for the heterogeneous ones.
pub fn default_scale(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Census | DatasetKind::Restaurant | DatasetKind::Cora => 1.0,
        DatasetKind::Cddb => 1.0,
        DatasetKind::Movies => 0.2,
        DatasetKind::Dbpedia => 0.3,
        DatasetKind::Freebase => 0.3,
    }
}

/// Scale multiplier from the `SPER_SCALE` environment variable (default 1).
pub fn env_scale() -> f64 {
    std::env::var("SPER_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Generates a twin at its default (env-scaled) size.
pub fn dataset(kind: DatasetKind) -> GeneratedDataset {
    let scale = default_scale(kind) * env_scale();
    DatasetSpec::paper(kind).with_scale(scale).generate()
}

/// The method configuration the paper uses for a dataset family (§7):
/// `wmax = 20` for structured, `wmax = 200` for heterogeneous datasets.
pub fn paper_config(kind: DatasetKind) -> MethodConfig {
    if DatasetKind::STRUCTURED.contains(&kind) {
        MethodConfig::default()
    } else {
        MethodConfig::heterogeneous()
    }
}

/// Runs one method on a generated dataset up to `max_ec_star`.
pub fn run_on(
    method: ProgressiveMethod,
    data: &GeneratedDataset,
    config: &MethodConfig,
    max_ec_star: f64,
) -> RunResult {
    let options = RunOptions {
        max_ec_star,
        stop_at_full_recall: true,
    };
    run_progressive(
        || build_method(method, &data.profiles, config, data.schema_keys.as_deref()),
        &data.truth,
        options,
    )
}

/// The methods plotted for a dataset in Figs. 9/11: PSN only where schema
/// keys exist; SA-PSAB is skipped on the two largest RDF twins, where its
/// suffix forest does not scale (exactly as in Fig. 11b–c).
pub fn methods_for(kind: DatasetKind) -> Vec<ProgressiveMethod> {
    let mut methods = Vec::new();
    if kind.has_schema_keys() {
        methods.push(ProgressiveMethod::Psn);
    }
    methods.push(ProgressiveMethod::SaPsn);
    if !matches!(kind, DatasetKind::Dbpedia | DatasetKind::Freebase) {
        methods.push(ProgressiveMethod::SaPsab);
    }
    methods.extend(ProgressiveMethod::ADVANCED);
    methods
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_positive() {
        for kind in DatasetKind::ALL {
            assert!(default_scale(kind) > 0.0);
        }
    }

    #[test]
    fn method_lists_follow_the_paper() {
        let census = methods_for(DatasetKind::Census);
        assert!(census.contains(&ProgressiveMethod::Psn));
        assert!(census.contains(&ProgressiveMethod::SaPsab));
        let freebase = methods_for(DatasetKind::Freebase);
        assert!(!freebase.contains(&ProgressiveMethod::Psn));
        assert!(!freebase.contains(&ProgressiveMethod::SaPsab));
        assert!(freebase.contains(&ProgressiveMethod::Pps));
    }

    #[test]
    fn quick_run_smoke() {
        let data = DatasetSpec::paper(DatasetKind::Census)
            .with_scale(0.1)
            .generate();
        let result = run_on(
            ProgressiveMethod::LsPsn,
            &data,
            &paper_config(DatasetKind::Census),
            5.0,
        );
        assert!(result.curve.matches_found() > 0);
    }
}
