//! Criterion micro-benchmarks: initialization phase per method, emission
//! throughput, weighting-scheme cost, blocking-workflow stages, and the
//! string-similarity match functions of §7.3.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sper_bench::paper_config;
use sper_blocking::{
    legacy, BlockFilter, BlockPurger, IncrementalProfileIndex, NeighborList, ProfileIndex,
    TokenBlocking, WeightingScheme,
};
use sper_core::{build_method, ProgressiveMethod};
use sper_datagen::{DatasetKind, DatasetSpec, GeneratedDataset};
use sper_model::ProfileId;
use sper_text::{jaccard_similarity_sorted, levenshtein};

fn small_twin() -> GeneratedDataset {
    DatasetSpec::paper(DatasetKind::Census).generate()
}

fn movies_twin() -> GeneratedDataset {
    DatasetSpec::paper(DatasetKind::Movies)
        .with_scale(0.05)
        .generate()
}

/// Initialization-phase cost of every schema-agnostic method (Fig. 13e's
/// micro counterpart).
fn bench_init_phase(c: &mut Criterion) {
    let data = small_twin();
    let config = paper_config(DatasetKind::Census);
    let mut group = c.benchmark_group("init_phase");
    for method in ProgressiveMethod::SCHEMA_AGNOSTIC {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let mut m =
                        build_method(method, &data.profiles, &config, data.schema_keys.as_deref());
                    black_box(m.next())
                });
            },
        );
    }
    group.finish();
}

/// Emission throughput: 1 000 emissions after initialization.
fn bench_emission(c: &mut Criterion) {
    let data = movies_twin();
    let config = paper_config(DatasetKind::Movies);
    let mut group = c.benchmark_group("emission_1k");
    for method in [
        ProgressiveMethod::SaPsn,
        ProgressiveMethod::LsPsn,
        ProgressiveMethod::GsPsn,
        ProgressiveMethod::Pbs,
        ProgressiveMethod::Pps,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter_batched(
                    || build_method(method, &data.profiles, &config, data.schema_keys.as_deref()),
                    |mut m| {
                        for _ in 0..1_000 {
                            if m.next().is_none() {
                                break;
                            }
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// Edge-weighting cost per scheme over the Profile Index (the dense-array
/// design the paper prescribes).
fn bench_weighting(c: &mut Criterion) {
    let data = small_twin();
    let mut blocks = TokenBlocking::default().build(&data.profiles);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    let n = data.profiles.len() as u32;
    let pairs: Vec<(ProfileId, ProfileId)> = (0..1_000)
        .map(|i| (ProfileId(i % n), ProfileId((i * 7 + 1) % n)))
        .filter(|(a, b)| a != b)
        .collect();
    let mut group = c.benchmark_group("weighting_1k_pairs");
    for scheme in WeightingScheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &(i, j) in &pairs {
                        acc += index.weight(i, j, scheme);
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

/// The three stages of the Token Blocking Workflow plus Neighbor List
/// construction.
fn bench_blocking(c: &mut Criterion) {
    let data = small_twin();
    let mut group = c.benchmark_group("blocking_workflow");
    group.bench_function("token_blocking", |b| {
        b.iter(|| black_box(TokenBlocking::default().build(&data.profiles)))
    });
    let blocks = TokenBlocking::default().build(&data.profiles);
    group.bench_function("purging", |b| {
        b.iter_batched(
            || blocks.clone(),
            |blocks| black_box(BlockPurger::paper_default().purge(blocks)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("filtering", |b| {
        b.iter_batched(
            || blocks.clone(),
            |blocks| black_box(BlockFilter::paper_default().filter(blocks)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("neighbor_list", |b| {
        b.iter(|| black_box(NeighborList::build(&data.profiles, 42)))
    });
    group.finish();
}

/// The interned columnar core against the string-keyed seed paths kept in
/// [`sper_blocking::legacy`] — the PR-2 speedup this repo tracks in
/// `BENCH_interning.json`.
fn bench_interning(c: &mut Criterion) {
    let data = small_twin();
    let mut group = c.benchmark_group("interning");

    // Token Blocking build: interned ids + flat buckets vs
    // HashMap<String, Vec<_>> with per-token owned strings.
    group.bench_function("token_blocking/interned", |b| {
        b.iter(|| black_box(TokenBlocking::default().build(&data.profiles)))
    });
    group.bench_function("token_blocking/string_keyed", |b| {
        b.iter(|| black_box(legacy::string_token_blocking(&data.profiles)))
    });

    // Edge weighting: CSR block lists vs the seed's Vec-of-Vec layout
    // (identical merge semantics, different memory).
    let mut blocks = TokenBlocking::default().build(&data.profiles);
    blocks.sort_by_cardinality();
    let csr = ProfileIndex::build(&blocks);
    let mut vec_of_vec = IncrementalProfileIndex::new_empty(blocks.n_profiles());
    for blk in blocks.iter() {
        vec_of_vec.push_block(blk.profiles(), blk.cardinality(blocks.kind()));
    }
    let n = data.profiles.len() as u32;
    let pairs: Vec<(ProfileId, ProfileId)> = (0..4_000)
        .map(|i| (ProfileId(i % n), ProfileId((i * 7 + 1) % n)))
        .filter(|(a, b)| a != b)
        .collect();
    group.bench_function("weighting/csr", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &pairs {
                acc += csr.weight(i, j, WeightingScheme::Arcs);
            }
            black_box(acc)
        });
    });
    group.bench_function("weighting/vec_of_vec", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &pairs {
                acc += vec_of_vec.weight(i, j, WeightingScheme::Arcs);
            }
            black_box(acc)
        });
    });

    // Neighbor List: rank-sorted interned placements vs string-sorted
    // owned placements.
    group.bench_function("neighbor_list/interned", |b| {
        b.iter(|| black_box(NeighborList::build(&data.profiles, 42)))
    });
    group.bench_function("neighbor_list/string_keyed", |b| {
        b.iter(|| black_box(legacy::string_neighbor_list(&data.profiles, 42)))
    });
    group.finish();
}

/// Match-function costs: the expensive vs cheap functions of §7.3.
fn bench_match_functions(c: &mut Criterion) {
    let a = "the quick brown fox jumps over the lazy dog";
    let b_ = "the quack brown fox jumped over a lazy hog";
    let ta: Vec<&str> = {
        let mut v: Vec<&str> = a.split(' ').collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let tb: Vec<&str> = {
        let mut v: Vec<&str> = b_.split(' ').collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut group = c.benchmark_group("match_functions");
    group.bench_function("edit_distance", |bch| {
        bch.iter(|| black_box(levenshtein(black_box(a), black_box(b_))))
    });
    group.bench_function("jaccard", |bch| {
        bch.iter(|| black_box(jaccard_similarity_sorted(black_box(&ta), black_box(&tb))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite to a few minutes: these are comparative
    // micro-benchmarks, not absolute measurements.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_init_phase,
        bench_emission,
        bench_weighting,
        bench_blocking,
        bench_interning,
        bench_match_functions
}
criterion_main!(benches);
