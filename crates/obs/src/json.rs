//! A minimal JSON reader for the crate's own outputs.
//!
//! `sper-obs` is dependency-free by charter (it sits under every other
//! crate), so the profiler and the run report — which re-read the JSON
//! this crate itself writes (trace lines, metrics dumps) — carry their
//! own small recursive-descent parser instead of pulling in the
//! workspace's vendored serde. It accepts standard JSON; numbers are read
//! as `f64` (every number this crate emits fits), and malformed input
//! yields `None`, never a panic.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one JSON document; `None` on any syntax error or trailing junk.
pub(crate) fn parse(text: &str) -> Option<JsonValue> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos).map(JsonValue::Str),
        b't' => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        b'n' => parse_literal(bytes, pos, b"null", JsonValue::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &[u8],
    value: JsonValue,
) -> Option<JsonValue> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogates (emitted only for astral-plane text,
                        // which this crate never writes unescaped) are
                        // replaced rather than rejected.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar from the remaining text.
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    eat(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(members));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_trace_line() {
        let line = "{\"t\":42,\"kind\":\"span\",\"level\":\"info\",\"name\":\"a.b\",\
                    \"thread\":1,\"depth\":2,\"dur_ns\":7,\
                    \"fields\":{\"n\":3,\"label\":\"x\\\"y\",\"ok\":true}}";
        let v = parse(line).expect("valid");
        assert_eq!(v.get("t").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("span"));
        let fields = v.get("fields").expect("fields");
        assert_eq!(
            fields.get("label").and_then(JsonValue::as_str),
            Some("x\"y")
        );
        assert_eq!(fields.get("ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let v = parse("[1, -2.5, [\"x\", null], {\"a\": 1e3}]").expect("valid");
        let JsonValue::Arr(items) = &v else {
            panic!("array")
        };
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[3].get("a").and_then(JsonValue::as_f64), Some(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            assert_eq!(parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"a\\u0041\\n\"").expect("valid");
        assert_eq!(v.as_str(), Some("aA\n"));
    }

    #[test]
    fn object_keys_preserve_order() {
        let v = parse("{\"z\":1,\"a\":2}").expect("valid");
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }
}
