//! Span/event tracing with pluggable sinks.
//!
//! The hot-path contract: when no sink is installed (the default), every
//! [`span!`](crate::span) and [`event!`](crate::event) call site compiles
//! down to **one relaxed atomic load and a predictable branch** — field
//! expressions are never evaluated, nothing allocates, no lock is touched.
//! That is the "no-op sink" of the overhead budget: instrumentation is
//! free to sit on paths the emission-equivalence suites pin bit-identical.
//!
//! When a sink *is* installed, spans maintain a **thread-local span
//! stack**: each worker thread records its own depth independently, so
//! tracing observes the parallel engine without synchronizing it —
//! recording never orders threads against each other, which is why
//! enabling tracing cannot perturb the deterministic tournament merges
//! (see DESIGN.md "Observability").
//!
//! Three production sinks are provided:
//!
//! * [`JsonLinesSink`] — one JSON object per record, machine-readable
//!   (schema below);
//! * [`StderrSink`] — human-readable, level-filtered lines for `-v`;
//! * [`MultiSink`] — fan-out to several sinks.
//!
//! [`CaptureSink`] records into memory for tests.
//!
//! ## JSON-lines schema
//!
//! Every line is an object with required keys `t` (u64 nanoseconds since
//! the process epoch), `kind` (`"span"` or `"event"`), `level` (`"error"`
//! … `"trace"`), `name` (dotted static identifier), `thread` (u64 process
//! thread ordinal) and `depth` (u64 span-stack depth at emission). Span
//! records add `dur_ns` (u64). Records with fields add a flat `fields`
//! object whose values are numbers, strings or booleans.

use crate::clock::now_nanos;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Severity/verbosity of a record; also the global filter threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A failure the run cannot ignore.
    Error = 1,
    /// Something suspicious that does not stop the run.
    Warn = 2,
    /// Coarse progress: builds, epochs, store IO. The `-v` level.
    Info = 3,
    /// Per-phase internals: sweep statistics, CRC timings. `-vv`.
    Debug = 4,
    /// Reserved for the finest-grained future use.
    Trace = 5,
}

impl Level {
    /// Lowercase name, as emitted in JSON lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text (owned: recorded values outlive the call site).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// What a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A closed span: `t` is the start, `dur_ns` the elapsed time.
    Span,
    /// A point-in-time event.
    Event,
}

/// One trace record, handed to every installed [`Sink`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Nanoseconds since the process epoch (span start / event time).
    pub t_ns: u64,
    /// Span or event.
    pub kind: RecordKind,
    /// Severity.
    pub level: Level,
    /// Dotted static name, e.g. `"blocking.token_build"`.
    pub name: &'static str,
    /// Process-local thread ordinal (0 = first observed thread).
    pub thread: u64,
    /// Span-stack depth of the emitting thread at emission time.
    pub depth: u64,
    /// Elapsed nanoseconds (spans only).
    pub dur_ns: Option<u64>,
    /// Attached key/value fields, in call-site order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A trace consumer. Implementations must be cheap and must never panic:
/// recording happens inside engine hot paths.
pub trait Sink: Send + Sync {
    /// Consumes one record.
    fn record(&self, record: &Record);
    /// Flushes any buffered output (end of run; optional).
    fn flush(&self) {}
}

/// Global trace threshold: 0 = off (the default), otherwise a
/// [`Level`] as `u8`.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// The installed sink. Read under an `RwLock` only on the enabled path —
/// the disabled path never touches it.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// True when records at `level` are currently consumed — **the** hot-path
/// gate: one relaxed atomic load.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Installs `sink` and raises the threshold to `level`, replacing any
/// previous sink. The process trace epoch is pinned no later than here.
pub fn install_sink(sink: Arc<dyn Sink>, level: Level) {
    crate::clock::touch_epoch();
    *SINK.write().expect("trace sink lock poisoned") = Some(sink);
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Removes the sink (flushing it) and disables tracing.
pub fn clear_sink() {
    LEVEL.store(0, Ordering::Relaxed);
    let sink = SINK.write().expect("trace sink lock poisoned").take();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Flushes the installed sink, if any.
pub fn flush() {
    if let Some(sink) = SINK.read().expect("trace sink lock poisoned").as_ref() {
        sink.flush();
    }
}

/// Process-local thread ordinal: stable, small, allocation-free — unlike
/// `ThreadId`, it is meaningful in a JSON trace.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|&o| o)
}

thread_local! {
    /// The thread's open-span count — `Cell`, not a name stack: records
    /// need the depth, and names live in the guards themselves.
    static SPAN_DEPTH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Hands `record` to the sink (enabled path only).
fn emit(record: Record) {
    if let Some(sink) = SINK.read().expect("trace sink lock poisoned").as_ref() {
        sink.record(&record);
    }
}

/// Emits a point-in-time event. Prefer the [`event!`](crate::event)
/// macro, which skips field evaluation when `level` is disabled.
pub fn emit_event(level: Level, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled(level) {
        return;
    }
    emit(Record {
        t_ns: now_nanos(),
        kind: RecordKind::Event,
        level,
        name,
        thread: thread_ordinal(),
        depth: SPAN_DEPTH.with(|d| d.get()),
        dur_ns: None,
        fields,
    });
}

/// An open span: created by [`span!`](crate::span), closed (and recorded)
/// on drop. Inert — a zero-field struct holding `None` — when tracing was
/// disabled at entry.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    level: Level,
    t_ns: u64,
    start: std::time::Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Opens a span at `level` if tracing is enabled; `fields` is only
    /// called (and the thread's span depth only grows) when it is.
    pub fn enter(
        level: Level,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) -> Self {
        if !enabled(level) {
            return Self { active: None };
        }
        SPAN_DEPTH.with(|d| d.set(d.get() + 1));
        Self {
            active: Some(ActiveSpan {
                name,
                level,
                t_ns: now_nanos(),
                start: std::time::Instant::now(),
                fields: fields(),
            }),
        }
    }

    /// An inert guard (used by the macro's disabled arm in const
    /// contexts; equivalent to an `enter` under a disabled level).
    pub fn disabled() -> Self {
        Self { active: None }
    }

    /// True when the span is recording (tracing was enabled at entry).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a field discovered mid-span (e.g. an output count known
    /// only at the end of the measured scope). No-op on inert guards, so
    /// callers need not re-check [`enabled`].
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(active) = self.active.as_mut() {
            active.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let depth = SPAN_DEPTH.with(|d| {
            let depth = d.get() - 1;
            d.set(depth);
            depth
        });
        let dur = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        emit(Record {
            t_ns: active.t_ns,
            kind: RecordKind::Span,
            level: active.level,
            name: active.name,
            thread: thread_ordinal(),
            depth,
            dur_ns: Some(dur),
            fields: active.fields,
        });
    }
}

/// Appends `value` to `out` as a JSON scalar.
fn json_value(out: &mut String, value: &FieldValue) {
    use std::fmt::Write as _;
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        // JSON has no Infinity/NaN literals; stringify the exceptional
        // values rather than emit an invalid document.
        FieldValue::F64(v) => json_string(out, &v.to_string()),
        FieldValue::Str(v) => json_string(out, v),
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
    }
}

/// Appends `s` to `out` as a JSON string literal with escapes.
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one record as a JSON-lines line (no trailing newline).
pub fn record_to_json(record: &Record) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(128);
    let _ = write!(
        &mut line,
        "{{\"t\":{},\"kind\":\"{}\",\"level\":\"{}\",\"name\":",
        record.t_ns,
        match record.kind {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        },
        record.level.name(),
    );
    json_string(&mut line, record.name);
    let _ = write!(
        &mut line,
        ",\"thread\":{},\"depth\":{}",
        record.thread, record.depth
    );
    if let Some(dur) = record.dur_ns {
        let _ = write!(&mut line, ",\"dur_ns\":{dur}");
    }
    if !record.fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in record.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json_string(&mut line, key);
            line.push(':');
            json_value(&mut line, value);
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// Machine-readable sink: one JSON object per record (see the module docs
/// for the schema), buffered, flushed on [`Sink::flush`] and drop.
pub struct JsonLinesSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonLinesSink {
    /// Creates (truncating) the trace file.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        })
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, record: &Record) {
        let line = record_to_json(record);
        if let Ok(mut out) = self.out.lock() {
            // A full disk mid-trace must not take the engine down.
            let _ = writeln!(out, "{line}");
        }
    }

    fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonLinesSink")
    }
}

/// Human-readable sink for `-v`/`-vv`: `[elapsed] LEVEL name (dur) k=v …`
/// on stderr, filtered to its own maximum level (so a Debug-level trace
/// file and an Info-level console can coexist under [`MultiSink`]).
#[derive(Debug)]
pub struct StderrSink {
    max_level: Level,
}

impl StderrSink {
    /// A sink showing records up to `max_level`.
    pub fn new(max_level: Level) -> Self {
        Self { max_level }
    }
}

impl Sink for StderrSink {
    fn record(&self, record: &Record) {
        if record.level > self.max_level {
            return;
        }
        use std::fmt::Write as _;
        let mut line = String::with_capacity(96);
        let _ = write!(
            &mut line,
            "[{:>10.3}ms] {:<5} {}{}",
            record.t_ns as f64 / 1e6,
            record.level.name(),
            "  ".repeat(record.depth as usize),
            record.name,
        );
        if let Some(dur) = record.dur_ns {
            let _ = write!(&mut line, " ({:.3}ms)", dur as f64 / 1e6);
        }
        for (key, value) in &record.fields {
            let _ = write!(&mut line, " {key}={value}");
        }
        eprintln!("{line}");
    }
}

/// Fan-out to several sinks, in order.
pub struct MultiSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl MultiSink {
    /// A sink broadcasting to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&self, record: &Record) {
        for sink in &self.sinks {
            sink.record(record);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiSink({} sinks)", self.sinks.len())
    }
}

/// In-memory sink for tests: records everything it sees.
#[derive(Debug, Default)]
pub struct CaptureSink {
    records: Mutex<Vec<Record>>,
}

impl CaptureSink {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("capture poisoned").clone()
    }

    /// Names of everything recorded so far, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.records
            .lock()
            .expect("capture poisoned")
            .iter()
            .map(|r| r.name)
            .collect()
    }
}

impl Sink for CaptureSink {
    fn record(&self, record: &Record) {
        self.records
            .lock()
            .expect("capture poisoned")
            .push(record.clone());
    }
}

/// Opens an Info-level span over the enclosing scope.
///
/// ```
/// # use sper_obs::span;
/// let mut span = span!("blocking.token_build", profiles = 42usize);
/// // … measured work …
/// span.record("blocks", 7usize); // fields discovered mid-scope
/// ```
///
/// With tracing disabled (the default), the call costs one relaxed atomic
/// load; field expressions are not evaluated.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::trace::SpanGuard::enter(
            $crate::trace::Level::Info,
            $name,
            || vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
        )
    };
}

/// Emits a point-in-time event at an explicit level.
///
/// ```
/// # use sper_obs::event;
/// # use sper_obs::trace::Level;
/// event!(Level::Debug, "spacc.sweep_stats", sweeps = 10u64, touched = 55u64);
/// ```
///
/// With `level` disabled (the default), the call costs one relaxed atomic
/// load; field expressions are not evaluated.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::enabled($level) {
            $crate::trace::emit_event(
                $level,
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_valid_shape() {
        let record = Record {
            t_ns: 42,
            kind: RecordKind::Span,
            level: Level::Info,
            name: "a.b",
            thread: 1,
            depth: 2,
            dur_ns: Some(7),
            fields: vec![
                ("n", FieldValue::U64(3)),
                ("label", FieldValue::Str("x\"y".into())),
                ("ok", FieldValue::Bool(true)),
            ],
        };
        let line = record_to_json(&record);
        assert_eq!(
            line,
            "{\"t\":42,\"kind\":\"span\",\"level\":\"info\",\"name\":\"a.b\",\
             \"thread\":1,\"depth\":2,\"dur_ns\":7,\
             \"fields\":{\"n\":3,\"label\":\"x\\\"y\",\"ok\":true}}"
        );
    }

    #[test]
    fn non_finite_floats_become_strings() {
        let mut out = String::new();
        json_value(&mut out, &FieldValue::F64(f64::INFINITY));
        assert_eq!(out, "\"inf\"");
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        json_string(&mut out, "a\nb\u{1}");
        assert_eq!(out, "\"a\\nb\\u0001\"");
    }

    #[test]
    fn disabled_guard_is_inert() {
        let guard = SpanGuard::disabled();
        assert!(!guard.is_active());
    }

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Warn.name(), "warn");
    }
}
