//! The span profiler: turns a span stream into a call-tree profile.
//!
//! The tracing layer emits spans **at close time** (see [`crate::trace`]):
//! each record carries its start timestamp, duration, thread ordinal and
//! the thread's span-stack depth. That is enough to reconstruct the call
//! tree without any extra bookkeeping on the hot path — within one
//! thread, spans close child-before-parent, so a span claims as children
//! every already-closed span at `depth + 1` that started inside it.
//!
//! The reconstructed tree yields per-stack **self time** (duration minus
//! children) and **total time**, exported in two interchange formats:
//!
//! * [`SpanProfile::to_collapsed`] — collapsed stacks
//!   (`frame;frame;frame <count>`), the input format of `flamegraph.pl`
//!   and inferno, with self-microseconds as the count unit;
//! * [`chrome_trace`] — Chrome trace-event JSON (the Perfetto / DevTools
//!   `traceEvents` schema): spans become complete (`"X"`) events on
//!   per-thread lanes, point events become instants, and
//!   `parallel.worker` spans additionally feed per-worker utilization
//!   counter lanes (the Chrome-trace view of
//!   `sper_blocking`'s `FanoutStats`).
//!
//! Records come either straight from a live capture
//! ([`ProfileRecord::from`] a [`Record`]) or from a trace JSON-lines file
//! via [`parse_trace`] — both feed the same aggregation.

use crate::json::{parse, JsonValue};
use crate::trace::{FieldValue, Record, RecordKind};
use std::collections::BTreeMap;

/// One owned trace record, decoupled from the `&'static str` names of the
/// in-process [`Record`] so traces can be re-read from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecord {
    /// Nanoseconds since the process epoch (span start / event time).
    pub t_ns: u64,
    /// Span or event.
    pub kind: RecordKind,
    /// Dotted name.
    pub name: String,
    /// Process-local thread ordinal.
    pub thread: u64,
    /// Span-stack depth at emission.
    pub depth: u64,
    /// Elapsed nanoseconds (spans only).
    pub dur_ns: Option<u64>,
    /// Attached fields, in call-site order.
    pub fields: Vec<(String, FieldValue)>,
}

impl From<&Record> for ProfileRecord {
    fn from(r: &Record) -> Self {
        Self {
            t_ns: r.t_ns,
            kind: r.kind,
            name: r.name.to_string(),
            thread: r.thread,
            depth: r.depth,
            dur_ns: r.dur_ns,
            fields: r
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

impl ProfileRecord {
    /// The value of field `key`, as `f64`, if present and numeric.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| match v {
                FieldValue::U64(n) => *n as f64,
                FieldValue::I64(n) => *n as f64,
                FieldValue::F64(n) => *n,
                FieldValue::Bool(b) => u8::from(*b) as f64,
                FieldValue::Str(s) => s.parse().unwrap_or(f64::NAN),
            })
    }

    /// The value of field `key`, as text, if present.
    pub fn field_str(&self, key: &str) -> Option<String> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.to_string())
    }
}

/// Parses a JSON-lines trace (the [`crate::trace`] schema) into records.
/// Malformed or foreign lines are skipped, never fatal: a trace truncated
/// by a crash is exactly the input a profiler must accept.
pub fn parse_trace(text: &str) -> Vec<ProfileRecord> {
    text.lines().filter_map(parse_trace_line).collect()
}

fn parse_trace_line(line: &str) -> Option<ProfileRecord> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let v = parse(line)?;
    let kind = match v.get("kind")?.as_str()? {
        "span" => RecordKind::Span,
        "event" => RecordKind::Event,
        _ => return None,
    };
    let fields = match v.get("fields") {
        Some(JsonValue::Obj(members)) => members
            .iter()
            .map(|(k, fv)| {
                let value = match fv {
                    JsonValue::Num(n) => FieldValue::F64(*n),
                    JsonValue::Bool(b) => FieldValue::Bool(*b),
                    JsonValue::Str(s) => FieldValue::Str(s.clone()),
                    _ => FieldValue::Str(String::new()),
                };
                (k.clone(), value)
            })
            .collect(),
        _ => Vec::new(),
    };
    Some(ProfileRecord {
        t_ns: v.get("t")?.as_u64()?,
        kind,
        name: v.get("name")?.as_str()?.to_string(),
        thread: v.get("thread")?.as_u64()?,
        depth: v.get("depth")?.as_u64()?,
        dur_ns: v.get("dur_ns").and_then(JsonValue::as_u64),
        fields,
    })
}

/// Aggregated timing of one call stack (a path of span names).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Times this exact stack was observed.
    pub count: u64,
    /// Summed span duration.
    pub total_ns: u64,
    /// Summed duration minus child-span time — what the stack itself
    /// burned.
    pub self_ns: u64,
}

/// Aggregated timing of one span name across all stacks and threads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NameStats {
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Summed self time.
    pub self_ns: u64,
    /// Threads the name was observed on.
    pub threads: Vec<u64>,
}

/// A reconstructed call-tree profile over a span stream.
#[derive(Debug, Clone, Default)]
pub struct SpanProfile {
    /// Per-stack aggregates, keyed by the `;`-joined frame path
    /// (outermost first).
    stacks: BTreeMap<String, StackStats>,
    /// Flat per-name aggregates.
    names: BTreeMap<String, NameStats>,
    /// Spans consumed.
    n_spans: u64,
}

/// One reconstructed span while its ancestors are still open.
struct PendingSpan {
    name: String,
    depth: u64,
    start: u64,
    dur: u64,
    child_ns: u64,
    /// Flattened descendants as (relative path, stats) — lifted into the
    /// parent's path once it closes.
    subtree: Vec<(String, u64, u64)>,
}

impl SpanProfile {
    /// Builds the profile from records in emission order (the order a
    /// sink observed them, which within a thread is span-close order).
    /// Events are ignored; only spans carry time.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a ProfileRecord>) -> Self {
        let mut per_thread: BTreeMap<u64, Vec<PendingSpan>> = BTreeMap::new();
        let mut profile = SpanProfile::default();
        for r in records {
            if r.kind != RecordKind::Span {
                continue;
            }
            let dur = r.dur_ns.unwrap_or(0);
            profile.n_spans += 1;
            let pending = per_thread.entry(r.thread).or_default();
            // Claim every already-closed span one level deeper that
            // started inside this one: those are exactly the children
            // (earlier same-depth siblings claimed their own before they
            // closed).
            let mut children: Vec<PendingSpan> = Vec::new();
            let mut kept: Vec<PendingSpan> = Vec::new();
            for p in pending.drain(..) {
                if p.depth == r.depth + 1 && p.start >= r.t_ns {
                    children.push(p);
                } else {
                    kept.push(p);
                }
            }
            *pending = kept;
            let mut child_ns = 0u64;
            let mut subtree: Vec<(String, u64, u64)> = Vec::new();
            for child in children {
                child_ns += child.dur;
                let child_self = child.dur.saturating_sub(child.child_ns);
                subtree.push((child.name.clone(), child.dur, child_self));
                for (path, total, self_ns) in child.subtree {
                    subtree.push((format!("{};{path}", child.name), total, self_ns));
                }
            }
            pending.push(PendingSpan {
                name: r.name.clone(),
                depth: r.depth,
                start: r.t_ns,
                dur,
                child_ns,
                subtree,
            });
        }
        // Whatever was never claimed is a root (ordinarily depth-0 spans;
        // also orphans from a trace truncated mid-run).
        for pending in per_thread.into_values() {
            let thread_roots = pending;
            for root in thread_roots {
                let root_self = root.dur.saturating_sub(root.child_ns);
                profile.add_stack(root.name.clone(), root.name.clone(), root.dur, root_self);
                for (path, total, self_ns) in root.subtree {
                    let leaf = path.rsplit(';').next().unwrap_or(&path).to_string();
                    profile.add_stack(format!("{};{path}", root.name), leaf, total, self_ns);
                }
            }
        }
        profile
    }

    fn add_stack(&mut self, path: String, leaf: String, total_ns: u64, self_ns: u64) {
        let s = self.stacks.entry(path).or_default();
        s.count += 1;
        s.total_ns += total_ns;
        s.self_ns += self_ns;
        let n = self.names.entry(leaf).or_default();
        n.count += 1;
        n.total_ns += total_ns;
        n.self_ns += self_ns;
    }

    /// Records per-name thread coverage (separate pass: stacks merge
    /// across threads, names keep the set).
    pub fn with_threads<'a>(
        mut self,
        records: impl IntoIterator<Item = &'a ProfileRecord>,
    ) -> Self {
        for r in records {
            if r.kind != RecordKind::Span {
                continue;
            }
            if let Some(n) = self.names.get_mut(&r.name) {
                if !n.threads.contains(&r.thread) {
                    n.threads.push(r.thread);
                }
            }
        }
        self
    }

    /// Spans consumed.
    pub fn n_spans(&self) -> u64 {
        self.n_spans
    }

    /// Per-stack aggregates, keyed by `;`-joined path.
    pub fn stacks(&self) -> &BTreeMap<String, StackStats> {
        &self.stacks
    }

    /// Flat per-name aggregates.
    pub fn names(&self) -> &BTreeMap<String, NameStats> {
        &self.names
    }

    /// Names sorted by self time, heaviest first — the attribution table.
    pub fn hotspots(&self) -> Vec<(&str, &NameStats)> {
        let mut rows: Vec<(&str, &NameStats)> =
            self.names.iter().map(|(k, v)| (k.as_str(), v)).collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        rows
    }

    /// Renders collapsed stacks — one `frame;frame;frame <count>` line per
    /// stack, count in **self microseconds** — the input format of
    /// `flamegraph.pl` / inferno. Lines are sorted (deterministic output);
    /// stacks whose self time rounds to zero microseconds are elided
    /// (their frames still appear as prefixes of their children).
    pub fn to_collapsed(&self) -> String {
        let mut out = String::with_capacity(self.stacks.len() * 48);
        for (path, stats) in &self.stacks {
            let self_us = stats.self_ns / 1_000;
            if self_us == 0 {
                continue;
            }
            out.push_str(path);
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
        out
    }
}

/// Renders a record stream as Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto `traceEvents` schema, loadable in
/// `ui.perfetto.dev`). Spans become complete (`ph:"X"`) events on their
/// thread's lane, point events become thread-scoped instants (`ph:"i"`),
/// and every `parallel.worker` span also emits a `ph:"C"` counter sample
/// (`worker_utilization`, percent busy) — the per-worker utilization
/// lanes of the work-stealing fan-outs.
pub fn chrome_trace(records: &[ProfileRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + records.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    // Process + thread metadata give the lanes stable names.
    sep(&mut out);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"sper\"}}",
    );
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in &threads {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{t},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"thread-{t}\"}}}}"
        );
    }
    for r in records {
        sep(&mut out);
        let ts = r.t_ns as f64 / 1_000.0;
        match r.kind {
            RecordKind::Span => {
                let dur = r.dur_ns.unwrap_or(0) as f64 / 1_000.0;
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                     \"cat\":\"span\",\"name\":",
                    r.thread
                );
                crate::trace::json_string(&mut out, &r.name);
                write_args(&mut out, &r.fields);
                out.push('}');
            }
            RecordKind::Event => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\
                     \"cat\":\"event\",\"name\":",
                    r.thread
                );
                crate::trace::json_string(&mut out, &r.name);
                write_args(&mut out, &r.fields);
                out.push('}');
            }
        }
        // A completed worker span doubles as a utilization sample: busy
        // time over span duration, on a counter lane per worker index.
        if r.kind == RecordKind::Span && r.name == "parallel.worker" {
            if let (Some(busy_us), Some(dur_ns)) = (r.field_f64("busy_us"), r.dur_ns) {
                if dur_ns > 0 {
                    let pct = (busy_us * 1_000.0 / dur_ns as f64 * 100.0).min(100.0);
                    let worker = r.field_f64("worker").unwrap_or(r.thread as f64) as u64;
                    let end_ts = (r.t_ns + dur_ns) as f64 / 1_000.0;
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{end_ts:.3},\
                         \"name\":\"worker_utilization\",\
                         \"args\":{{\"w{worker}\":{pct:.1}}}}}"
                    );
                }
            }
        }
    }
    out.push_str("]}");
    out
}

fn write_args(out: &mut String, fields: &[(String, FieldValue)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::trace::json_string(out, k);
        out.push(':');
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::I64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
            FieldValue::F64(n) => crate::trace::json_string(out, &n.to_string()),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => crate::trace::json_string(out, s),
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, thread: u64, depth: u64, t: u64, dur: u64) -> ProfileRecord {
        ProfileRecord {
            t_ns: t,
            kind: RecordKind::Span,
            name: name.to_string(),
            thread,
            depth,
            dur_ns: Some(dur),
            fields: Vec::new(),
        }
    }

    /// Close order of:  root[0..100_000] { a[10_000..40_000] { b } , c }
    fn nested_stream() -> Vec<ProfileRecord> {
        vec![
            span("b", 0, 2, 15_000, 10_000),
            span("a", 0, 1, 10_000, 30_000),
            span("c", 0, 1, 50_000, 40_000),
            span("root", 0, 0, 0, 100_000),
        ]
    }

    #[test]
    fn reconstructs_nested_stacks() {
        let profile = SpanProfile::from_records(&nested_stream());
        let stacks = profile.stacks();
        assert_eq!(stacks["root"].total_ns, 100_000);
        assert_eq!(stacks["root"].self_ns, 30_000, "100 - (30 + 40)");
        assert_eq!(stacks["root;a"].self_ns, 20_000, "30 - 10");
        assert_eq!(stacks["root;a;b"].self_ns, 10_000);
        assert_eq!(stacks["root;c"].self_ns, 40_000);
        assert_eq!(profile.n_spans(), 4);
    }

    #[test]
    fn collapsed_output_is_flamegraph_grammar() {
        let profile = SpanProfile::from_records(&nested_stream());
        let collapsed = profile.to_collapsed();
        let expected = "root 30\nroot;a 20\nroot;a;b 10\nroot;c 40\n";
        assert_eq!(collapsed, expected);
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
            assert!(!stack.is_empty() && stack.split(';').all(|f| !f.is_empty()));
            let _: u64 = count.parse().expect("integer count");
        }
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        // Two depth-1 spans under one root: the second must not claim the
        // first's child.
        let records = vec![
            span("x", 0, 1, 0, 10_000),
            span("y", 0, 1, 20_000, 10_000),
            span("root", 0, 0, 0, 40_000),
        ];
        let profile = SpanProfile::from_records(&records);
        assert_eq!(profile.stacks()["root;x"].total_ns, 10_000);
        assert_eq!(profile.stacks()["root;y"].total_ns, 10_000);
        assert_eq!(profile.stacks()["root"].self_ns, 20_000);
    }

    #[test]
    fn threads_keep_independent_trees() {
        let records = vec![
            span("work", 0, 1, 0, 5_000),
            span("root", 0, 0, 0, 10_000),
            span("work", 1, 0, 0, 7_000),
        ];
        let profile = SpanProfile::from_records(&records).with_threads(&records);
        assert_eq!(profile.stacks()["root;work"].total_ns, 5_000);
        assert_eq!(profile.stacks()["work"].total_ns, 7_000);
        assert_eq!(profile.names()["work"].count, 2);
        assert_eq!(profile.names()["work"].threads, vec![0, 1]);
    }

    #[test]
    fn repeated_stacks_aggregate() {
        let records = vec![
            span("epoch", 0, 0, 0, 1_000_000),
            span("epoch", 0, 0, 2_000_000, 3_000_000),
        ];
        let profile = SpanProfile::from_records(&records);
        let s = profile.stacks()["epoch"];
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 4_000_000);
        assert_eq!(profile.hotspots()[0].0, "epoch");
    }

    #[test]
    fn parse_trace_round_trips_records() {
        let rec = Record {
            t_ns: 500,
            kind: RecordKind::Span,
            level: crate::trace::Level::Info,
            name: "stream.epoch",
            thread: 2,
            depth: 1,
            dur_ns: Some(9_000),
            fields: vec![("raw", FieldValue::U64(7))],
        };
        let line = crate::trace::record_to_json(&rec);
        let parsed = parse_trace(&format!("{line}\nnot json\n\n"));
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "stream.epoch");
        assert_eq!(parsed[0].dur_ns, Some(9_000));
        assert_eq!(parsed[0].field_f64("raw"), Some(7.0));
    }

    #[test]
    fn chrome_trace_golden() {
        let records = vec![
            span("root", 0, 0, 1_000, 2_000),
            ProfileRecord {
                t_ns: 1_500,
                kind: RecordKind::Event,
                name: "tick".to_string(),
                thread: 0,
                depth: 1,
                dur_ns: None,
                fields: vec![("n".to_string(), FieldValue::U64(3))],
            },
        ];
        let json = chrome_trace(&records);
        let expected = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
            {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"sper\"}},\
            {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"thread-0\"}},\
            {\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.000,\"dur\":2.000,\"cat\":\"span\",\"name\":\"root\"},\
            {\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":1.500,\"cat\":\"event\",\"name\":\"tick\",\"args\":{\"n\":3}}\
            ]}";
        assert_eq!(json, expected);
        assert!(crate::json::parse(&json).is_some(), "well-formed JSON");
    }

    #[test]
    fn worker_spans_emit_utilization_counters() {
        let mut worker = span("parallel.worker", 3, 1, 0, 10_000_000);
        worker.fields = vec![
            ("worker".into(), FieldValue::U64(2)),
            ("busy_us".into(), FieldValue::U64(8_000)),
        ];
        let json = chrome_trace(&[worker]);
        assert!(json.contains("\"name\":\"worker_utilization\""), "{json}");
        assert!(json.contains("\"w2\":80.0"), "{json}");
        assert!(crate::json::parse(&json).is_some());
    }
}
