//! Profiling probes: a counting global allocator and a host fingerprint.
//!
//! [`PeakAllocTracker`] promotes the bench harnesses' hand-rolled
//! counting allocator into one shared, const-constructible wrapper around
//! [`std::alloc::System`] — install it with `#[global_allocator]` and
//! read live/peak bytes at any point. [`HostInfo`] probes the machine the
//! run happened on (physical cores, `available_parallelism`, page size,
//! OS) so committed BENCH baselines are self-describing instead of
//! "an opaque 1-core container".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A `GlobalAlloc` wrapper over the system allocator that tracks live and
/// peak heap bytes.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sper_obs::PeakAllocTracker = sper_obs::PeakAllocTracker::new();
/// // … workload …
/// let peak = ALLOC.peak_bytes();
/// ```
///
/// Counting is two relaxed atomic ops per allocation plus a CAS loop on
/// new peaks; `realloc` is counted as the size delta.
#[derive(Debug)]
pub struct PeakAllocTracker {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAllocTracker {
    /// A zeroed tracker, usable in `static` position.
    pub const fn new() -> Self {
        Self {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes since process start (or the last
    /// [`reset_peak`](Self::reset_peak)).
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Rebases the peak to the current live size, so per-phase peaks can
    /// be measured in one process.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    #[inline]
    fn on_alloc(&self, size: usize) {
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    #[inline]
    fn on_dealloc(&self, size: usize) {
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for PeakAllocTracker {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers every allocation to `System`, only adding relaxed
// counter updates around it.
unsafe impl GlobalAlloc for PeakAllocTracker {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                self.on_alloc(new_size - layout.size());
            } else {
                self.on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

/// A fingerprint of the machine a run executed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Physical/logical CPU count from `/proc/cpuinfo` (0 if unreadable).
    pub cores: usize,
    /// `std::thread::available_parallelism()` — what the scheduler
    /// actually grants, which in a constrained container can be far below
    /// `cores`.
    pub host_parallelism: usize,
    /// Memory page size in bytes from the auxiliary vector (0 off-Linux).
    pub page_size: usize,
    /// Operating system, as compiled for (`std::env::consts::OS`).
    pub os: &'static str,
    /// SIMD instruction-set extensions detected at runtime (empty off
    /// x86_64) — the features the spacc kernel dispatch can choose from,
    /// so a committed baseline names the vector units it actually had.
    pub cpu_features: Vec<&'static str>,
}

impl HostInfo {
    /// Probes the current host. Never fails: unreadable probes report 0.
    pub fn probe() -> Self {
        Self {
            cores: cpuinfo_cores(),
            host_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(0),
            page_size: auxv_page_size(),
            os: std::env::consts::OS,
            cpu_features: cpu_features(),
        }
    }
}

/// The SIMD feature set relevant to the weighting kernels, in ascending
/// capability order; empty off x86_64.
fn cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("sse2") {
            features.push("sse2");
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            features.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        features
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// Provenance of a run: when it happened and what code produced it.
/// Stamped into every committed artifact (bench baselines, run reports)
/// so a number on disk can always be traced back to a commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStamp {
    /// UTC wall-clock time, ISO-8601 (`2026-08-07T12:34:56Z`).
    pub timestamp: String,
    /// Short git revision of the working tree, `"unknown"` outside a
    /// checkout.
    pub git_rev: String,
}

impl RunStamp {
    /// Captures the current time and revision. Never fails: a missing
    /// `git` binary or a non-repo directory yields `git_rev: "unknown"`.
    pub fn capture() -> Self {
        Self {
            timestamp: iso8601_utc_now(),
            git_rev: git_rev(),
        }
    }
}

/// The current UTC time as `YYYY-MM-DDThh:mm:ssZ`, from `SystemTime`
/// alone (no time-zone database needed for UTC).
fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

/// Days-since-epoch to (year, month, day), proleptic Gregorian — the
/// standard era-based civil-calendar conversion.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// The working tree's short revision: `git rev-parse`, falling back to
/// reading `.git/HEAD` directly, else `"unknown"`.
fn git_rev() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
    {
        if out.status.success() {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    git_rev_from_dot_git().unwrap_or_else(|| "unknown".to_string())
}

/// Resolves HEAD by hand for environments without a `git` binary: walks
/// up from the current directory to a `.git/HEAD`, follows one level of
/// `ref:` indirection through loose refs and `packed-refs`.
fn git_rev_from_dot_git() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let hash = if let Some(reference) = head.strip_prefix("ref: ") {
        match std::fs::read_to_string(git.join(reference)) {
            Ok(loose) => loose.trim().to_string(),
            Err(_) => {
                let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                packed
                    .lines()
                    .find(|l| l.ends_with(reference))
                    .and_then(|l| l.split_whitespace().next())?
                    .to_string()
            }
        }
    } else {
        head.to_string()
    };
    (hash.len() >= 12 && hash.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| hash[..12].to_string())
}

/// Counts `processor` entries in `/proc/cpuinfo`; 0 when unavailable.
fn cpuinfo_cores() -> usize {
    let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") else {
        return 0;
    };
    text.lines().filter(|l| l.starts_with("processor")).count()
}

/// Reads `AT_PAGESZ` from `/proc/self/auxv`; 0 when unavailable.
fn auxv_page_size() -> usize {
    const AT_PAGESZ: u64 = 6;
    let Ok(bytes) = std::fs::read("/proc/self/auxv") else {
        return 0;
    };
    for pair in bytes.chunks_exact(16) {
        let key = u64::from_ne_bytes(pair[..8].try_into().unwrap());
        let value = u64::from_ne_bytes(pair[8..].try_into().unwrap());
        if key == AT_PAGESZ {
            return value as usize;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_and_peaks() {
        let t = PeakAllocTracker::new();
        t.on_alloc(100);
        t.on_alloc(50);
        assert_eq!(t.live_bytes(), 150);
        assert_eq!(t.peak_bytes(), 150);
        t.on_dealloc(120);
        assert_eq!(t.live_bytes(), 30);
        assert_eq!(t.peak_bytes(), 150);
        t.reset_peak();
        assert_eq!(t.peak_bytes(), 30);
        t.on_alloc(10);
        assert_eq!(t.peak_bytes(), 40);
    }

    #[test]
    fn host_probe_is_sane_on_linux() {
        let host = HostInfo::probe();
        if host.os == "linux" {
            assert!(host.cores >= 1);
            assert!(host.host_parallelism >= 1);
            assert!(host.page_size >= 4096);
        }
    }

    #[test]
    fn run_stamp_has_iso_timestamp_and_a_rev() {
        let stamp = RunStamp::capture();
        let t = stamp.timestamp.as_bytes();
        assert_eq!(t.len(), 20, "{}", stamp.timestamp);
        assert_eq!(t[4], b'-');
        assert_eq!(t[10], b'T');
        assert_eq!(t[19], b'Z');
        assert!(!stamp.git_rev.is_empty());
    }

    #[test]
    fn civil_conversion_hits_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1), "leap-adjacent");
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
    }

    #[test]
    fn cpu_features_include_the_x86_64_baseline() {
        let host = HostInfo::probe();
        #[cfg(target_arch = "x86_64")]
        assert!(
            host.cpu_features.contains(&"sse2"),
            "{:?}",
            host.cpu_features
        );
        #[cfg(not(target_arch = "x86_64"))]
        assert!(host.cpu_features.is_empty());
    }
}
