//! Monotonic process-relative timestamps.
//!
//! Every trace record carries a nanosecond timestamp taken from one
//! process-wide monotonic epoch (the first observation in the process), so
//! timestamps are comparable across threads, never go backwards, and stay
//! small enough to read. Wall-clock time is deliberately absent: traces
//! are for ordering and duration, not calendars, and a monotonic source
//! cannot perturb determinism the way a settable clock could.

use std::sync::OnceLock;
use std::time::Instant;

/// The process epoch: the `Instant` of the first timestamp request.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process epoch — monotonic, thread-safe,
/// saturating at `u64::MAX` (585 years of process uptime).
pub fn now_nanos() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Forces the epoch to be the current instant if no timestamp has been
/// taken yet — called by sink installation so the trace's zero point is
/// "observability enabled", not "first event".
pub fn touch_epoch() {
    let _ = epoch();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
