//! Deterministic fault injection: a registry of named failpoints.
//!
//! Every syscall-adjacent site in the engine (section writes, the
//! temp+rename commit, fsync, the scrape listener's accept/read/write,
//! checkpointing) evaluates a named failpoint. Unarmed — the production
//! state — a failpoint is **one relaxed atomic load**, the same gate
//! discipline as [`event!`](crate::event!) and [`count!`](crate::count!),
//! so the sites can live on hot paths permanently. Armed via the
//! `SPER_FAILPOINTS` environment variable or `--failpoints SPEC` on the
//! CLI, each site runs a deterministic schedule, which is what makes
//! fault testing reproducible and proptest-drivable: the same spec
//! against the same workload injects the same faults at the same
//! instructions, every run.
//!
//! # Grammar
//!
//! ```text
//! spec    = site '=' [trigger '*'] action (';' site '=' … )*
//! trigger = COUNT            fire on the first COUNT evaluations
//!         | 'N' 'in' 'M'     fire on the last N evaluations of every
//!                            window of M (1in5 → hits 5, 10, 15, …)
//!         | (absent)         fire on every evaluation
//! action  = 'err' ['(' kind ')']     injected io::Error (default kind io)
//!         | 'partial' '(' n ')'      short write: n bytes then an error
//!         | 'delay' '(' ms ')'       sleep, then proceed normally
//!         | 'panic'                  panic at the site
//! ```
//!
//! `SPER_FAILPOINTS='store.rename=1*err(io);store.fsync=1in5*delay(50)'`
//! fails the first rename and stalls every fifth fsync. The `NinM` form
//! counts from the *end* of each window so a schedule can skip early
//! hits and target a later checkpoint — `1in3` first fires on the third
//! evaluation, not the first.
//!
//! # Site registry
//!
//! Sites are open-ended strings; arming an unknown site is legal (it
//! never fires). The sites threaded through the engine:
//!
//! | site                  | where                                        |
//! |-----------------------|----------------------------------------------|
//! | `store.write.section` | each section body written to a temp file     |
//! | `store.fsync`         | the fsync before the commit rename           |
//! | `store.rename`        | the temp→final and last-good rotation renames|
//! | `store.read`          | reading a store file back                    |
//! | `serve.accept`        | the scrape listener's accept loop            |
//! | `serve.read`          | reading a scrape request                     |
//! | `serve.write`         | writing a scrape response                    |
//! | `stream.checkpoint`   | each checkpoint attempt (before the write)   |
//! | `session.epoch`       | entry of [`emit_epoch`] (delay/panic only)   |
//!
//! [`emit_epoch`]: ../../sper_stream/struct.ProgressiveSession.html#method.emit_epoch

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The error kinds nameable in `err(kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// Generic I/O failure (`ErrorKind::Other`) — the default.
    Io,
    /// `ErrorKind::NotFound`.
    NotFound,
    /// `ErrorKind::PermissionDenied`.
    Denied,
    /// `ErrorKind::Interrupted` — the kind retry loops classically eat.
    Interrupted,
    /// `ErrorKind::TimedOut`.
    Timeout,
    /// `ErrorKind::BrokenPipe`.
    Pipe,
    /// `ErrorKind::UnexpectedEof`.
    Eof,
    /// `ErrorKind::StorageFull` — the full-disk case.
    Full,
}

impl ErrKind {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "io" => ErrKind::Io,
            "notfound" => ErrKind::NotFound,
            "denied" => ErrKind::Denied,
            "interrupted" => ErrKind::Interrupted,
            "timeout" => ErrKind::Timeout,
            "pipe" => ErrKind::Pipe,
            "eof" => ErrKind::Eof,
            "full" => ErrKind::Full,
            _ => return None,
        })
    }

    /// The `std::io::ErrorKind` this injects.
    pub fn io_kind(self) -> std::io::ErrorKind {
        use std::io::ErrorKind as K;
        match self {
            ErrKind::Io => K::Other,
            ErrKind::NotFound => K::NotFound,
            ErrKind::Denied => K::PermissionDenied,
            ErrKind::Interrupted => K::Interrupted,
            ErrKind::Timeout => K::TimedOut,
            ErrKind::Pipe => K::BrokenPipe,
            ErrKind::Eof => K::UnexpectedEof,
            ErrKind::Full => K::StorageFull,
        }
    }
}

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected [`std::io::Error`] of the given kind.
    Err(ErrKind),
    /// Allow only the first `n` bytes of the operation, then fail — the
    /// torn-write case. Sites without a byte stream treat it as `Err`.
    Partial(usize),
    /// Sleep for the given milliseconds, then proceed normally.
    Delay(u64),
    /// Panic at the site — the kill-at-this-instruction case.
    Panic,
}

/// When an armed site's action fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on the first `n` evaluations, then go dormant (`3*`).
    Times(u64),
    /// Fire on the last `n` evaluations of every window of `m` (`1in5`
    /// → hits 5, 10, 15, …). Counting from the window's end lets a
    /// schedule skip early hits and target a later one.
    Ratio {
        /// Evaluations that fire per window.
        n: u64,
        /// The window length.
        m: u64,
    },
    /// Fire on every evaluation (no trigger prefix).
    Always,
}

impl Trigger {
    /// Whether the `hit`-th evaluation (1-based) fires.
    fn fires(self, hit: u64) -> bool {
        match self {
            Trigger::Times(n) => hit <= n,
            Trigger::Ratio { n, m } => (hit - 1) % m >= m - n,
            Trigger::Always => true,
        }
    }
}

/// A fault returned to the caller for it to materialize. `delay` and
/// `panic` never reach here — [`evaluate`] applies them internally.
#[derive(Debug)]
pub enum InjectedFault {
    /// Fail the operation with this error.
    Err(std::io::Error),
    /// Perform only the first `n` bytes, then fail.
    Partial(usize),
}

/// A malformed `SPER_FAILPOINTS` / `--failpoints` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// What was wrong, quoting the offending fragment.
    pub detail: String,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad failpoint spec: {}", self.detail)
    }
}

impl std::error::Error for FaultSpecError {}

#[derive(Debug)]
struct Site {
    trigger: Trigger,
    action: FaultAction,
    /// Evaluations so far (1-based at fire decision).
    hits: u64,
    /// Evaluations whose trigger fired.
    fired: u64,
}

/// The one-load gate: true iff any site is armed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Site>> {
    // A panic action fires while the lock is *released*, but a panicking
    // caller elsewhere must not wedge every later evaluation.
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether any failpoint is armed. One relaxed load — this is the whole
/// cost of an unarmed site.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Parses `spec` and arms it, replacing any previous schedule. An empty
/// spec disarms. Returns the number of armed sites.
pub fn arm(spec: &str) -> Result<usize, FaultSpecError> {
    let parsed = parse_spec(spec)?;
    let count = parsed.len();
    let mut reg = lock_registry();
    reg.clear();
    for (site, trigger, action) in parsed {
        reg.insert(
            site,
            Site {
                trigger,
                action,
                hits: 0,
                fired: 0,
            },
        );
    }
    drop(reg);
    ARMED.store(count > 0, Ordering::SeqCst);
    if count > 0 {
        crate::event!(crate::Level::Info, "fault.armed", sites = count);
    }
    Ok(count)
}

/// Arms from the `SPER_FAILPOINTS` environment variable, if set.
/// Returns the number of armed sites (0 when unset).
pub fn arm_from_env() -> Result<usize, FaultSpecError> {
    match std::env::var("SPER_FAILPOINTS") {
        Ok(spec) => arm(&spec),
        Err(_) => Ok(0),
    }
}

/// Disarms every failpoint and clears the schedule.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    lock_registry().clear();
}

/// Evaluations of `site` whose trigger fired so far.
pub fn fired(site: &str) -> u64 {
    lock_registry().get(site).map(|s| s.fired).unwrap_or(0)
}

/// Evaluates `site` against the armed schedule. `delay` sleeps and
/// `panic` panics right here; `err` and `partial` are returned for the
/// caller to materialize. Unarmed, this is one relaxed load.
#[inline]
pub fn evaluate(site: &str) -> Option<InjectedFault> {
    if !armed() {
        return None;
    }
    evaluate_slow(site)
}

#[cold]
fn evaluate_slow(site: &str) -> Option<InjectedFault> {
    let mut reg = lock_registry();
    let entry = reg.get_mut(site)?;
    entry.hits += 1;
    if !entry.trigger.fires(entry.hits) {
        return None;
    }
    entry.fired += 1;
    let action = entry.action;
    drop(reg);
    crate::count!("fault.injected");
    match action {
        FaultAction::Err(kind) => {
            crate::event!(
                crate::Level::Warn,
                "fault.injected",
                site = site,
                action = "err"
            );
            Some(InjectedFault::Err(injected_error(site, kind)))
        }
        FaultAction::Partial(n) => {
            crate::event!(
                crate::Level::Warn,
                "fault.injected",
                site = site,
                action = "partial",
                bytes = n
            );
            Some(InjectedFault::Partial(n))
        }
        FaultAction::Delay(ms) => {
            crate::event!(
                crate::Level::Warn,
                "fault.injected",
                site = site,
                action = "delay",
                ms = ms
            );
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        FaultAction::Panic => {
            crate::event!(
                crate::Level::Warn,
                "fault.injected",
                site = site,
                action = "panic"
            );
            panic!("injected panic at failpoint {site}");
        }
    }
}

/// The common shape for sites without a byte stream: fires `err` (and
/// `partial`, which degrades to `err` here) as an [`std::io::Error`];
/// `delay` and `panic` are applied by [`evaluate`]. Unarmed: one load.
#[inline]
pub fn failpoint(site: &str) -> std::io::Result<()> {
    match evaluate(site) {
        None => Ok(()),
        Some(InjectedFault::Err(e)) => Err(e),
        Some(InjectedFault::Partial(_)) => Err(injected_error(site, ErrKind::Io)),
    }
}

/// For sites that cannot propagate an error (epoch entry): applies
/// `delay`/`panic`; an `err`/`partial` action merely counts and warns.
#[inline]
pub fn apply(site: &str) {
    if let Some(_ignored) = evaluate(site) {
        crate::event!(crate::Level::Warn, "fault.unapplicable", site = site);
    }
}

fn injected_error(site: &str, kind: ErrKind) -> std::io::Error {
    std::io::Error::new(kind.io_kind(), format!("injected fault at {site}"))
}

fn parse_spec(spec: &str) -> Result<Vec<(String, Trigger, FaultAction)>, FaultSpecError> {
    let bad = |detail: String| FaultSpecError { detail };
    let mut out = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| bad(format!("`{entry}` has no `=`")))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(bad(format!("`{entry}` has an empty site name")));
        }
        let rest = rest.trim();
        let (trigger, action_str) = match rest.split_once('*') {
            Some((t, a)) => (
                parse_trigger(t.trim())
                    .ok_or_else(|| bad(format!("`{t}` is not a trigger (want COUNT or NinM)")))?,
                a.trim(),
            ),
            None => (Trigger::Always, rest),
        };
        let action = parse_action(action_str)
            .ok_or_else(|| bad(format!("`{action_str}` is not an action")))?;
        out.push((site.to_string(), trigger, action));
    }
    Ok(out)
}

fn parse_trigger(t: &str) -> Option<Trigger> {
    if let Some((n, m)) = t.split_once("in") {
        let n: u64 = n.trim().parse().ok()?;
        let m: u64 = m.trim().parse().ok()?;
        if n == 0 || m == 0 || n > m {
            return None;
        }
        Some(Trigger::Ratio { n, m })
    } else {
        let n: u64 = t.parse().ok()?;
        (n > 0).then_some(Trigger::Times(n))
    }
}

fn parse_action(a: &str) -> Option<FaultAction> {
    let (name, arg) = match a.split_once('(') {
        Some((name, rest)) => {
            let arg = rest.strip_suffix(')')?;
            (name.trim(), Some(arg.trim()))
        }
        None => (a, None),
    };
    Some(match (name, arg) {
        ("err", None) => FaultAction::Err(ErrKind::Io),
        ("err", Some(kind)) => FaultAction::Err(ErrKind::parse(kind)?),
        ("partial", Some(n)) => FaultAction::Partial(n.parse().ok()?),
        ("delay", Some(ms)) => FaultAction::Delay(ms.parse().ok()?),
        ("panic", None) => FaultAction::Panic,
        _ => return None,
    })
}

/// A scoped schedule for tests: arms on construction, disarms on drop,
/// and holds a process-wide lock so concurrent tests never observe each
/// other's faults. Production code arms once at startup via [`arm`] /
/// [`arm_from_env`] instead.
#[derive(Debug)]
pub struct Armed {
    _serial: MutexGuard<'static, ()>,
}

/// Arms `spec` for the lifetime of the returned guard (see [`Armed`]).
pub fn arm_scoped(spec: &str) -> Result<Armed, FaultSpecError> {
    static SERIAL: Mutex<()> = Mutex::new(());
    let serial = SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    arm(spec)?;
    Ok(Armed { _serial: serial })
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_do_nothing() {
        // No guard needed: asserting the unarmed path. (If another test
        // armed concurrently it would hold the serial lock, but these
        // assertions only run the cheap gate when the registry is clear.)
        let _g = arm_scoped("").unwrap();
        assert!(!armed());
        assert!(evaluate("store.rename").is_none());
        assert!(failpoint("store.rename").is_ok());
    }

    #[test]
    fn times_trigger_fires_first_n_then_goes_dormant() {
        let _g = arm_scoped("t.site=2*err(notfound)").unwrap();
        for i in 0..5 {
            let hit = evaluate("t.site");
            if i < 2 {
                match hit {
                    Some(InjectedFault::Err(e)) => {
                        assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
                    }
                    other => panic!("hit {i}: expected err, got {other:?}"),
                }
            } else {
                assert!(hit.is_none(), "hit {i} should be dormant");
            }
        }
        assert_eq!(fired("t.site"), 2);
    }

    #[test]
    fn ratio_trigger_fires_window_tail() {
        // 1in3 fires on hits 3, 6, 9 — skipping early hits is the point.
        let _g = arm_scoped("r.site=1in3*err").unwrap();
        let fired_hits: Vec<usize> = (1..=9)
            .filter(|_| evaluate("r.site").is_some())
            .collect::<Vec<_>>();
        assert_eq!(fired_hits.len(), 3);
        assert_eq!(fired("r.site"), 3);
        // Re-arm to inspect which hit indices fire.
        let _ = arm("r.site=2in4*err").unwrap();
        let pattern: Vec<bool> = (1..=8).map(|_| evaluate("r.site").is_some()).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, true, false, false, true, true]
        );
    }

    #[test]
    fn partial_and_default_err_kind() {
        let _g = arm_scoped("p.site=1*partial(16); d.site = err ").unwrap();
        match evaluate("p.site") {
            Some(InjectedFault::Partial(16)) => {}
            other => panic!("expected partial(16), got {other:?}"),
        }
        match evaluate("d.site") {
            Some(InjectedFault::Err(e)) => assert_eq!(e.kind(), std::io::ErrorKind::Other),
            other => panic!("expected err, got {other:?}"),
        }
        // `failpoint` degrades partial to an error.
        let _ = arm("p.site=1*partial(16)").unwrap();
        assert!(failpoint("p.site").is_err());
    }

    #[test]
    fn delay_sleeps_then_proceeds() {
        let _g = arm_scoped("slow.site=1*delay(30)").unwrap();
        let t0 = std::time::Instant::now();
        assert!(evaluate("slow.site").is_none());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        // Trigger exhausted: second evaluation is instant.
        let t0 = std::time::Instant::now();
        assert!(evaluate("slow.site").is_none());
        assert!(t0.elapsed() < std::time::Duration::from_millis(25));
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = arm_scoped("boom.site=1*panic").unwrap();
        let err = std::panic::catch_unwind(|| evaluate("boom.site")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom.site"), "{msg}");
        disarm();
    }

    #[test]
    fn unknown_sites_and_unarmed_names_never_fire() {
        let _g = arm_scoped("known=1*err").unwrap();
        assert!(evaluate("unknown").is_none());
        assert_eq!(fired("unknown"), 0);
    }

    #[test]
    fn spec_errors_are_typed() {
        for bad in [
            "noequals",
            "=err",
            "s=3*",
            "s=0*err",
            "s=2in1*err",
            "s=err(nope)",
            "s=partial",
            "s=delay(x)",
            "s=frobnicate",
        ] {
            assert!(parse_spec(bad).is_err(), "`{bad}` should not parse");
        }
        let ok = parse_spec("a=1*err(io); b=1in5*delay(10);; c=panic").unwrap();
        assert_eq!(ok.len(), 3);
        assert_eq!(ok[2].1, Trigger::Always);
        assert_eq!(ok[2].2, FaultAction::Panic);
    }

    #[test]
    fn arm_replaces_and_disarm_clears() {
        let _g = arm_scoped("a.site=5*err").unwrap();
        assert!(evaluate("a.site").is_some());
        let n = arm("b.site=1*err").unwrap();
        assert_eq!(n, 1);
        assert!(evaluate("a.site").is_none(), "replaced schedule");
        disarm();
        assert!(!armed());
    }
}
