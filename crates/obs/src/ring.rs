//! The flight recorder: a bounded in-memory ring buffer of recent trace
//! records.
//!
//! [`RingSink`] keeps the last `capacity` records and drops the oldest on
//! overflow — a fixed memory budget however long the session runs, which
//! is what makes it safe to leave attached to a week-long stream. It
//! backs the `/tracez` endpoint of [`serve`](crate::serve()): a scrape
//! returns a JSON snapshot of the recent past without the run having to
//! write (or rotate) a trace file.
//!
//! Recording takes one short mutex-guarded push; snapshotting clones the
//! buffer under the same lock. Concurrent writers interleave at record
//! granularity, never corrupt, and the drop-oldest policy is exact: with
//! `n` records recorded into capacity `c`, the snapshot holds the last
//! `min(n, c)` in record order and reports `n - min(n, c)` dropped.

use crate::trace::{record_to_json, Record, Sink};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default flight-recorder capacity: enough for minutes of span-level
/// history at streaming cadence, bounded at roughly single-digit MiB.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded, drop-oldest in-memory trace sink (the flight recorder).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Record>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records dropped (overwritten by newer ones) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<Record> {
        self.buf
            .lock()
            .expect("ring sink poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the ring as one JSON object:
    /// `{"capacity":…,"dropped":…,"records":[…]}` with each record in the
    /// JSON-lines schema of [`crate::trace`]. This is the `/tracez`
    /// payload.
    pub fn to_json(&self) -> String {
        // Snapshot first so the (brief) lock is not held while formatting.
        let records = self.snapshot();
        let mut out = String::with_capacity(64 + records.len() * 96);
        out.push_str("{\"capacity\":");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.dropped().to_string());
        out.push_str(",\"records\":[");
        for (i, record) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record_to_json(record));
        }
        out.push_str("]}");
        out
    }
}

impl Sink for RingSink {
    fn record(&self, record: &Record) {
        let mut buf = self.buf.lock().expect("ring sink poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FieldValue, Level, RecordKind};
    use std::sync::Arc;

    fn rec(n: u64) -> Record {
        Record {
            t_ns: n,
            kind: RecordKind::Event,
            level: Level::Info,
            name: "test.ring",
            thread: 0,
            depth: 0,
            dur_ns: None,
            fields: vec![("seq", FieldValue::U64(n))],
        }
    }

    #[test]
    fn retains_everything_under_capacity() {
        let ring = RingSink::new(8);
        for n in 0..5 {
            ring.record(&rec(n));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(snap.first().unwrap().t_ns, 0);
        assert_eq!(snap.last().unwrap().t_ns, 4);
    }

    #[test]
    fn drops_oldest_on_overflow() {
        let ring = RingSink::new(4);
        for n in 0..10 {
            ring.record(&rec(n));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let kept: Vec<u64> = snap.iter().map(|r| r.t_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "last `capacity` records, in order");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let ring = RingSink::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&rec(1));
        ring.record(&rec(2));
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_counts() {
        let ring = Arc::new(RingSink::new(64));
        let threads = 8;
        let per_thread = 100u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for n in 0..per_thread {
                        ring.record(&rec(n));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = threads as u64 * per_thread;
        assert_eq!(ring.snapshot().len(), 64);
        assert_eq!(ring.dropped(), total - 64, "retained + dropped == recorded");
    }

    #[test]
    fn json_shape_is_valid() {
        let ring = RingSink::new(2);
        ring.record(&rec(1));
        ring.record(&rec(2));
        ring.record(&rec(3));
        let json = ring.to_json();
        assert!(json.starts_with("{\"capacity\":2,\"dropped\":1,\"records\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"name\":\"test.ring\"").count(), 2);
    }

    #[test]
    fn empty_ring_renders_empty_array() {
        let ring = RingSink::new(4);
        assert_eq!(
            ring.to_json(),
            "{\"capacity\":4,\"dropped\":0,\"records\":[]}"
        );
    }
}
