//! Zero-overhead observability for the sper engine.
//!
//! Three layers, all **off by default** and all gated by a single relaxed
//! atomic load per call site so instrumentation can live on the engine's
//! hottest paths without perturbing them:
//!
//! * [`trace`] — [`span!`]/[`event!`] structured tracing with
//!   thread-local span stacks, monotonic timestamps and pluggable sinks
//!   (JSON-lines, human stderr, in-memory capture, fan-out);
//! * [`metrics`] — a global registry of counters, gauges and fixed-bucket
//!   histograms ([`count!`]/[`observe!`]), exportable as Prometheus text
//!   or JSON with deterministic ordering;
//! * [`profiling`] — [`PeakAllocTracker`], a counting global allocator
//!   for peak-heap measurement, [`HostInfo`], a host fingerprint
//!   stamped into bench baselines, and [`RunStamp`], artifact provenance.
//!
//! On top of the substrate, four introspection surfaces:
//!
//! * [`ring`] — [`RingSink`], the bounded drop-oldest flight recorder;
//! * [`serve()`] — a dependency-free HTTP scrape endpoint
//!   (`/metrics`, `/healthz`, `/buildz`, `/tracez`) for live runs;
//! * [`profile`] — the span profiler: call-tree reconstruction with
//!   collapsed-stack (flamegraph) and Chrome trace-event exports;
//! * [`report`] — a self-contained HTML run report fusing trace,
//!   metrics, and recall data with inline SVG charts;
//! * [`fault`] — the deterministic failpoint registry (`SPER_FAILPOINTS`)
//!   behind the engine's fault-injection harness, gated exactly like the
//!   macros: one relaxed load when unarmed.
//!
//! The crate has **zero dependencies** (not even the workspace's vendored
//! ones): it must be embeddable under every other crate in the graph
//! without cycles, and its absence of codegen keeps the disabled path
//! auditable.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use sper_obs::trace::{CaptureSink, Level};
//!
//! let sink = Arc::new(CaptureSink::new());
//! sper_obs::trace::install_sink(sink.clone(), Level::Debug);
//! sper_obs::metrics::set_enabled(true);
//!
//! {
//!     let mut span = sper_obs::span!("demo.build", inputs = 3usize);
//!     sper_obs::count!("demo.widgets", 3u64);
//!     span.record("outputs", 3usize);
//! }
//!
//! assert_eq!(sink.names(), vec!["demo.build"]);
//! sper_obs::trace::clear_sink();
//! sper_obs::metrics::set_enabled(false);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod fault;
mod json;
pub mod metrics;
pub mod profile;
pub mod profiling;
pub mod report;
pub mod ring;
pub mod serve;
pub mod trace;

pub use fault::{FaultAction, FaultSpecError, InjectedFault};
pub use metrics::MetricsRegistry;
pub use profile::{chrome_trace, parse_trace, ProfileRecord, SpanProfile};
pub use profiling::{HostInfo, PeakAllocTracker, RunStamp};
pub use report::{render_html, ReportInputs};
pub use ring::{RingSink, DEFAULT_RING_CAPACITY};
pub use serve::{serve, BuildInfo, ObsServer};
pub use trace::{
    CaptureSink, FieldValue, JsonLinesSink, Level, MultiSink, Record, RecordKind, Sink, SpanGuard,
    StderrSink,
};
