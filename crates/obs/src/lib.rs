//! Zero-overhead observability for the sper engine.
//!
//! Three layers, all **off by default** and all gated by a single relaxed
//! atomic load per call site so instrumentation can live on the engine's
//! hottest paths without perturbing them:
//!
//! * [`trace`] — [`span!`]/[`event!`] structured tracing with
//!   thread-local span stacks, monotonic timestamps and pluggable sinks
//!   (JSON-lines, human stderr, in-memory capture, fan-out);
//! * [`metrics`] — a global registry of counters, gauges and fixed-bucket
//!   histograms ([`count!`]/[`observe!`]), exportable as Prometheus text
//!   or JSON with deterministic ordering;
//! * [`profiling`] — [`PeakAllocTracker`], a counting global allocator
//!   for peak-heap measurement, and [`HostInfo`], a host fingerprint
//!   stamped into bench baselines.
//!
//! The crate has **zero dependencies** (not even the workspace's vendored
//! ones): it must be embeddable under every other crate in the graph
//! without cycles, and its absence of codegen keeps the disabled path
//! auditable.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use sper_obs::trace::{CaptureSink, Level};
//!
//! let sink = Arc::new(CaptureSink::new());
//! sper_obs::trace::install_sink(sink.clone(), Level::Debug);
//! sper_obs::metrics::set_enabled(true);
//!
//! {
//!     let mut span = sper_obs::span!("demo.build", inputs = 3usize);
//!     sper_obs::count!("demo.widgets", 3u64);
//!     span.record("outputs", 3usize);
//! }
//!
//! assert_eq!(sink.names(), vec!["demo.build"]);
//! sper_obs::trace::clear_sink();
//! sper_obs::metrics::set_enabled(false);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod metrics;
pub mod profiling;
pub mod trace;

pub use metrics::MetricsRegistry;
pub use profiling::{HostInfo, PeakAllocTracker};
pub use trace::{
    CaptureSink, FieldValue, JsonLinesSink, Level, MultiSink, Record, RecordKind, Sink, SpanGuard,
    StderrSink,
};
