//! The live scrape endpoint: a dependency-free HTTP/1.1 listener.
//!
//! [`serve()`](serve()) spawns one listener thread over [`std::net::TcpListener`] —
//! no async runtime, no HTTP crate — answering the four read-only
//! introspection routes of a running session:
//!
//! | route      | payload                                                |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | Prometheus exposition text (the global registry)       |
//! | `/healthz` | `ok\n` — liveness                                      |
//! | `/buildz`  | build + host JSON ([`BuildInfo`] and [`HostInfo`])     |
//! | `/tracez`  | flight-recorder snapshot ([`RingSink::to_json`])       |
//!
//! Each accepted connection is handed to its own short-lived handler
//! thread, so a misbehaving client can never wedge the accept loop:
//! `/healthz` keeps answering while a slow-loris trickles header bytes
//! elsewhere. Handlers are bounded in *time*, not trust — the whole
//! request head must arrive within [`HEADER_DEADLINE`] (a cumulative
//! budget, not a per-read timeout that trickled bytes could reset
//! forever) and within [`MAX_HEADER_BYTES`], after which the connection
//! is dropped and `serve.client_errors` incremented. Responses close the
//! connection (`Connection: close`). The server only ever *reads* shared
//! state (the metrics registry, the ring buffer), so attaching it cannot
//! perturb emission.
//!
//! The listener's syscall boundaries carry failpoints (`serve.accept`,
//! `serve.read`, `serve.write`) for the fault harness in
//! [`crate::fault`].
//!
//! [`HostInfo`]: crate::profiling::HostInfo

use crate::profiling::HostInfo;
use crate::ring::RingSink;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cumulative budget for receiving a complete request head. A client
/// that trickles bytes slower than this is disconnected — per-read
/// timeouts alone would reset with every byte and never expire.
pub const HEADER_DEADLINE: Duration = Duration::from_secs(2);

/// Upper bound on request-head bytes; every real scrape request is a few
/// hundred bytes, so anything larger is dropped as a client error.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Static build identity reported by `/buildz`.
#[derive(Debug, Clone)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION` of the binary).
    pub version: String,
    /// Active similarity kernel path (e.g. `"simd"` or `"scalar"`).
    pub kernel: String,
}

/// Handle to a running scrape server. Dropping it shuts the listener
/// down and joins the thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    client_errors: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .field("requests", &self.requests())
            .field("client_errors", &self.client_errors())
            .finish()
    }
}

impl ObsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (counted at accept, so a client that
    /// has seen its response close is guaranteed to be included).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections dropped for client misbehavior: malformed request
    /// lines, oversized or too-slow request heads (slow-loris), aborted
    /// sends. Also exported as the `serve.client_errors` counter when
    /// metrics are enabled.
    pub fn client_errors(&self) -> u64 {
        self.client_errors.load(Ordering::Relaxed)
    }

    /// Stops the listener and joins its thread. Idempotent. In-flight
    /// handler threads finish on their own (each is bounded by
    /// [`HEADER_DEADLINE`] + the write timeout); only the listening
    /// socket is released here.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept()`; a throwaway local
        // connection unblocks it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the scrape server on `addr` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port). The optional `ring` backs `/tracez`; without one the
/// route answers an empty snapshot.
pub fn serve(
    addr: impl ToSocketAddrs,
    build: BuildInfo,
    ring: Option<Arc<RingSink>>,
) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let client_errors = Arc::new(AtomicU64::new(0));
    let thread_stop = Arc::clone(&stop);
    let thread_requests = Arc::clone(&requests);
    let thread_client_errors = Arc::clone(&client_errors);
    let handle = std::thread::Builder::new()
        .name("sper-obs-serve".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Injected accept failures drop the connection on the
                // floor — exactly what a refused accept looks like.
                if crate::fault::evaluate("serve.accept").is_some() {
                    continue;
                }
                // Count at accept time: by the time a client sees the
                // connection close (its read-to-EOF framing), the tally
                // already includes it.
                thread_requests.fetch_add(1, Ordering::Relaxed);
                let build = build.clone();
                let ring = ring.clone();
                let errors = Arc::clone(&thread_client_errors);
                // One short-lived thread per connection: the accept loop
                // must stay free so `/healthz` answers while a slow or
                // hostile client occupies its own handler. If the spawn
                // itself fails (thread exhaustion), the connection is
                // dropped — degraded, never wedged.
                let spawned = std::thread::Builder::new()
                    .name("sper-obs-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &build, ring.as_deref(), &errors);
                    });
                if spawned.is_err() {
                    crate::event!(crate::Level::Warn, "serve.spawn_failed");
                }
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        requests,
        client_errors,
        handle: Some(handle),
    })
}

/// Why a request head never materialized.
enum HeadError {
    /// The cumulative header deadline expired (slow-loris).
    TooSlow,
    /// The head exceeded [`MAX_HEADER_BYTES`].
    TooLarge,
    /// The client closed before completing the head.
    Closed,
    /// A real transport error.
    Io(std::io::Error),
}

/// Reads until the blank line ending the request head, under a
/// cumulative deadline and a size cap.
fn read_head(stream: &mut TcpStream, deadline: Instant) -> Result<Vec<u8>, HeadError> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or(HeadError::TooSlow)?;
        stream
            .set_read_timeout(Some(remaining))
            .map_err(HeadError::Io)?;
        if let Err(e) = crate::fault::failpoint("serve.read") {
            return Err(HeadError::Io(e));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HeadError::Closed),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_HEADER_BYTES {
                    return Err(HeadError::TooLarge);
                }
                if head_complete(&buf) {
                    return Ok(buf);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HeadError::TooSlow)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HeadError::Io(e)),
        }
    }
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn handle_connection(
    mut stream: TcpStream,
    build: &BuildInfo,
    ring: Option<&RingSink>,
    client_errors: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let client_error = |status: u16, reason: &'static str| {
        client_errors.fetch_add(1, Ordering::Relaxed);
        crate::count!("serve.client_errors");
        crate::event!(
            crate::Level::Warn,
            "serve.client_error",
            status = status as u32,
            reason = reason
        );
    };
    let head = match read_head(&mut stream, Instant::now() + HEADER_DEADLINE) {
        Ok(head) => head,
        Err(HeadError::TooSlow) => {
            client_error(408, "header deadline exceeded");
            return respond(&mut stream, 408, "text/plain", "request timeout\n");
        }
        Err(HeadError::TooLarge) => {
            client_error(431, "request head too large");
            return respond(&mut stream, 431, "text/plain", "request head too large\n");
        }
        Err(HeadError::Closed) => {
            client_error(400, "closed before complete head");
            return Ok(());
        }
        Err(HeadError::Io(e)) => return Err(e),
    };
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        // A proper request line is exactly `METHOD PATH VERSION`.
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/") => (m, p),
        _ => {
            client_error(400, "malformed request line");
            return respond(&mut stream, 400, "text/plain", "bad request\n");
        }
    };
    if method != "GET" {
        client_error(405, "method not allowed");
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = crate::metrics::global().to_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/buildz" => respond(&mut stream, 200, "application/json", &buildz_json(build)),
        "/tracez" => {
            let body = match ring {
                Some(ring) => ring.to_json(),
                None => "{\"capacity\":0,\"dropped\":0,\"records\":[]}".to_string(),
            };
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    crate::fault::failpoint("serve.write")?;
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn buildz_json(build: &BuildInfo) -> String {
    let host = HostInfo::probe();
    let mut out = String::with_capacity(256);
    out.push_str("{\"version\":");
    crate::trace::json_string(&mut out, &build.version);
    out.push_str(",\"kernel\":");
    crate::trace::json_string(&mut out, &build.kernel);
    out.push_str(",\"host\":{\"os\":");
    crate::trace::json_string(&mut out, host.os);
    out.push_str(",\"cores\":");
    out.push_str(&host.cores.to_string());
    out.push_str(",\"parallelism\":");
    out.push_str(&host.host_parallelism.to_string());
    out.push_str(",\"cpu_features\":[");
    for (i, feature) in host.cpu_features.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::trace::json_string(&mut out, feature);
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FieldValue, Level, Record, RecordKind, Sink};

    fn get(addr: SocketAddr, request: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    fn get_path(addr: SocketAddr, path: &str) -> (u16, String, String) {
        get(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
        )
    }

    fn test_build() -> BuildInfo {
        BuildInfo {
            version: "9.9.9-test".to_string(),
            kernel: "scalar".to_string(),
        }
    }

    /// Polls until `server` has tallied at least `n` client errors —
    /// handler threads race the assertions otherwise.
    fn wait_client_errors(server: &ObsServer, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.client_errors() < n {
            assert!(Instant::now() < deadline, "client_errors stuck below {n}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn serves_health_build_and_404() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();

        let (status, head, body) = get_path(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        assert!(head.contains("Connection: close"));

        let (status, _, body) = get_path(addr, "/buildz");
        assert_eq!(status, 200);
        assert!(body.contains("\"version\":\"9.9.9-test\""), "{body}");
        assert!(body.contains("\"kernel\":\"scalar\""), "{body}");
        assert!(body.contains("\"cores\":"), "{body}");

        let (status, _, _) = get_path(addr, "/nope");
        assert_eq!(status, 404);

        let requests_before = server.requests();
        assert!(requests_before >= 3);
        server.shutdown();
    }

    #[test]
    fn serves_metrics_and_rejects_post() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();

        let (status, head, _) = get_path(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain"), "{head}");

        let (status, _, _) = get(addr, "POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
        assert_eq!(status, 405);
        wait_client_errors(&server, 1);
        server.shutdown();
    }

    #[test]
    fn tracez_reflects_the_ring() {
        let ring = Arc::new(RingSink::new(8));
        ring.record(&Record {
            t_ns: 1,
            kind: RecordKind::Event,
            level: Level::Info,
            name: "serve.test",
            thread: 0,
            depth: 0,
            dur_ns: None,
            fields: vec![("n", FieldValue::U64(7))],
        });
        let mut server = serve("127.0.0.1:0", test_build(), Some(Arc::clone(&ring))).expect("bind");
        let (status, _, body) = get_path(server.addr(), "/tracez");
        assert_eq!(status, 200);
        assert!(body.contains("\"name\":\"serve.test\""), "{body}");
        assert!(body.starts_with("{\"capacity\":8,"), "{body}");

        // Without a ring the route still answers.
        server.shutdown();
        let mut bare = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let (status, _, body) = get_path(bare.addr(), "/tracez");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"capacity\":0,\"dropped\":0,\"records\":[]}");
        bare.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        // Port is released: a fresh bind on the same address succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn slow_loris_cannot_stall_healthz() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();

        // A client that sends a partial request head and then stalls. The
        // old single-threaded handler would sit in read() on this socket
        // and every later scrape queued behind it.
        let mut loris = TcpStream::connect(addr).expect("connect");
        loris.write_all(b"GET /hea").expect("trickle");

        // /healthz must answer promptly while the loris still holds its
        // connection open — well inside the 2s header deadline.
        let t0 = Instant::now();
        let (status, _, body) = get_path(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "healthz stalled {:?} behind a slow-loris client",
            t0.elapsed()
        );

        // The loris is eventually cut off (408 or plain close) and
        // tallied as a client error — its handler thread does not leak
        // past the deadline.
        let mut leftovers = String::new();
        let _ = loris.read_to_string(&mut leftovers);
        wait_client_errors(&server, 1);
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_is_400_and_counted() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();

        let (status, _, _) = get(addr, "THIS IS NOT HTTP AT ALL\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _, _) = get(addr, "GET\r\n\r\n");
        assert_eq!(status, 400);
        wait_client_errors(&server, 2);

        // The listener is unharmed.
        let (status, _, _) = get_path(addr, "/healthz");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn oversized_head_is_cut_off() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let filler = format!(
            "GET /healthz HTTP/1.1\r\nX-Filler: {}\r\n",
            "x".repeat(2 * MAX_HEADER_BYTES)
        );
        // The server may cut us off mid-send (RST after it stops
        // reading); that is the success condition, not a test failure.
        let _ = stream.write_all(filler.as_bytes());
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.is_empty() || response.starts_with("HTTP/1.1 431"),
            "{response}"
        );
        wait_client_errors(&server, 1);
        server.shutdown();
    }

    #[test]
    fn injected_accept_fault_drops_the_connection() {
        let _armed = crate::fault::arm_scoped("serve.accept=1*err").expect("arm");
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();
        // First connection is dropped by the injected accept failure;
        // read-to-EOF sees an immediate close with no bytes.
        let mut first = TcpStream::connect(addr).expect("connect");
        let _ = first.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut response = String::new();
        let _ = first.read_to_string(&mut response);
        assert_eq!(response, "", "injected accept fault should drop the conn");
        // The schedule is exhausted: the next scrape succeeds.
        let (status, _, _) = get_path(addr, "/healthz");
        assert_eq!(status, 200);
        server.shutdown();
    }
}
