//! The live scrape endpoint: a dependency-free HTTP/1.1 listener.
//!
//! [`serve()`](serve()) spawns one listener thread over [`std::net::TcpListener`] —
//! no async runtime, no HTTP crate — answering the four read-only
//! introspection routes of a running session:
//!
//! | route      | payload                                                |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | Prometheus exposition text (the global registry)       |
//! | `/healthz` | `ok\n` — liveness                                      |
//! | `/buildz`  | build + host JSON ([`BuildInfo`] and [`HostInfo`])     |
//! | `/tracez`  | flight-recorder snapshot ([`RingSink::to_json`])       |
//!
//! Requests are served one at a time with `Connection: close` and short
//! socket timeouts — a scraper stuck mid-request can delay the next
//! scrape but can never wedge the session, which runs on its own
//! threads. The server only ever *reads* shared state (the metrics
//! registry, the ring buffer), so attaching it cannot perturb emission.
//!
//! [`HostInfo`]: crate::profiling::HostInfo

use crate::profiling::HostInfo;
use crate::ring::RingSink;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Static build identity reported by `/buildz`.
#[derive(Debug, Clone)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION` of the binary).
    pub version: String,
    /// Active similarity kernel path (e.g. `"simd"` or `"scalar"`).
    pub kernel: String,
}

/// Handle to a running scrape server. Dropping it shuts the listener
/// down and joins the thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .field("requests", &self.requests())
            .finish()
    }
}

impl ObsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (counted at accept, so a client that
    /// has seen its response close is guaranteed to be included).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the listener and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept()`; a throwaway local
        // connection unblocks it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the scrape server on `addr` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port). The optional `ring` backs `/tracez`; without one the
/// route answers an empty snapshot.
pub fn serve(
    addr: impl ToSocketAddrs,
    build: BuildInfo,
    ring: Option<Arc<RingSink>>,
) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let thread_stop = Arc::clone(&stop);
    let thread_requests = Arc::clone(&requests);
    let handle = std::thread::Builder::new()
        .name("sper-obs-serve".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Count at accept time: by the time a client sees the
                // connection close (its read-to-EOF framing), the tally
                // already includes it.
                thread_requests.fetch_add(1, Ordering::Relaxed);
                let _ = handle_connection(stream, &build, ring.as_deref());
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        requests,
        handle: Some(handle),
    })
}

fn handle_connection(
    stream: TcpStream,
    build: &BuildInfo,
    ring: Option<&RingSink>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (ignored — every route is GET with no body).
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = crate::metrics::global().to_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/buildz" => respond(&mut stream, 200, "application/json", &buildz_json(build)),
        "/tracez" => {
            let body = match ring {
                Some(ring) => ring.to_json(),
                None => "{\"capacity\":0,\"dropped\":0,\"records\":[]}".to_string(),
            };
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn buildz_json(build: &BuildInfo) -> String {
    let host = HostInfo::probe();
    let mut out = String::with_capacity(256);
    out.push_str("{\"version\":");
    crate::trace::json_string(&mut out, &build.version);
    out.push_str(",\"kernel\":");
    crate::trace::json_string(&mut out, &build.kernel);
    out.push_str(",\"host\":{\"os\":");
    crate::trace::json_string(&mut out, host.os);
    out.push_str(",\"cores\":");
    out.push_str(&host.cores.to_string());
    out.push_str(",\"parallelism\":");
    out.push_str(&host.host_parallelism.to_string());
    out.push_str(",\"cpu_features\":[");
    for (i, feature) in host.cpu_features.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::trace::json_string(&mut out, feature);
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FieldValue, Level, Record, RecordKind, Sink};
    use std::io::Read;

    fn get(addr: SocketAddr, request: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    fn get_path(addr: SocketAddr, path: &str) -> (u16, String, String) {
        get(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
        )
    }

    fn test_build() -> BuildInfo {
        BuildInfo {
            version: "9.9.9-test".to_string(),
            kernel: "scalar".to_string(),
        }
    }

    #[test]
    fn serves_health_build_and_404() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();

        let (status, head, body) = get_path(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        assert!(head.contains("Connection: close"));

        let (status, _, body) = get_path(addr, "/buildz");
        assert_eq!(status, 200);
        assert!(body.contains("\"version\":\"9.9.9-test\""), "{body}");
        assert!(body.contains("\"kernel\":\"scalar\""), "{body}");
        assert!(body.contains("\"cores\":"), "{body}");

        let (status, _, _) = get_path(addr, "/nope");
        assert_eq!(status, 404);

        let requests_before = server.requests();
        assert!(requests_before >= 3);
        server.shutdown();
    }

    #[test]
    fn serves_metrics_and_rejects_post() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();

        let (status, head, _) = get_path(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain"), "{head}");

        let (status, _, _) = get(addr, "POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn tracez_reflects_the_ring() {
        let ring = Arc::new(RingSink::new(8));
        ring.record(&Record {
            t_ns: 1,
            kind: RecordKind::Event,
            level: Level::Info,
            name: "serve.test",
            thread: 0,
            depth: 0,
            dur_ns: None,
            fields: vec![("n", FieldValue::U64(7))],
        });
        let mut server = serve("127.0.0.1:0", test_build(), Some(Arc::clone(&ring))).expect("bind");
        let (status, _, body) = get_path(server.addr(), "/tracez");
        assert_eq!(status, 200);
        assert!(body.contains("\"name\":\"serve.test\""), "{body}");
        assert!(body.starts_with("{\"capacity\":8,"), "{body}");

        // Without a ring the route still answers.
        server.shutdown();
        let mut bare = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let (status, _, body) = get_path(bare.addr(), "/tracez");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"capacity\":0,\"dropped\":0,\"records\":[]}");
        bare.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0", test_build(), None).expect("bind");
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        // Port is released: a fresh bind on the same address succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }
}
