//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! The registry is process-global and **disabled by default**: every
//! mutation macro ([`count!`](crate::count), [`observe!`](crate::observe))
//! checks one relaxed atomic bool before touching anything, so
//! uninstrumented runs pay a single predictable branch per call site.
//! Handles are cached per call site in a `OnceLock`, so the registry's
//! `Mutex` is taken once per site per process, never per increment.
//!
//! Metric values are plain atomics — incrementing a counter from eight
//! shards never serializes them. Export order is deterministic (the
//! registry is a `BTreeMap`), so two runs of the same workload produce
//! byte-comparable Prometheus dumps modulo the values themselves.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time signed value (queue depth, live bytes, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram with quantile readout.
///
/// Bucket boundaries are **upper bounds** fixed at construction; samples
/// land in the first bucket whose bound is `>=` the sample, or in the
/// implicit overflow bucket. Quantiles are read as the upper bound of the
/// bucket containing the requested rank — a conservative (never
/// under-reporting) estimate, [`f64::INFINITY`] when the rank falls in
/// the overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    sum_micros: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// A histogram over ascending upper `bounds` (must be non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Default bounds for duration samples in **microseconds**: 1µs–10s
    /// in 1-2-5 steps.
    pub fn duration_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(22);
        let mut base = 1.0;
        while base <= 1_000_000.0 {
            for mul in [1.0, 2.0, 5.0] {
                bounds.push(base * mul);
            }
            base *= 10.0;
        }
        bounds.push(10_000_000.0);
        bounds
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, sample: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < sample)
            .min(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // Micro-resolution fixed-point keeps the running sum atomic
        // without a lock; negative samples clamp to zero.
        let micros = if sample.is_finite() && sample > 0.0 {
            (sample * 1.0) as u64
        } else {
            0
        };
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (truncated to whole units; negatives and
    /// non-finite samples contribute zero).
    pub fn sum(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding that rank. `None` when empty; `INFINITY` when the
    /// rank falls past the last bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // Rank of the requested sample, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(self.bounds.get(idx).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Convenience: p50.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Convenience: p90.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// Convenience: p99.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Cumulative `(upper_bound, count)` pairs, Prometheus-style, ending
    /// with the `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cum = 0u64;
        for (idx, count) in self.counts.iter().enumerate() {
            cum += count.load(Ordering::Relaxed);
            out.push((self.bounds.get(idx).copied().unwrap_or(f64::INFINITY), cum));
        }
        out
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum_micros.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics with deterministic export order.
///
/// Most code uses the process-global registry via [`global`] and the
/// [`count!`](crate::count)/[`observe!`](crate::observe) macros; tests
/// can build private registries.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Panics if `name`
    /// is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use. Panics if `name` is
    /// already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use with `bounds`.
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Zeroes every registered metric **without** removing it — cached
    /// call-site handles stay live across a reset.
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (metric names have `.` mapped to `_`; histograms expand to
    /// `_bucket`/`_sum`/`_count` series).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(1024);
        for (name, metric) in metrics.iter() {
            let flat = name.replace('.', "_");
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {flat} counter");
                    let _ = writeln!(out, "{flat} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {flat} gauge");
                    let _ = writeln!(out, "{flat} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {flat} histogram");
                    for (bound, cum) in h.cumulative_buckets() {
                        if bound.is_finite() {
                            let _ = writeln!(out, "{flat}_bucket{{le=\"{bound}\"}} {cum}");
                        } else {
                            let _ = writeln!(out, "{flat}_bucket{{le=\"+Inf\"}} {cum}");
                        }
                    }
                    let _ = writeln!(out, "{flat}_sum {}", h.sum());
                    let _ = writeln!(out, "{flat}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object. Counters and gauges map
    /// to numbers; histograms to
    /// `{"count":…,"sum":…,"p50":…,"p90":…,"p99":…}` (percentiles `null`
    /// when empty, strings when infinite).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(1024);
        out.push('{');
        for (i, (name, metric)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::trace::json_string(&mut out, name);
            out.push(':');
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = write!(out, "{{\"count\":{},\"sum\":{}", h.count(), h.sum());
                    for (label, q) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                        match q {
                            None => {
                                let _ = write!(out, ",\"{label}\":null");
                            }
                            Some(v) if v.is_finite() => {
                                let _ = write!(out, ",\"{label}\":{v}");
                            }
                            Some(_) => {
                                let _ = write!(out, ",\"{label}\":\"inf\"");
                            }
                        }
                    }
                    out.push('}');
                }
            }
        }
        out.push('}');
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

/// Whether the global registry accepts mutations — the macro hot-path
/// gate, read with one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Turns global metric collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when [`count!`](crate::count)/[`observe!`](crate::observe)
/// record — one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds to a named global counter, creating it on first use. The handle
/// is cached per call site; disabled calls cost one relaxed load.
///
/// ```
/// # use sper_obs::count;
/// count!("emitter.comparisons_emitted", 128u64);
/// count!("emitter.heap_refills"); // increment by one
/// ```
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {
        if $crate::metrics::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::metrics::global().counter($name))
                .add($n);
        }
    };
}

/// Sets a named global gauge, creating it on first use. The handle is
/// cached per call site; disabled calls cost one relaxed load.
///
/// ```
/// # use sper_obs::gauge;
/// gauge!("session.tombstones_pending", 3i64);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {
        if $crate::metrics::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::metrics::global().gauge($name))
                .set($v);
        }
    };
}

/// Records a sample into a named global duration histogram
/// (microsecond-scale default buckets), created on first use. The handle
/// is cached per call site; disabled calls cost one relaxed load.
///
/// ```
/// # use sper_obs::observe;
/// observe!("store.crc_us", 12.5f64);
/// ```
#[macro_export]
macro_rules! observe {
    ($name:literal, $sample:expr) => {
        if $crate::metrics::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| {
                    $crate::metrics::global()
                        .histogram($name, &$crate::metrics::Histogram::duration_bounds())
                })
                .observe($sample);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_macro_sets_when_enabled() {
        crate::metrics::set_enabled(true);
        crate::gauge!("test.gauge_macro", 7i64);
        assert_eq!(global().gauge("test.gauge_macro").get(), 7);
        crate::gauge!("test.gauge_macro", 2i64);
        assert_eq!(global().gauge("test.gauge_macro").get(), 2);
        crate::metrics::set_enabled(false);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_empty_has_no_quantiles() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_single_sample_pins_every_quantile() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(5.0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(10.0), "q={q}");
        }
    }

    #[test]
    fn histogram_edge_buckets() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5); // first bucket
        h.observe(1.0); // boundary lands in its own bucket (le semantics)
        h.observe(1.5); // second bucket
        h.observe(99.0); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.75), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(
            h.cumulative_buckets(),
            vec![(1.0, 2), (2.0, 3), (f64::INFINITY, 4)]
        );
    }

    #[test]
    fn histogram_percentile_distribution() {
        let h = Histogram::new(&[10.0, 20.0, 50.0, 100.0]);
        for i in 0..100 {
            h.observe(i as f64);
        }
        assert_eq!(h.p50(), Some(50.0));
        assert_eq!(h.p90(), Some(100.0));
        assert_eq!(h.p99(), Some(100.0));
    }

    #[test]
    fn duration_bounds_are_strictly_ascending() {
        let bounds = Histogram::duration_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds.first().copied(), Some(1.0));
        assert_eq!(bounds.last().copied(), Some(10_000_000.0));
    }

    #[test]
    fn reset_keeps_handles_live() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("keep.me");
        c.add(3);
        reg.reset();
        c.add(2);
        assert_eq!(reg.counter("keep.me").get(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn prometheus_golden() {
        let reg = MetricsRegistry::new();
        reg.counter("emitter.comparisons").add(42);
        reg.gauge("session.epoch").set(3);
        let h = reg.histogram("store.write_us", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(5000.0);
        let text = reg.to_prometheus();
        let expected = "\
# TYPE emitter_comparisons counter
emitter_comparisons 42
# TYPE session_epoch gauge
session_epoch 3
# TYPE store_write_us histogram
store_write_us_bucket{le=\"10\"} 1
store_write_us_bucket{le=\"100\"} 2
store_write_us_bucket{le=\"+Inf\"} 3
store_write_us_sum 5055
store_write_us_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_export_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(1);
        let h = reg.histogram("b", &[1.0]);
        h.observe(0.5);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"a\":1,\"b\":{\"count\":1,\"sum\":0,\"p50\":1,\"p90\":1,\"p99\":1}}"
        );
    }
}
