//! Session checkpoints: persisting a [`ProgressiveSession`]'s complete
//! transferable state so a later process resumes it mid-stream.
//!
//! A checkpoint file captures the [`SessionState`] a session dehydrates
//! to: method + configuration, the ingested collection, the live
//! incremental substrate (blocks *or* neighbor-list runs — each method
//! maintains at most one), the cross-epoch emitted-pair filter, and the
//! epoch reports (whose length is the emission cursor). Resuming
//! rehydrates a session whose every future epoch is **bit-identical** to
//! what the uninterrupted session would have emitted — the guarantee the
//! kill/resume property test in `tests/resume.rs` pins for every
//! streamable method.
//!
//! Sections: `SESS` (method, config, counters) is required; `PROF` is
//! required; `INTR` + `ITBK` or `INTR` + `INLR` carry the substrate when
//! the state holds one; `EMIT` and `RPTS` are required (possibly empty);
//! `TOMB` (format v2) carries the mutation state — the compaction policy,
//! every retracted id, and the tombstones still physically pending in the
//! substrates. Version-1 files predate the mutation model and simply lack
//! `TOMB`; the reader treats that as "no mutations ever happened", which
//! is exactly what a v1 writer could express.
//!
//! **What is deliberately absent:** the sparse-accumulator kernel's
//! scratch state (`sper_blocking::WeightAccumulator` inside PBS/PPS, the
//! dense co-occurrence scratch inside LS-PSN/GS-PSN). The scratch is a
//! pure function of the substrates the methods sweep — dense arrays plus
//! a touched list, zeroed between profiles — so persisting it would add
//! `O(|P|)` bytes per worker to every checkpoint without changing a
//! single resumed emission. Rehydration allocates zeroed scratch and the
//! first sweep rebuilds it; `tests/resume.rs::
//! kernel_scratch_is_rebuilt_not_persisted` pins the invariant by killing
//! budgeted runs with a hot mid-schedule scratch and demanding
//! bit-identical continuations.

use crate::container::{Store, Tag};
use crate::error::StoreError;
use crate::substrates::{
    decode_incremental_index, decode_interner, decode_live_blocks, decode_profiles,
    encode_incremental_index, encode_interner, encode_live_blocks, encode_profiles, TAG_INTERNER,
    TAG_PROFILES,
};
use crate::wire::{Decoder, Encoder};
use sper_blocking::{TokenBlockingWorkflow, WeightingScheme};
use sper_core::{MethodConfig, NeighborWeighting, Parallelism, ProgressiveMethod};
use sper_model::{Pair, ProfileId};
use sper_stream::{
    CompactionPolicy, EpochReport, IncrementalNeighborList, IncrementalTokenBlocking,
    ProgressiveSession, SessionState,
};
use sper_text::TokenId;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Section tag of the session header (method, config, counters).
pub const TAG_SESSION: Tag = *b"SESS";
/// Section tag of the live token-blocking substrate.
pub const TAG_LIVE_BLOCKS: Tag = *b"ITBK";
/// Section tag of the live neighbor-list runs.
pub const TAG_NL_RUNS: Tag = *b"INLR";
/// Section tag of the emitted-pair filter.
pub const TAG_EMITTED: Tag = *b"EMIT";
/// Section tag of the per-epoch reports.
pub const TAG_REPORTS: Tag = *b"RPTS";
/// Section tag of the mutation state: compaction policy, retracted ids,
/// pending tombstones (format v2; absent in v1 files).
pub const TAG_TOMBSTONES: Tag = *b"TOMB";

/// A saved (or about-to-be-saved) session state.
///
/// ```no_run
/// use sper_core::ProgressiveMethod;
/// use sper_model::ProfileCollectionBuilder;
/// use sper_store::SessionCheckpoint;
/// use sper_stream::{ProgressiveSession, SessionConfig};
///
/// # fn main() -> Result<(), sper_store::StoreError> {
/// let mut session = ProgressiveSession::new(
///     ProfileCollectionBuilder::dirty().build(),
///     SessionConfig::exhaustive(ProgressiveMethod::Pps),
/// );
/// // … ingest and emit epochs, then persist at a budget boundary:
/// SessionCheckpoint::of(&session).write_to_path("run.sper".as_ref())?;
/// // … later, in a fresh process:
/// let mut resumed = SessionCheckpoint::read_from_path("run.sper".as_ref())?.resume();
/// resumed.emit_epoch(None); // exactly what the original would have emitted
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionCheckpoint {
    /// The captured state.
    pub state: SessionState,
}

impl SessionCheckpoint {
    /// Captures a session's current state.
    ///
    /// This clones the state out of the live session (`dehydrate`), so
    /// the checkpoint stays valid while the session keeps running; the
    /// copy is the dominant cost of a checkpoint (~tens of ms per 10⁴
    /// profiles — see `BENCH_store.json`). A borrow-based encode path is
    /// a possible future optimization if checkpoint cadence ever needs
    /// to be per-emission rather than per-epoch.
    pub fn of(session: &ProgressiveSession) -> Self {
        Self {
            state: session.dehydrate(),
        }
    }

    /// Rehydrates the session (consuming the checkpoint).
    pub fn resume(self) -> ProgressiveSession {
        ProgressiveSession::rehydrate(self.state)
    }

    /// Serializes the checkpoint into a sectioned store.
    pub fn to_store(&self) -> Store {
        let state = &self.state;
        let mut store = Store::new();

        let mut e = Encoder::new();
        e.u8(state.method.code());
        encode_method_config(&mut e, &state.config);
        e.u64(state.pending_ingest as u64);
        e.u8(state.blocks.is_some() as u8);
        e.u8(state.nl.is_some() as u8);
        store.push(TAG_SESSION, e.into_bytes());

        store.push(TAG_PROFILES, encode_profiles(&state.profiles));

        // Mutation state (format v2). Always written — an empty section
        // keeps the byte layout a pure function of the state, and the
        // reader's v1 fallback only triggers on files that truly predate
        // the section.
        let mut e = Encoder::new();
        e.f64(state.compaction.tombstone_ratio);
        e.u64(state.retracted.len() as u64);
        for p in &state.retracted {
            e.u32(p.0);
        }
        e.u64(state.pending_tombstones.len() as u64);
        for p in &state.pending_tombstones {
            e.u32(p.0);
        }
        store.push(TAG_TOMBSTONES, e.into_bytes());

        if let Some(blocks) = &state.blocks {
            store.push(TAG_INTERNER, encode_interner(blocks.interner()));
            let mut e = Encoder::new();
            let live = encode_live_blocks(blocks.blocks());
            e.u64(live.len() as u64);
            let mut payload = e.into_bytes();
            payload.extend_from_slice(&live);
            payload.extend_from_slice(&encode_incremental_index(blocks.profile_index()));
            store.push(TAG_LIVE_BLOCKS, payload);
        } else if let Some(nl) = &state.nl {
            store.push(TAG_INTERNER, encode_interner(nl.interner()));
            store.push(TAG_NL_RUNS, encode_nl_runs(nl));
        }

        let mut e = Encoder::new();
        e.u64(state.emitted.len() as u64);
        for p in &state.emitted {
            e.u32(p.first.0);
            e.u32(p.second.0);
        }
        store.push(TAG_EMITTED, e.into_bytes());

        let mut e = Encoder::new();
        e.u64(state.reports.len() as u64);
        for r in &state.reports {
            e.u64(r.epoch as u64);
            e.u64(r.ingested as u64);
            e.u64(r.profiles_total as u64);
            e.u64(r.raw_emissions);
            e.u64(r.new_emissions);
            e.u64(r.suppressed);
            // Timing state is never persisted: it describes the machine
            // the epoch ran on, not the session's resumable state. The two
            // wire slots that historically carried init/emission nanos are
            // kept (layout compatibility) but always written as zero.
            e.u64(0);
            e.u64(0);
        }
        store.push(TAG_REPORTS, e.into_bytes());

        store
    }

    /// Deserializes a checkpoint from a sectioned store, validating every
    /// cross-section invariant.
    pub fn from_store(store: &Store) -> Result<Self, StoreError> {
        let mut d = Decoder::new(store.require(TAG_SESSION, "SESS")?, "SESS");
        let method = ProgressiveMethod::from_code(d.u8()?)
            .ok_or_else(|| d.corrupt("unknown method code"))?;
        if method.is_schema_based() {
            return Err(d.corrupt("PSN is schema-based; sessions cannot hold it"));
        }
        let config = decode_method_config(&mut d)?;
        let pending_ingest = d.len()?;
        let has_blocks = d.u8()? != 0;
        let has_nl = d.u8()? != 0;
        d.finish()?;
        if has_blocks && has_nl {
            return Err(StoreError::Corrupt {
                section: "SESS".into(),
                detail: "a session maintains at most one substrate".into(),
            });
        }

        let profiles = decode_profiles(store.require(TAG_PROFILES, "PROF")?)?;
        let n_profiles = profiles.len();
        if pending_ingest > n_profiles {
            return Err(StoreError::Corrupt {
                section: "SESS".into(),
                detail: format!("pending ingest {pending_ingest} exceeds |P| = {n_profiles}"),
            });
        }

        // Mutation state. A v1 file has no TOMB section: those writers
        // could not retract, so "no mutations" is exact, not a guess.
        let (compaction, retracted, pending_tombstones) = match store.get(TAG_TOMBSTONES) {
            None => (CompactionPolicy::default(), Vec::new(), Vec::new()),
            Some(bytes) => decode_tombstones(bytes, n_profiles, &profiles)?,
        };

        let mut blocks: Option<IncrementalTokenBlocking> = None;
        let mut nl: Option<IncrementalNeighborList> = None;
        if has_blocks {
            let interner = Arc::new(decode_interner(store.require(TAG_INTERNER, "INTR")?)?);
            let payload = store.require(TAG_LIVE_BLOCKS, "ITBK")?;
            let mut d = Decoder::new(payload, "ITBK");
            let live_len = d.len()?;
            let rest = &payload[8..];
            if live_len > rest.len() {
                return Err(d.corrupt("live-block segment length exceeds payload"));
            }
            let live = decode_live_blocks(&rest[..live_len], n_profiles, &interner)?;
            let index = decode_incremental_index(&rest[live_len..])?;
            if index.total_blocks() != live.len() {
                return Err(StoreError::Corrupt {
                    section: "ITBK".into(),
                    detail: format!(
                        "index covers {} blocks, {} stored",
                        index.total_blocks(),
                        live.len()
                    ),
                });
            }
            if index.n_profiles() != n_profiles {
                return Err(StoreError::Corrupt {
                    section: "ITBK".into(),
                    detail: format!(
                        "index covers {} profiles, collection has {n_profiles}",
                        index.n_profiles()
                    ),
                });
            }
            blocks = Some(IncrementalTokenBlocking::from_parts(
                profiles.kind(),
                n_profiles,
                interner,
                live,
                index,
            ));
        } else if has_nl {
            let interner = Arc::new(decode_interner(store.require(TAG_INTERNER, "INTR")?)?);
            nl = Some(decode_nl_runs(
                store.require(TAG_NL_RUNS, "INLR")?,
                n_profiles,
                interner,
            )?);
        }
        // Re-mark the tombstones on the decoded substrate: the wire
        // format stores blocks/runs as they physically are (dead rows
        // included — that is the pre-compaction truth) and the id lists
        // separately, so the marks are re-applied rather than encoded
        // per-row.
        if let Some(b) = blocks.as_mut() {
            b.restore_tombstones(retracted.iter().copied(), pending_tombstones.len());
        }
        if let Some(n) = nl.as_mut() {
            n.restore_tombstones(retracted.iter().copied(), pending_tombstones.len());
        }
        let mut dead = vec![false; n_profiles];
        for &id in &retracted {
            dead[id.index()] = true;
        }

        let mut d = Decoder::new(store.require(TAG_EMITTED, "EMIT")?, "EMIT");
        let count = d.len()?;
        let mut emitted: Vec<Pair> = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let first = d.u32()?;
            let second = d.u32()?;
            if first >= second {
                return Err(d.corrupt("pair endpoints not in canonical order"));
            }
            if second as usize >= n_profiles {
                return Err(d.corrupt("pair endpoint out of profile range"));
            }
            if dead[first as usize] || dead[second as usize] {
                // Sessions invalidate dedup entries eagerly on retract; a
                // surviving entry means the two sections disagree.
                return Err(d.corrupt("emitted pair touches a retracted profile"));
            }
            let pair = Pair::new(ProfileId(first), ProfileId(second));
            if let Some(&prev) = emitted.last() {
                if prev >= pair {
                    return Err(d.corrupt("emitted pairs not strictly ascending"));
                }
            }
            emitted.push(pair);
        }
        d.finish()?;

        let mut d = Decoder::new(store.require(TAG_REPORTS, "RPTS")?, "RPTS");
        let count = d.len()?;
        let mut reports: Vec<EpochReport> = Vec::with_capacity(count.min(1 << 16));
        for i in 0..count {
            let epoch = d.len()?;
            if epoch != i + 1 {
                return Err(d.corrupt(format!("epoch {epoch} recorded at cursor {}", i + 1)));
            }
            let ingested = d.len()?;
            let profiles_total = d.len()?;
            let raw_emissions = d.u64()?;
            let new_emissions = d.u64()?;
            let suppressed = d.u64()?;
            // Drain the two legacy timing slots; restored reports always
            // carry zeroed timings (see `to_store`).
            let _ = d.u64()?;
            let _ = d.u64()?;
            reports.push(EpochReport {
                epoch,
                ingested,
                profiles_total,
                raw_emissions,
                new_emissions,
                suppressed,
                init_time: Duration::ZERO,
                emission_time: Duration::ZERO,
                wall_clock: Duration::ZERO,
                comparisons_per_sec: 0.0,
            });
        }
        d.finish()?;

        Ok(Self {
            state: SessionState {
                method,
                config,
                profiles,
                blocks,
                nl,
                emitted,
                pending_ingest,
                reports,
                compaction,
                retracted,
                pending_tombstones,
            },
        })
    }

    /// Writes the checkpoint to a file (atomically, via temp + rename).
    pub fn write_to_path(&self, path: &Path) -> Result<(), StoreError> {
        let _span = sper_obs::span!("store.checkpoint_write");
        self.to_store().write_to_path(path)
    }

    /// Reads a checkpoint file.
    pub fn read_from_path(path: &Path) -> Result<Self, StoreError> {
        let _span = sper_obs::span!("store.checkpoint_read");
        Self::from_store(&Store::read_from_path(path)?)
    }
}

fn encode_method_config(e: &mut Encoder, config: &MethodConfig) {
    e.u64(config.seed);
    e.u64(config.wmax as u64);
    e.u64(config.lmin as u64);
    e.u64(config.kmax as u64);
    e.u8(config.scheme.code());
    e.u8(config.neighbor_weighting.code());
    e.f64(config.workflow.purge_ratio);
    e.f64(config.workflow.filter_ratio);
    match config.max_window {
        Some(w) => {
            e.u8(1);
            e.u64(w as u64);
        }
        None => e.u8(0),
    }
    e.u64(config.threads.get() as u64);
}

fn decode_method_config(d: &mut Decoder<'_>) -> Result<MethodConfig, StoreError> {
    // Config scalars are parameters, not allocation lengths — `kmax` is
    // `usize::MAX / 2` in the exhaustive regime — so they skip the
    // plausible-length guard and only check address-space fit.
    fn scalar(d: &mut Decoder<'_>) -> Result<usize, StoreError> {
        let v = d.u64()?;
        usize::try_from(v).map_err(|_| d.corrupt(format!("parameter {v} exceeds address space")))
    }
    let seed = d.u64()?;
    let wmax = scalar(d)?;
    let lmin = scalar(d)?;
    let kmax = scalar(d)?;
    let scheme = WeightingScheme::from_code(d.u8()?)
        .ok_or_else(|| d.corrupt("unknown weighting-scheme code"))?;
    let neighbor_weighting = NeighborWeighting::from_code(d.u8()?)
        .ok_or_else(|| d.corrupt("unknown neighbor-weighting code"))?;
    let purge_ratio = d.f64()?;
    let filter_ratio = d.f64()?;
    if !(purge_ratio.is_finite() && filter_ratio.is_finite()) {
        return Err(d.corrupt("non-finite workflow ratio"));
    }
    let max_window = match d.u8()? {
        0 => None,
        1 => Some(scalar(d)?),
        other => return Err(d.corrupt(format!("invalid max-window flag {other}"))),
    };
    let threads = Parallelism::new(scalar(d)?).map_err(|_| d.corrupt("zero worker threads"))?;
    Ok(MethodConfig {
        seed,
        wmax,
        lmin,
        kmax,
        scheme,
        neighbor_weighting,
        workflow: TokenBlockingWorkflow {
            purge_ratio,
            filter_ratio,
        },
        max_window,
        threads,
    })
}

/// Decodes the `TOMB` mutation section: compaction policy plus the two
/// canonical (strictly ascending) id lists, cross-validated against the
/// collection — a retracted profile must be a husk, and every pending
/// tombstone must be retracted.
fn decode_tombstones(
    bytes: &[u8],
    n_profiles: usize,
    profiles: &sper_model::ProfileCollection,
) -> Result<(CompactionPolicy, Vec<ProfileId>, Vec<ProfileId>), StoreError> {
    let mut d = Decoder::new(bytes, "TOMB");
    let tombstone_ratio = d.f64()?;
    // Infinity is meaningful (manual-only compaction); NaN and negatives
    // are not a policy any writer produces.
    if tombstone_ratio.is_nan() || tombstone_ratio < 0.0 {
        return Err(d.corrupt(format!("invalid compaction ratio {tombstone_ratio}")));
    }
    let ascending_ids = |d: &mut Decoder<'_>| -> Result<Vec<ProfileId>, StoreError> {
        let count = d.len()?;
        let mut ids: Vec<ProfileId> = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let id = d.u32()?;
            if id as usize >= n_profiles {
                return Err(d.corrupt(format!("tombstone id {id} out of profile range")));
            }
            if ids.last().is_some_and(|p| p.0 >= id) {
                return Err(d.corrupt("tombstone ids not strictly ascending"));
            }
            ids.push(ProfileId(id));
        }
        Ok(ids)
    };
    let retracted = ascending_ids(&mut d)?;
    let pending = ascending_ids(&mut d)?;
    d.finish()?;
    for &id in &retracted {
        if !profiles.is_husk(id) {
            return Err(StoreError::Corrupt {
                section: "TOMB".into(),
                detail: format!("retracted {id} still has attributes in PROF"),
            });
        }
    }
    for &id in &pending {
        if retracted.binary_search(&id).is_err() {
            return Err(StoreError::Corrupt {
                section: "TOMB".into(),
                detail: format!("pending tombstone {id} was never retracted"),
            });
        }
    }
    Ok((CompactionPolicy { tombstone_ratio }, retracted, pending))
}

/// Encodes the incremental neighbor list as its per-token runs, in token-id
/// order (canonical bytes for the hash-map-backed structure).
fn encode_nl_runs(nl: &IncrementalNeighborList) -> Vec<u8> {
    let mut runs: Vec<(TokenId, &[ProfileId])> = nl.runs().collect();
    runs.sort_unstable_by_key(|&(t, _)| t);
    let mut e = Encoder::new();
    e.u64(nl.seed());
    e.u64(runs.len() as u64);
    for (token, members) in runs {
        e.u32(token.0);
        e.u64(members.len() as u64);
        for p in members {
            e.u32(p.0);
        }
    }
    e.into_bytes()
}

fn decode_nl_runs(
    bytes: &[u8],
    n_profiles: usize,
    interner: Arc<sper_text::TokenInterner>,
) -> Result<IncrementalNeighborList, StoreError> {
    let mut d = Decoder::new(bytes, "INLR");
    let seed = d.u64()?;
    let count = d.len()?;
    let mut runs: Vec<(TokenId, Vec<ProfileId>)> = Vec::with_capacity(count.min(1 << 20));
    let mut prev_token: Option<u32> = None;
    for _ in 0..count {
        let token = d.u32()?;
        if token as usize >= interner.len() {
            return Err(d.corrupt("run key not in the interner vocabulary"));
        }
        if prev_token.is_some_and(|p| p >= token) {
            return Err(d.corrupt("runs not strictly ascending by token id"));
        }
        prev_token = Some(token);
        let n = d.len()?;
        let mut members = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            members.push(d.u32()?);
        }
        if !members.windows(2).all(|w| w[0] < w[1]) {
            return Err(d.corrupt("run members not strictly ascending"));
        }
        if members.iter().any(|&m| m as usize >= n_profiles) {
            return Err(d.corrupt("run member out of profile range"));
        }
        runs.push((TokenId(token), members.into_iter().map(ProfileId).collect()));
    }
    d.finish()?;
    Ok(IncrementalNeighborList::from_parts(
        seed, n_profiles, interner, runs,
    ))
}
