//! Section codecs for every columnar substrate.
//!
//! Each substrate serializes to exactly the flat arrays it is made of
//! (the CSR columns of PR 2), so encoding is a sequence of `memcpy`-shaped
//! array writes and decoding reassembles the structure through its
//! `from_raw_parts` / `from_parts` constructor — **after** validating
//! every invariant those constructors only debug-assert. A store file is
//! untrusted input: out-of-range ids, non-monotone offsets and duplicate
//! keys must surface as [`StoreError::Corrupt`], never as a panic or a
//! silently inconsistent structure.
//!
//! Round-trips are bit-identical: the decoded structure's raw arrays
//! equal the encoded one's element for element (property-tested in
//! `tests/roundtrip.rs`).

use crate::container::Tag;
use crate::error::StoreError;
use crate::wire::{Decoder, Encoder};
use sper_blocking::{
    Block, BlockCollection, BlockingGraph, IncrementalProfileIndex, NeighborList, ProfileIndex,
};
use sper_model::{Attribute, ErKind, Pair, ProfileCollection, ProfileCollectionBuilder, ProfileId};
use sper_text::{TokenId, TokenInterner};
use std::sync::Arc;

/// Section tag of the token interner vocabulary.
pub const TAG_INTERNER: Tag = *b"INTR";
/// Section tag of a profile collection.
pub const TAG_PROFILES: Tag = *b"PROF";
/// Section tag of a frozen CSR profile index.
pub const TAG_PROFILE_INDEX: Tag = *b"PIDX";
/// Section tag of a growable (incremental) profile index.
pub const TAG_INCREMENTAL_INDEX: Tag = *b"IPIX";
/// Section tag of a CSR block collection.
pub const TAG_BLOCKS: Tag = *b"BLKC";
/// Section tag of a materialized blocking graph.
pub const TAG_GRAPH: Tag = *b"GRPH";
/// Section tag of a neighbor list.
pub const TAG_NEIGHBOR_LIST: Tag = *b"NLST";

/// Encodes an interner as its id-ordered vocabulary.
pub fn encode_interner(interner: &TokenInterner) -> Vec<u8> {
    let strings = interner.strings();
    let mut e = Encoder::new();
    e.u64(strings.len() as u64);
    for s in &strings {
        e.str(s);
    }
    e.into_bytes()
}

/// Decodes an interner, preserving every id.
pub fn decode_interner(bytes: &[u8]) -> Result<TokenInterner, StoreError> {
    let mut d = Decoder::new(bytes, "INTR");
    let count = d.len()?;
    let mut strings = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        strings.push(d.str()?);
    }
    d.finish()?;
    TokenInterner::from_strings(strings).map_err(|e| StoreError::Corrupt {
        section: "INTR".into(),
        detail: e.to_string(),
    })
}

/// Encodes a profile collection: kind, `|P1|`, then every profile's
/// attribute pairs in id order (sources are implied by the `P1`-first id
/// layout the collection invariants guarantee).
pub fn encode_profiles(profiles: &ProfileCollection) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(profiles.kind().code());
    e.u64(profiles.len_first() as u64);
    e.u64(profiles.len() as u64);
    for p in profiles.iter() {
        e.u64(p.attributes.len() as u64);
        for a in &p.attributes {
            e.str(&a.name);
            e.str(&a.value);
        }
    }
    e.into_bytes()
}

/// Decodes a profile collection, re-deriving dense ids and sources.
pub fn decode_profiles(bytes: &[u8]) -> Result<ProfileCollection, StoreError> {
    let mut d = Decoder::new(bytes, "PROF");
    let kind = ErKind::from_code(d.u8()?).ok_or_else(|| d.corrupt("unknown ER-kind code"))?;
    let n_first = d.len()?;
    let count = d.len()?;
    if n_first > count {
        return Err(d.corrupt(format!("|P1| = {n_first} exceeds |P| = {count}")));
    }
    if kind == ErKind::Dirty && n_first != count {
        return Err(d.corrupt("Dirty collection with a second source"));
    }
    let mut b = match kind {
        ErKind::Dirty => ProfileCollectionBuilder::dirty(),
        ErKind::CleanClean => ProfileCollectionBuilder::clean_clean(),
    };
    for i in 0..count {
        if kind == ErKind::CleanClean && i == n_first {
            b.start_second_source();
        }
        let n_attrs = d.len()?;
        let mut attributes = Vec::with_capacity(n_attrs.min(1 << 16));
        for _ in 0..n_attrs {
            let name = d.str()?;
            let value = d.str()?;
            attributes.push(Attribute::new(name, value));
        }
        b.add_attributes(attributes);
    }
    if kind == ErKind::CleanClean && n_first == count {
        b.start_second_source();
    }
    d.finish()?;
    Ok(b.build())
}

/// Encodes a frozen CSR profile index.
pub fn encode_profile_index(index: &ProfileIndex) -> Vec<u8> {
    let (offsets, block_ids, cardinalities) = index.raw_parts();
    let mut e = Encoder::new();
    e.u64(index.total_blocks() as u64);
    e.slice_u32(offsets);
    e.slice_u32(block_ids);
    e.slice_u64(cardinalities);
    e.into_bytes()
}

/// Decodes a frozen CSR profile index, validating its invariants.
pub fn decode_profile_index(bytes: &[u8]) -> Result<ProfileIndex, StoreError> {
    let mut d = Decoder::new(bytes, "PIDX");
    let total_blocks = d.len()?;
    let offsets = d.vec_u32()?;
    let block_ids = d.vec_u32()?;
    let cardinalities = d.vec_u64()?;
    validate_csr_offsets(&d, &offsets, block_ids.len())?;
    if cardinalities.len() != total_blocks {
        return Err(d.corrupt(format!(
            "{} cardinalities for {total_blocks} blocks",
            cardinalities.len()
        )));
    }
    for w in offsets.windows(2) {
        let range = &block_ids[w[0] as usize..w[1] as usize];
        if !range.windows(2).all(|p| p[0] < p[1]) {
            return Err(d.corrupt("a profile's block list is not strictly ascending"));
        }
    }
    if block_ids.iter().any(|&b| b as usize >= total_blocks) {
        return Err(d.corrupt("block id out of range"));
    }
    d.finish()?;
    Ok(ProfileIndex::from_raw_parts(
        offsets,
        block_ids,
        cardinalities,
        total_blocks,
    ))
}

/// Encodes a growable profile index (per-profile lists packed as CSR;
/// offsets are `u64` because the live index has no `u32` packing ceiling).
pub fn encode_incremental_index(index: &IncrementalProfileIndex) -> Vec<u8> {
    let lists = index.block_lists();
    let mut e = Encoder::new();
    e.u64(index.total_blocks() as u64);
    let mut offsets: Vec<u64> = Vec::with_capacity(lists.len() + 1);
    offsets.push(0);
    let mut acc = 0u64;
    for l in lists {
        acc += l.len() as u64;
        offsets.push(acc);
    }
    e.slice_u64(&offsets);
    e.u64(acc);
    for l in lists {
        for &b in l {
            e.u32(b);
        }
    }
    let cardinalities: Vec<u64> = (0..index.total_blocks())
        .map(|i| index.cardinality(sper_blocking::BlockId(i as u32)))
        .collect();
    e.slice_u64(&cardinalities);
    e.into_bytes()
}

/// Decodes a growable profile index, validating its invariants.
pub fn decode_incremental_index(bytes: &[u8]) -> Result<IncrementalProfileIndex, StoreError> {
    let mut d = Decoder::new(bytes, "IPIX");
    let total_blocks = d.len()?;
    let offsets = d.vec_u64()?;
    if offsets.is_empty() || offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(d.corrupt("offsets are not a monotone prefix-sum table"));
    }
    let total_entries = d.len()?;
    if *offsets.last().expect("non-empty") != total_entries as u64 {
        return Err(d.corrupt("offset table disagrees with entry count"));
    }
    let mut block_lists: Vec<Vec<u32>> = Vec::with_capacity(offsets.len() - 1);
    for w in offsets.windows(2) {
        let n = (w[1] - w[0]) as usize;
        // Clamped like every other untrusted count: a crafted offset
        // table must fail on the missing bytes, not on a huge
        // reservation.
        let mut list = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            list.push(d.u32()?);
        }
        if !list.windows(2).all(|p| p[0] < p[1]) {
            return Err(d.corrupt("a profile's block list is not strictly ascending"));
        }
        if list.iter().any(|&b| b as usize >= total_blocks) {
            return Err(d.corrupt("block id out of range"));
        }
        block_lists.push(list);
    }
    let cardinalities = d.vec_u64()?;
    if cardinalities.len() != total_blocks {
        return Err(d.corrupt(format!(
            "{} cardinalities for {total_blocks} blocks",
            cardinalities.len()
        )));
    }
    d.finish()?;
    Ok(IncrementalProfileIndex::from_parts(
        block_lists,
        cardinalities,
        total_blocks,
    ))
}

/// Encodes a CSR block collection (kind, `|P|`, then the four columns).
pub fn encode_blocks(blocks: &BlockCollection) -> Vec<u8> {
    let parts = blocks.raw_parts();
    let mut e = Encoder::new();
    e.u8(parts.kind.code());
    e.u64(parts.n_profiles as u64);
    e.slice_u32(&token_ids_as_u32(parts.keys));
    e.slice_u32(parts.offsets);
    e.slice_u32(&profile_ids_as_u32(parts.members));
    e.slice_u32(parts.n_firsts);
    e.into_bytes()
}

/// Decodes a CSR block collection against `interner` (which must resolve
/// every key id).
pub fn decode_blocks(
    bytes: &[u8],
    interner: Arc<TokenInterner>,
) -> Result<BlockCollection, StoreError> {
    let mut d = Decoder::new(bytes, "BLKC");
    let kind = ErKind::from_code(d.u8()?).ok_or_else(|| d.corrupt("unknown ER-kind code"))?;
    let n_profiles = d.len()?;
    let keys = d.vec_u32()?;
    let offsets = d.vec_u32()?;
    let members = d.vec_u32()?;
    let n_firsts = d.vec_u32()?;
    if offsets.len() != keys.len() + 1 || n_firsts.len() != keys.len() {
        return Err(d.corrupt("column lengths disagree"));
    }
    validate_csr_offsets(&d, &offsets, members.len())?;
    if keys.iter().any(|&k| k as usize >= interner.len()) {
        return Err(d.corrupt("block key not in the interner vocabulary"));
    }
    if members.iter().any(|&m| m as usize >= n_profiles) {
        return Err(d.corrupt("block member out of profile range"));
    }
    for (i, w) in offsets.windows(2).enumerate() {
        let size = w[1] - w[0];
        if n_firsts[i] > size {
            return Err(d.corrupt(format!("block {i}: |b ∩ P1| exceeds |b|")));
        }
        let members = &members[w[0] as usize..w[1] as usize];
        let (firsts, seconds) = members.split_at(n_firsts[i] as usize);
        if !firsts.windows(2).all(|p| p[0] < p[1]) || !seconds.windows(2).all(|p| p[0] < p[1]) {
            return Err(d.corrupt(format!(
                "block {i}: members not ascending within source partitions"
            )));
        }
    }
    d.finish()?;
    Ok(BlockCollection::from_raw_parts(
        kind,
        n_profiles,
        interner,
        u32_as_token_ids(keys),
        offsets,
        u32_as_profile_ids(members),
        n_firsts,
    ))
}

/// Encodes a materialized blocking graph as its weighted edge list (the
/// CSR adjacency is a pure function of the list and is rebuilt on load).
pub fn encode_graph(graph: &BlockingGraph) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(graph.num_nodes() as u64);
    e.u64(graph.num_edges() as u64);
    for (pair, weight) in graph.edges() {
        e.u32(pair.first.0);
        e.u32(pair.second.0);
        e.f64(weight);
    }
    e.into_bytes()
}

/// Decodes a blocking graph, validating endpoints and rebuilding the
/// adjacency deterministically.
pub fn decode_graph(bytes: &[u8]) -> Result<BlockingGraph, StoreError> {
    let mut d = Decoder::new(bytes, "GRPH");
    let n_profiles = d.len()?;
    let n_edges = d.len()?;
    let mut edges: Vec<(Pair, f64)> = Vec::with_capacity(n_edges.min(1 << 20));
    for _ in 0..n_edges {
        let first = d.u32()?;
        let second = d.u32()?;
        let weight = d.f64()?;
        if first >= second {
            return Err(d.corrupt("edge endpoints not in canonical order"));
        }
        if second as usize >= n_profiles {
            return Err(d.corrupt("edge endpoint out of profile range"));
        }
        edges.push((Pair::new(ProfileId(first), ProfileId(second)), weight));
    }
    d.finish()?;
    Ok(BlockingGraph::from_edges(n_profiles, edges))
}

/// Encodes a neighbor list (the placement array plus the optional
/// per-position key column).
pub fn encode_neighbor_list(nl: &NeighborList) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(nl.position_index().n_profiles() as u64);
    e.slice_u32(&profile_ids_as_u32(nl.as_slice()));
    match nl.keys() {
        Some(keys) => {
            e.u8(1);
            e.slice_u32(&token_ids_as_u32(keys));
        }
        None => e.u8(0),
    }
    e.into_bytes()
}

/// Decodes a neighbor list against `interner`, rebuilding the position
/// index (a pure function of the list, so round-trips are bit-identical).
pub fn decode_neighbor_list(
    bytes: &[u8],
    interner: Arc<TokenInterner>,
) -> Result<NeighborList, StoreError> {
    let mut d = Decoder::new(bytes, "NLST");
    let n_profiles = d.len()?;
    let nl = d.vec_u32()?;
    if nl.iter().any(|&p| p as usize >= n_profiles) {
        return Err(d.corrupt("placement out of profile range"));
    }
    let keys = match d.u8()? {
        0 => None,
        1 => {
            let keys = d.vec_u32()?;
            if keys.len() != nl.len() {
                return Err(d.corrupt("key column length disagrees with the list"));
            }
            if keys.iter().any(|&k| k as usize >= interner.len()) {
                return Err(d.corrupt("position key not in the interner vocabulary"));
            }
            Some(u32_as_token_ids(keys))
        }
        other => return Err(d.corrupt(format!("invalid key-presence flag {other}"))),
    };
    d.finish()?;
    Ok(NeighborList::from_raw_parts(
        u32_as_profile_ids(nl),
        keys,
        interner,
        n_profiles,
    ))
}

/// Encodes the live blocks of an incremental token-blocking substrate
/// (insertion order, singletons included).
pub(crate) fn encode_live_blocks(blocks: &[Block]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(blocks.len() as u64);
    for b in blocks {
        e.u32(b.key.0);
        e.u32(b.first_source().len() as u32);
        e.slice_u32(&profile_ids_as_u32(b.profiles()));
    }
    e.into_bytes()
}

/// Decodes live blocks, validating the one-block-per-token invariant.
pub(crate) fn decode_live_blocks(
    bytes: &[u8],
    n_profiles: usize,
    interner: &TokenInterner,
) -> Result<Vec<Block>, StoreError> {
    let mut d = Decoder::new(bytes, "ITBK");
    let count = d.len()?;
    let mut seen_keys = vec![false; interner.len()];
    let mut blocks = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let key = d.u32()?;
        if key as usize >= interner.len() {
            return Err(d.corrupt(format!("block {i}: key not in the interner vocabulary")));
        }
        if std::mem::replace(&mut seen_keys[key as usize], true) {
            return Err(d.corrupt(format!("block {i}: duplicate token key")));
        }
        let n_first = d.u32()? as usize;
        let members = d.vec_u32()?;
        if n_first > members.len() {
            return Err(d.corrupt(format!("block {i}: |b ∩ P1| exceeds |b|")));
        }
        if members.iter().any(|&m| m as usize >= n_profiles) {
            return Err(d.corrupt(format!("block {i}: member out of profile range")));
        }
        let (firsts, seconds) = members.split_at(n_first);
        if !firsts.windows(2).all(|p| p[0] < p[1]) || !seconds.windows(2).all(|p| p[0] < p[1]) {
            return Err(d.corrupt(format!(
                "block {i}: members not ascending within source partitions"
            )));
        }
        blocks.push(Block::from_partitioned(
            TokenId(key),
            u32_as_profile_ids(members),
            n_first as u32,
        ));
    }
    d.finish()?;
    Ok(blocks)
}

/// Shared offset-table validation for the `u32` CSR columns.
fn validate_csr_offsets(d: &Decoder<'_>, offsets: &[u32], total: usize) -> Result<(), StoreError> {
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(d.corrupt("offset table must start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(d.corrupt("offsets are not monotone"));
    }
    if *offsets.last().expect("non-empty") as usize != total {
        return Err(d.corrupt("offset table disagrees with packed-array length"));
    }
    Ok(())
}

// `TokenId` / `ProfileId` are `repr(Rust)` newtypes over `u32`; the wire
// format stores the raw integers, so the boundary is one map in each
// direction (the compiler lowers these to no-ops or simple loops).

fn token_ids_as_u32(ids: &[TokenId]) -> Vec<u32> {
    ids.iter().map(|t| t.0).collect()
}

fn u32_as_token_ids(raw: Vec<u32>) -> Vec<TokenId> {
    raw.into_iter().map(TokenId).collect()
}

fn profile_ids_as_u32(ids: &[ProfileId]) -> Vec<u32> {
    ids.iter().map(|p| p.0).collect()
}

fn u32_as_profile_ids(raw: Vec<u32>) -> Vec<ProfileId> {
    raw.into_iter().map(ProfileId).collect()
}
