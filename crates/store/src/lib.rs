//! Persistent snapshots and checkpoint/resume for the columnar core.
//!
//! The progressive methods exist to deliver matches under a budget; in a
//! long-running deployment that means sessions pause at budget exhaustion
//! and resume later — possibly in another process. This crate is the
//! durability layer that makes that cheap: a versioned, checksummed,
//! little-endian sectioned binary format (magic `SPER`) whose sections are
//! exactly the flat arrays the columnar substrates are made of, so writing
//! is a sequence of `memcpy`-shaped column dumps and loading skips
//! re-tokenization, re-sorting and re-hashing entirely.
//!
//! Two on-disk structures are defined over the shared container:
//!
//! * [`Snapshot`] — a collection's cold-start substrates ([`sper_text::TokenInterner`],
//!   [`sper_model::ProfileCollection`], CSR [`sper_blocking::BlockCollection`],
//!   [`sper_blocking::ProfileIndex`], [`sper_blocking::BlockingGraph`],
//!   [`sper_blocking::NeighborList`]) that round-trip to **bit-identical
//!   arrays**;
//! * [`SessionCheckpoint`] — a [`sper_stream::ProgressiveSession`]'s
//!   complete transferable state (epoch state, cross-epoch dedup filter,
//!   emission cursor), such that a resumed session emits exactly the
//!   suffix an uninterrupted run would have emitted.
//!
//! Corrupted input (truncation, bad magic, wrong version, bit rot) always
//! surfaces as a typed [`StoreError`] — never a panic — with per-section
//! CRC-32s attributing damage to the section it hit.
//!
//! See DESIGN.md § "Persistence" for the format layout, the versioning
//! policy and the checkpoint-semantics argument.

#![deny(missing_docs)]

mod container;
mod crc32;
mod error;
mod wire;

mod checkpoint;
mod healing;
mod salvage;
mod snapshot;
pub mod substrates;

pub use checkpoint::{
    SessionCheckpoint, TAG_EMITTED, TAG_LIVE_BLOCKS, TAG_NL_RUNS, TAG_REPORTS, TAG_SESSION,
    TAG_TOMBSTONES,
};
pub use container::{
    purge_stale_tmp, tmp_path, Store, Tag, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};
pub use crc32::crc32;
pub use error::StoreError;
pub use healing::{
    prev_path, read_store_with_fallback, read_with_fallback, CheckpointOutcome, CheckpointWriter,
    OnCheckpointFailure, RetryPolicy,
};
pub use salvage::{LostSection, SalvageReport};
pub use snapshot::Snapshot;
