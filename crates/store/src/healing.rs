//! Self-healing persistence: retries, last-good rotation, and graceful
//! checkpoint degradation.
//!
//! The container's temp+rename write already guarantees a crash never
//! tears the destination file; this module closes the remaining gaps for
//! long-lived sessions:
//!
//! * [`RetryPolicy`] — bounded retries with decorrelated-jitter backoff
//!   for transient I/O failures, with an injected sleeper so tests run
//!   the schedule instantly. Each retry is a `store.retry` count and a
//!   Warn event.
//! * **Last-good rotation** ([`Store::write_rotated`]) — the previous
//!   file survives as `path.prev` when a new one commits, so a write
//!   that fails *mid-rotation* (or a corrupted current file discovered
//!   later) can never lose the ability to resume:
//!   [`read_store_with_fallback`] falls back to `.prev` with a Warn.
//! * [`CheckpointWriter`] — the checkpoint cadence of a streaming run,
//!   combining both of the above with an `on_failure` policy: `Abort`
//!   propagates an exhausted-retries error, `Continue` logs + counts and
//!   lets the run keep emitting (the checkpoint is a durability aid, not
//!   a correctness dependency — emission is untouched either way).
//!
//! The rotation state machine (written up in DESIGN.md § "Fault
//! injection & recovery"):
//!
//! ```text
//!   write tmp ── fsync ──► rename path → path.prev ──► rename tmp → path
//!      │                        │                          │
//!      ▼ fail/kill              ▼ fail/kill                ▼ fail/kill
//!   path intact            path.prev intact           path.prev intact
//!   (tmp purged on open)   (fallback resumes it)      (path also done
//!                                                      if rename ran)
//! ```
//!
//! At every instruction at least one complete, checksummed store exists
//! under `path` or `path.prev` — the invariant the fault-schedule
//! proptest (`store/tests/fault_schedules.rs`) drives schedules against.

use crate::checkpoint::SessionCheckpoint;
use crate::container::{tmp_path, Store};
use crate::error::StoreError;
use sper_stream::ProgressiveSession;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// The `.prev` sibling holding the last-good generation of `path`.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "store".into());
    name.push(".prev");
    path.with_file_name(name)
}

impl Store {
    /// Writes the store to `path`, rotating the existing file to
    /// `path.prev` instead of overwriting it. The new bytes are fsynced
    /// before either rename, so a kill at any instruction leaves at
    /// least one complete generation on disk (see the module docs for
    /// the state machine).
    pub fn write_rotated(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        self.write_tmp(&tmp)?;
        if path.exists() {
            sper_obs::fault::failpoint("store.rename")?;
            std::fs::rename(path, prev_path(path))?;
        }
        sper_obs::fault::failpoint("store.rename")?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// Reads `path`, falling back to `path.prev` (with a Warn event and a
/// `store.prev_fallback` count) when the current generation is missing
/// or corrupt. Returns the store and whether the fallback was taken.
/// When both generations fail, the *primary* error is returned — it
/// names what is wrong with the file the caller asked for.
pub fn read_store_with_fallback(path: &Path) -> Result<(Store, bool), StoreError> {
    read_with_fallback(path, Store::from_store_parse)
}

/// The generic fallback read: `parse` maps a loaded [`Store`] to the
/// caller's structure, so semantic corruption (a section that passes its
/// CRC but decodes to garbage) also triggers the `.prev` fallback.
pub fn read_with_fallback<T>(
    path: &Path,
    parse: impl Fn(&Store) -> Result<T, StoreError>,
) -> Result<(T, bool), StoreError> {
    let primary = Store::read_from_path(path).and_then(|s| parse(&s));
    let primary_err = match primary {
        Ok(value) => return Ok((value, false)),
        Err(e) => e,
    };
    let prev = prev_path(path);
    match Store::read_from_path(&prev).and_then(|s| parse(&s)) {
        Ok(value) => {
            sper_obs::event!(
                sper_obs::Level::Warn,
                "store.prev_fallback",
                path = path.display().to_string(),
                error = primary_err.to_string()
            );
            sper_obs::count!("store.prev_fallback");
            Ok((value, true))
        }
        // Both generations unreadable: the primary's error is the one
        // that names the file the caller asked for.
        Err(_) => Err(primary_err),
    }
}

impl Store {
    /// Identity parse for [`read_with_fallback`] (the store *is* the
    /// structure). Clones the sections; fallback reads are cold paths.
    fn from_store_parse(store: &Store) -> Result<Store, StoreError> {
        let mut out = Store::new();
        for (tag, payload) in store.sections_cloned() {
            out.push(tag, payload);
        }
        Ok(out)
    }
}

/// How many times a transient write failure is retried, and how long to
/// back off between attempts.
///
/// The backoff is *decorrelated jitter*: each delay is drawn uniformly
/// from `[base, 3 × previous]`, capped — the schedule spreads retries
/// out without synchronizing every writer onto the same harmonic. The
/// RNG is a seeded xorshift so a given policy replays the same delays,
/// and the sleeper is injectable so tests execute the whole schedule in
/// microseconds.
#[derive(Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Lower bound of every backoff delay.
    pub base: Duration,
    /// Upper bound of every backoff delay.
    pub cap: Duration,
    seed: u64,
    sleeper: Arc<dyn Fn(Duration) + Send + Sync>,
}

impl std::fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("max_retries", &self.max_retries)
            .field("base", &self.base)
            .field("cap", &self.cap)
            .finish()
    }
}

impl Default for RetryPolicy {
    /// Three retries, 10 ms base, 1 s cap — enough to ride out a busy
    /// filesystem without stalling an epoch noticeably.
    fn default() -> Self {
        Self::new(3, Duration::from_millis(10), Duration::from_secs(1))
    }
}

impl RetryPolicy {
    /// A policy with a real (`thread::sleep`) clock.
    pub fn new(max_retries: u32, base: Duration, cap: Duration) -> Self {
        Self {
            max_retries,
            base,
            cap,
            seed: 0x9E37_79B9_7F4A_7C15,
            sleeper: Arc::new(std::thread::sleep),
        }
    }

    /// No retries: every failure is final.
    pub fn none() -> Self {
        Self::new(0, Duration::ZERO, Duration::ZERO)
    }

    /// Replaces the sleeper (tests inject a recorder; production keeps
    /// `thread::sleep`).
    pub fn with_sleeper(mut self, sleeper: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        self.sleeper = Arc::new(sleeper);
        self
    }

    /// Reseeds the jitter RNG (delays are deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `op` until it succeeds, a non-transient error occurs, or the
    /// retry budget is exhausted. Only [`StoreError::Io`] is considered
    /// transient — corruption and version errors never heal by waiting.
    /// Each retry counts `store.retry` and emits a Warn event naming
    /// `site`.
    pub fn run<T>(
        &self,
        site: &str,
        mut op: impl FnMut(u32) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut rng = self.seed | 1;
        let mut prev = self.base;
        for attempt in 0..=self.max_retries {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) if attempt < self.max_retries && is_transient(&e) => {
                    let delay = next_delay(&mut rng, self.base, self.cap, prev);
                    prev = delay;
                    sper_obs::count!("store.retry");
                    sper_obs::event!(
                        sper_obs::Level::Warn,
                        "store.retry",
                        site = site,
                        attempt = attempt as u64,
                        delay_ms = delay.as_millis() as u64,
                        error = e.to_string()
                    );
                    (self.sleeper)(delay);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt");
    }
}

/// Whether waiting could plausibly fix this error.
fn is_transient(e: &StoreError) -> bool {
    matches!(e, StoreError::Io(_))
}

/// One decorrelated-jitter step: uniform in `[base, 3 × prev]`, capped.
fn next_delay(rng: &mut u64, base: Duration, cap: Duration, prev: Duration) -> Duration {
    let base_ms = base.as_millis() as u64;
    let hi = (prev.as_millis() as u64).saturating_mul(3).max(base_ms);
    let span = hi - base_ms;
    let jitter = if span == 0 {
        0
    } else {
        xorshift(rng) % (span + 1)
    };
    Duration::from_millis(base_ms + jitter).min(cap)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// What to do when a checkpoint exhausts its retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnCheckpointFailure {
    /// Propagate the error: the run stops. The safe default for
    /// operators who would rather restart than lose resumability.
    #[default]
    Abort,
    /// Log + count and keep running: emission does not depend on the
    /// checkpoint, and the last successfully rotated generation is still
    /// on disk to resume from.
    Continue,
}

impl OnCheckpointFailure {
    /// Parses the CLI/env spelling (`abort` | `continue`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(Self::Abort),
            "continue" => Some(Self::Continue),
            _ => None,
        }
    }
}

/// How one checkpoint attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointOutcome {
    /// The checkpoint committed (possibly after retries).
    Saved,
    /// Retries were exhausted and the policy is
    /// [`OnCheckpointFailure::Continue`]: the run goes on, resumable
    /// from the previous good generation.
    FailedContinuing,
}

/// The self-healing checkpoint sink of a streaming run: every save goes
/// through the `stream.checkpoint` failpoint, the [`RetryPolicy`], and
/// last-good rotation, and an exhausted-retries failure is either fatal
/// or absorbed per [`OnCheckpointFailure`].
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    retry: RetryPolicy,
    on_failure: OnCheckpointFailure,
    saves: u64,
    failures: u64,
}

impl CheckpointWriter {
    /// A writer with the default policy (retry ×3, rotation, abort on
    /// exhaustion).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            retry: RetryPolicy::default(),
            on_failure: OnCheckpointFailure::default(),
            saves: 0,
            failures: 0,
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the exhausted-retries policy.
    pub fn with_on_failure(mut self, on_failure: OnCheckpointFailure) -> Self {
        self.on_failure = on_failure;
        self
    }

    /// The checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Checkpoints committed so far.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// Checkpoints abandoned after exhausting retries (only nonzero
    /// under [`OnCheckpointFailure::Continue`]).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Captures and saves `session`'s state.
    pub fn save(&mut self, session: &ProgressiveSession) -> Result<CheckpointOutcome, StoreError> {
        self.save_checkpoint(&SessionCheckpoint::of(session))
    }

    /// Saves an already-captured checkpoint.
    pub fn save_checkpoint(
        &mut self,
        checkpoint: &SessionCheckpoint,
    ) -> Result<CheckpointOutcome, StoreError> {
        let store = checkpoint.to_store();
        let result = self.retry.run("stream.checkpoint", |_| {
            sper_obs::fault::failpoint("stream.checkpoint")?;
            store.write_rotated(&self.path)
        });
        match result {
            Ok(()) => {
                self.saves += 1;
                Ok(CheckpointOutcome::Saved)
            }
            Err(e) => {
                self.failures += 1;
                sper_obs::count!("store.checkpoint_failures");
                sper_obs::event!(
                    sper_obs::Level::Warn,
                    "store.checkpoint_failed",
                    path = self.path.display().to_string(),
                    policy = match self.on_failure {
                        OnCheckpointFailure::Abort => "abort",
                        OnCheckpointFailure::Continue => "continue",
                    },
                    error = e.to_string()
                );
                match self.on_failure {
                    OnCheckpointFailure::Abort => Err(e),
                    OnCheckpointFailure::Continue => Ok(CheckpointOutcome::FailedContinuing),
                }
            }
        }
    }

    /// Reads a checkpoint back, falling back to the rotated `.prev`
    /// generation when the current file is missing or corrupt (any
    /// layer: container framing, CRC, or section decode). Returns the
    /// checkpoint and whether the fallback was taken.
    pub fn resume(path: &Path) -> Result<(SessionCheckpoint, bool), StoreError> {
        read_with_fallback(path, SessionCheckpoint::from_store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sper-healing-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn store_with(byte: u8) -> Store {
        let mut s = Store::new();
        s.push(*b"DATA", vec![byte; 64]);
        s
    }

    fn first_payload_byte(path: &Path) -> u8 {
        let s = Store::read_from_path(path).expect("readable generation");
        s.get(*b"DATA").expect("DATA section")[0]
    }

    #[test]
    fn rotation_keeps_the_previous_generation() {
        let d = dir("rotate");
        let path = d.join("run.sper");
        store_with(1).write_rotated(&path).unwrap();
        assert!(
            !prev_path(&path).exists(),
            "first write has nothing to rotate"
        );
        store_with(2).write_rotated(&path).unwrap();
        assert_eq!(first_payload_byte(&path), 2);
        assert_eq!(first_payload_byte(&prev_path(&path)), 1);
        store_with(3).write_rotated(&path).unwrap();
        assert_eq!(first_payload_byte(&prev_path(&path)), 2, "prev advances");
    }

    #[test]
    fn fallback_reads_prev_when_current_is_corrupt() {
        let d = dir("fallback");
        let path = d.join("run.sper");
        store_with(1).write_rotated(&path).unwrap();
        store_with(2).write_rotated(&path).unwrap();
        // Corrupt the current generation's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (store, fell_back) = read_store_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(store.get(*b"DATA").unwrap()[0], 1);
    }

    #[test]
    fn both_generations_torn_is_a_typed_error_not_a_panic() {
        let d = dir("torn");
        let path = d.join("run.sper");
        store_with(1).write_rotated(&path).unwrap();
        store_with(2).write_rotated(&path).unwrap();
        std::fs::write(&path, b"SPERgarbage").unwrap();
        std::fs::write(prev_path(&path), b"XXXXgarbage").unwrap();
        match read_store_with_fallback(&path) {
            Err(StoreError::Truncated { .. }) => {}
            other => panic!("expected the primary's typed error, got {other:?}"),
        }
    }

    #[test]
    fn retry_rides_out_transient_failures_with_jittered_backoff() {
        let delays: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&delays);
        let policy = RetryPolicy::new(3, Duration::from_millis(10), Duration::from_secs(1))
            .with_sleeper(move |d| sink.lock().unwrap().push(d));
        let attempts = AtomicU64::new(0);
        let out = policy.run("test.site", |_| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(StoreError::Io(std::io::Error::other("transient")))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        let delays = delays.lock().unwrap();
        assert_eq!(delays.len(), 2, "two failures, two backoffs");
        assert!(delays.iter().all(|d| *d >= Duration::from_millis(10)));
        assert!(delays.iter().all(|d| *d <= Duration::from_secs(1)));
    }

    #[test]
    fn retry_is_deterministic_per_seed_and_exhausts_typed() {
        let record = |seed: u64| {
            let delays: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&delays);
            let policy = RetryPolicy::new(4, Duration::from_millis(5), Duration::from_millis(500))
                .with_seed(seed)
                .with_sleeper(move |d| sink.lock().unwrap().push(d));
            let out: Result<(), _> = policy.run("test.site", |_| {
                Err(StoreError::Io(std::io::Error::other("always down")))
            });
            assert!(matches!(out, Err(StoreError::Io(_))));
            let v = delays.lock().unwrap().clone();
            v
        };
        assert_eq!(record(7), record(7), "same seed, same schedule");
        assert_ne!(record(7), record(8), "different seed, different jitter");
    }

    #[test]
    fn non_transient_errors_never_retry() {
        let calls = AtomicU64::new(0);
        let policy = RetryPolicy::default().with_sleeper(|_| panic!("must not sleep"));
        let out: Result<(), _> = policy.run("test.site", |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(StoreError::BadMagic { found: *b"XXXX" })
        });
        assert!(matches!(out, Err(StoreError::BadMagic { .. })));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn injected_rename_fault_fails_plain_write_but_rotation_survives_resume() {
        let d = dir("inject");
        let path = d.join("run.sper");
        store_with(1).write_rotated(&path).unwrap();
        // Kill the write between temp-write and rename: the injected
        // fault fires before the first rename of the rotation.
        let _armed = sper_obs::fault::arm_scoped("store.rename=1*err(io)").unwrap();
        let err = store_with(2).write_rotated(&path).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        // The uncommitted tmp is left behind…
        let tmp = tmp_path(&path);
        assert!(tmp.exists(), "failed commit leaves its tmp behind");
        // …the destination is untouched and still resumable…
        assert_eq!(first_payload_byte(&path), 1);
        // …and that open purged the stale tmp.
        assert!(!tmp.exists(), "open purges the stale tmp");
        let (_, fell_back) = read_store_with_fallback(&path).unwrap();
        assert!(!fell_back);
    }
}
