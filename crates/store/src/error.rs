//! The typed error surface of the persistence layer.
//!
//! Every failure mode of reading an untrusted store file maps to one
//! variant — corrupted input must surface as a [`StoreError`], never as a
//! panic (property-tested in `tests/corruption.rs`).

/// Any failure of writing or reading a `.sper` store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `SPER` magic — not a store file.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The file's format version is not readable by this build.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The file ends before the declared layout does (truncated download,
    /// partial write, …).
    Truncated {
        /// Bytes the layout still required.
        expected: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A section's payload does not hash to its recorded CRC32 — bit rot
    /// or tampering.
    ChecksumMismatch {
        /// The section's tag, as text.
        section: String,
        /// The CRC32 recorded in the file.
        recorded: u32,
        /// The CRC32 of the payload as read.
        computed: u32,
    },
    /// A section the requested structure needs is absent from the file.
    MissingSection {
        /// The absent section's tag, as text.
        section: &'static str,
    },
    /// A section decoded structurally but violates a data invariant
    /// (out-of-range id, non-monotone offsets, duplicate key, …).
    Corrupt {
        /// The section being decoded.
        section: String,
        /// What was violated.
        detail: String,
    },
    /// Two structures that must share one token interner do not — the
    /// snapshot would resolve keys through the wrong vocabulary.
    InternerMismatch {
        /// Which structure disagreed with the snapshot's interner.
        structure: &'static str,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a sper store (magic {:02x?})", found)
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported store format version {found} (this build reads {supported})"
            ),
            StoreError::Truncated {
                expected,
                available,
            } => write!(
                f,
                "truncated store: {expected} more bytes declared, {available} available"
            ),
            StoreError::ChecksumMismatch {
                section,
                recorded,
                computed,
            } => write!(
                f,
                "section {section}: checksum mismatch (recorded {recorded:08x}, computed {computed:08x})"
            ),
            StoreError::MissingSection { section } => {
                write!(f, "store has no {section} section")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "section {section}: {detail}")
            }
            StoreError::InternerMismatch { structure } => write!(
                f,
                "{structure} does not share the snapshot's token interner"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
