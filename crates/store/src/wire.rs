//! Little-endian wire primitives shared by every section codec.
//!
//! An [`Encoder`] appends fixed-width scalars, length-prefixed strings and
//! length-prefixed integer arrays to a growing byte buffer; a [`Decoder`]
//! reads them back with typed errors (never panicking on short or
//! malformed input). All multi-byte values are little-endian; lengths are
//! `u64` so the format does not inherit a 32-bit size ceiling.

use crate::error::StoreError;

/// Hard ceiling on any single decoded array/string length: a corrupt
/// length prefix must fail fast, not trigger a multi-terabyte allocation.
/// The cap is per-element-count; it comfortably exceeds every substrate
/// the workspace can hold in memory.
const MAX_LEN: u64 = 1 << 40;

/// Append-only byte-buffer writer.
#[derive(Debug, Default)]
pub(crate) struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bit-exact float encoding (NaN payloads and signed zeros survive).
    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed `u32` array.
    pub(crate) fn slice_u32(&mut self, values: &[u32]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed `u64` array.
    pub(crate) fn slice_u64(&mut self, values: &[u64]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Cursor over a section payload with typed decode errors.
#[derive(Debug)]
pub(crate) struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
    /// Section name, for error attribution.
    section: &'static str,
}

impl<'a> Decoder<'a> {
    pub(crate) fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Self {
            bytes,
            at: 0,
            section,
        }
    }

    pub(crate) fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section: self.section.to_string(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                self.corrupt(format!(
                    "payload ends early ({} of {n} bytes left at offset {})",
                    self.bytes.len() - self.at,
                    self.at
                ))
            })?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` the host must be able to address (array lengths, counts).
    pub(crate) fn len(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(self.corrupt(format!("implausible length {v}")));
        }
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} exceeds address space")))
    }

    pub(crate) fn str(&mut self) -> Result<String, StoreError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| self.corrupt(format!("invalid UTF-8 string: {e}")))
    }

    pub(crate) fn vec_u32(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.len()?;
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| self.corrupt("length overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    pub(crate) fn vec_u64(&mut self) -> Result<Vec<u64>, StoreError> {
        let n = self.len()?;
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or_else(|| self.corrupt("length overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(self) -> Result<(), StoreError> {
        if self.at != self.bytes.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("héllo\n");
        e.slice_u32(&[1, 2, 3]);
        e.slice_u64(&[u64::MAX, 0]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "héllo\n");
        assert_eq!(d.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.vec_u64().unwrap(), vec![u64::MAX, 0]);
        d.finish().unwrap();
    }

    #[test]
    fn short_input_is_typed_error() {
        let mut d = Decoder::new(&[1, 2], "test");
        assert!(matches!(d.u32(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // an array "length"
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        assert!(matches!(d.vec_u32(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = Decoder::new(&[0], "test");
        assert!(matches!(d.finish(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.u64(2);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut d = Decoder::new(&bytes, "test");
        assert!(matches!(d.str(), Err(StoreError::Corrupt { .. })));
    }
}
