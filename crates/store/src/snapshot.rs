//! Substrate snapshots: one file holding a collection's cold-start
//! structures so a later process loads them instead of re-tokenizing and
//! re-sorting.
//!
//! A snapshot bundles one token interner (the id ⇄ string boundary every
//! keyed structure resolves through) with any subset of: the profile
//! collection, a CSR block collection, a frozen profile index, a
//! materialized blocking graph, and a neighbor list. Loading reproduces
//! each structure's arrays bit for bit — `bench_store` measures the load
//! beating the equivalent rebuild by an order of magnitude.

use crate::container::Store;
use crate::error::StoreError;
use crate::substrates::{
    decode_blocks, decode_graph, decode_interner, decode_neighbor_list, decode_profile_index,
    decode_profiles, encode_blocks, encode_graph, encode_interner, encode_neighbor_list,
    encode_profile_index, encode_profiles, TAG_BLOCKS, TAG_GRAPH, TAG_INTERNER, TAG_NEIGHBOR_LIST,
    TAG_PROFILES, TAG_PROFILE_INDEX,
};
use sper_blocking::{BlockCollection, BlockingGraph, NeighborList, ProfileIndex};
use sper_model::ProfileCollection;
use sper_text::TokenInterner;
use std::path::Path;
use std::sync::Arc;

/// A bundle of columnar substrates sharing one interner.
///
/// ```
/// use sper_blocking::TokenBlocking;
/// use sper_model::ProfileCollectionBuilder;
/// use sper_store::Snapshot;
/// use std::sync::Arc;
///
/// let mut b = ProfileCollectionBuilder::dirty();
/// b.add_profile([("name", "carl white")]);
/// b.add_profile([("name", "karl white")]);
/// let profiles = b.build();
/// let blocks = TokenBlocking::default().build(&profiles);
///
/// let mut snapshot = Snapshot::new(Arc::clone(blocks.interner()));
/// snapshot.profiles = Some(profiles);
/// snapshot.blocks = Some(blocks);
/// let bytes = snapshot.to_store().expect("shared interner").to_bytes();
///
/// let back = Snapshot::from_store(
///     &sper_store::Store::from_bytes(&bytes).expect("valid store"),
/// ).expect("valid snapshot");
/// assert_eq!(back.blocks.as_ref().expect("stored").len(), 1);
/// ```
#[derive(Debug)]
pub struct Snapshot {
    /// The shared token interner (always stored).
    interner: Arc<TokenInterner>,
    /// The profile collection, when bundled.
    pub profiles: Option<ProfileCollection>,
    /// A CSR block collection, when bundled. Its keys must resolve
    /// through [`Self::interner`].
    pub blocks: Option<BlockCollection>,
    /// A frozen profile index, when bundled.
    pub profile_index: Option<ProfileIndex>,
    /// A materialized blocking graph, when bundled.
    pub graph: Option<BlockingGraph>,
    /// A neighbor list, when bundled. When it retains per-position keys,
    /// they must resolve through [`Self::interner`].
    pub neighbor_list: Option<NeighborList>,
}

impl Snapshot {
    /// An empty snapshot around the given interner.
    pub fn new(interner: Arc<TokenInterner>) -> Self {
        Self {
            interner,
            profiles: None,
            blocks: None,
            profile_index: None,
            graph: None,
            neighbor_list: None,
        }
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// Serializes the snapshot into a sectioned store.
    ///
    /// # Errors
    ///
    /// [`StoreError::InternerMismatch`] when the block collection — or a
    /// key-retaining neighbor list — does not share [`Self::interner`]:
    /// its keys would resolve through the wrong vocabulary after a load.
    pub fn to_store(&self) -> Result<Store, StoreError> {
        if let Some(blocks) = &self.blocks {
            if !Arc::ptr_eq(blocks.interner(), &self.interner) {
                return Err(StoreError::InternerMismatch {
                    structure: "block collection",
                });
            }
        }
        if let Some(nl) = &self.neighbor_list {
            if nl.keys().is_some() && !Arc::ptr_eq(nl.interner(), &self.interner) {
                return Err(StoreError::InternerMismatch {
                    structure: "neighbor list",
                });
            }
        }
        let mut store = Store::new();
        store.push(TAG_INTERNER, encode_interner(&self.interner));
        if let Some(profiles) = &self.profiles {
            store.push(TAG_PROFILES, encode_profiles(profiles));
        }
        if let Some(blocks) = &self.blocks {
            store.push(TAG_BLOCKS, encode_blocks(blocks));
        }
        if let Some(index) = &self.profile_index {
            store.push(TAG_PROFILE_INDEX, encode_profile_index(index));
        }
        if let Some(graph) = &self.graph {
            store.push(TAG_GRAPH, encode_graph(graph));
        }
        if let Some(nl) = &self.neighbor_list {
            store.push(TAG_NEIGHBOR_LIST, encode_neighbor_list(nl));
        }
        Ok(store)
    }

    /// Deserializes whichever substrates the store holds.
    pub fn from_store(store: &Store) -> Result<Self, StoreError> {
        let interner = Arc::new(decode_interner(store.require(TAG_INTERNER, "INTR")?)?);
        let profiles = store.get(TAG_PROFILES).map(decode_profiles).transpose()?;
        let blocks = store
            .get(TAG_BLOCKS)
            .map(|b| decode_blocks(b, Arc::clone(&interner)))
            .transpose()?;
        let profile_index = store
            .get(TAG_PROFILE_INDEX)
            .map(decode_profile_index)
            .transpose()?;
        let graph = store.get(TAG_GRAPH).map(decode_graph).transpose()?;
        let neighbor_list = store
            .get(TAG_NEIGHBOR_LIST)
            .map(|b| decode_neighbor_list(b, Arc::clone(&interner)))
            .transpose()?;
        Ok(Self {
            interner,
            profiles,
            blocks,
            profile_index,
            graph,
            neighbor_list,
        })
    }

    /// Writes the snapshot to a file (atomically, via temp + rename).
    pub fn write_to_path(&self, path: &Path) -> Result<(), StoreError> {
        let _span = sper_obs::span!("store.snapshot_write");
        self.to_store()?.write_to_path(path)
    }

    /// Reads a snapshot file.
    pub fn read_from_path(path: &Path) -> Result<Self, StoreError> {
        let _span = sper_obs::span!("store.snapshot_read");
        Self::from_store(&Store::read_from_path(path)?)
    }

    /// The tags present in this snapshot, for reporting.
    pub fn describe(&self) -> Vec<&'static str> {
        let mut out = vec!["interner"];
        if self.profiles.is_some() {
            out.push("profiles");
        }
        if self.blocks.is_some() {
            out.push("blocks");
        }
        if self.profile_index.is_some() {
            out.push("profile-index");
        }
        if self.graph.is_some() {
            out.push("graph");
        }
        if self.neighbor_list.is_some() {
            out.push("neighbor-list");
        }
        out
    }
}
