//! The sectioned file container: magic, format version, and a sequence of
//! independently checksummed sections.
//!
//! ```text
//! file    = header section*
//! header  = "SPER" version:u32 section_count:u32          (12 bytes)
//! section = tag:[u8;4] payload_len:u64 crc32:u32 payload  (16-byte prologue)
//! ```
//!
//! All integers little-endian. Each section's CRC-32 covers its payload
//! only, so one flipped bit is attributed to the section it corrupts.
//! Readers gate on the supported version range
//! ([`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]): the format evolves by
//! bumping [`FORMAT_VERSION`] and teaching the new reader to migrate old
//! layouts explicitly — silent best-effort parsing of unknown versions is
//! how corruption stops being detectable. Version 2 added the `TOMB`
//! tombstone section to checkpoints; version-1 files (no mutations
//! recorded) still load.

use crate::crc32::crc32;
use crate::error::StoreError;

/// [`crc32`] with its wall time recorded into the `store.crc_us`
/// histogram when metrics are enabled — zero extra work otherwise.
fn crc32_timed(payload: &[u8]) -> u32 {
    if sper_obs::metrics::enabled() {
        let t = std::time::Instant::now();
        let c = crc32(payload);
        sper_obs::observe!("store.crc_us", t.elapsed().as_secs_f64() * 1e6);
        c
    } else {
        crc32(payload)
    }
}

/// The four-byte file magic.
pub const MAGIC: [u8; 4] = *b"SPER";

/// The store format version this build writes.
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version this build still reads. Version-1 files
/// simply lack the `TOMB` checkpoint section (they predate the mutation
/// model); every other layout is unchanged.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// A section tag: four ASCII bytes naming the payload's codec.
pub type Tag = [u8; 4];

/// Renders a tag for error messages (`INTR`, or hex for non-ASCII).
pub(crate) fn tag_name(tag: Tag) -> String {
    if tag.iter().all(|b| b.is_ascii_graphic()) {
        String::from_utf8_lossy(&tag).into_owned()
    } else {
        format!("{tag:02x?}")
    }
}

/// An in-memory store: an ordered list of `(tag, payload)` sections.
///
/// This is the transport layer only — it knows nothing about substrates.
/// The codecs in [`crate::substrates`] fill and read sections; [`crate::Snapshot`]
/// and [`crate::SessionCheckpoint`] define which sections make up which
/// on-disk structure.
#[derive(Debug, Default)]
pub struct Store {
    sections: Vec<(Tag, Vec<u8>)>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Order is preserved; duplicate tags are allowed
    /// by the container (readers take the first).
    pub fn push(&mut self, tag: Tag, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// The payload of the first section with `tag`, if present.
    pub fn get(&self, tag: Tag) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
    }

    /// Like [`get`](Self::get) but a missing section is a typed error.
    pub(crate) fn require(&self, tag: Tag, name: &'static str) -> Result<&[u8], StoreError> {
        self.get(tag)
            .ok_or(StoreError::MissingSection { section: name })
    }

    /// The section tags, in file order.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.sections.iter().map(|(t, _)| *t)
    }

    /// The sections as owned `(tag, payload)` pairs, in file order.
    pub(crate) fn sections_cloned(&self) -> Vec<(Tag, Vec<u8>)> {
        self.sections.clone()
    }

    /// Serializes the store to its byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let total: usize = 12
            + self
                .sections
                .iter()
                .map(|(_, p)| 16 + p.len())
                .sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32_timed(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses a store from bytes, verifying magic, version and every
    /// section checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        // Checked arithmetic throughout: a crafted length near
        // `u64::MAX` must be a typed error, never an overflow (wrap in
        // release, panic in debug).
        let need = |at: usize, n: usize| -> Result<(), StoreError> {
            match at.checked_add(n) {
                Some(end) if end <= bytes.len() => Ok(()),
                _ => Err(StoreError::Truncated {
                    expected: n,
                    available: bytes.len().saturating_sub(at),
                }),
            }
        };
        need(0, 12)?;
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let mut at = 12;
        let mut sections = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            need(at, 16)?;
            let tag: Tag = bytes[at..at + 4].try_into().expect("4 bytes");
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let recorded = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4 bytes"));
            let len = usize::try_from(len).map_err(|_| StoreError::Truncated {
                expected: usize::MAX,
                available: bytes.len() - at - 16,
            })?;
            at += 16;
            need(at, len)?;
            let payload = &bytes[at..at + len];
            let computed = crc32_timed(payload);
            if computed != recorded {
                return Err(StoreError::ChecksumMismatch {
                    section: tag_name(tag),
                    recorded,
                    computed,
                });
            }
            sections.push((tag, payload.to_vec()));
            at += len;
        }
        if at != bytes.len() {
            return Err(StoreError::Corrupt {
                section: "container".into(),
                detail: format!("{} trailing bytes after last section", bytes.len() - at),
            });
        }
        Ok(Self { sections })
    }

    /// Writes the store to a file. The write goes through a sibling
    /// temporary file that is fsynced before the rename, so neither a
    /// crash mid-write nor a power loss right after the rename leaves a
    /// half-written store at `path` — the previous file survives intact
    /// until the new bytes are durable.
    ///
    /// Three failpoints cover the syscall boundaries
    /// (`store.write.section`, `store.fsync`, `store.rename` — see
    /// [`sper_obs::fault`]); an injected or real failure before the
    /// rename can leave a torn `.tmp` sibling, which the next
    /// [`read_from_path`](Self::read_from_path) purges.
    pub fn write_to_path(&self, path: &std::path::Path) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        self.write_tmp(&tmp)?;
        sper_obs::fault::failpoint("store.rename")?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Writes the serialized store to `tmp` (create, per-section writes,
    /// fsync) without the commit rename — shared by the plain and
    /// last-good-rotating write paths.
    pub(crate) fn write_tmp(&self, tmp: &std::path::Path) -> Result<(), StoreError> {
        use std::io::Write as _;
        let mut span = sper_obs::span!("store.write", sections = self.sections.len());
        let bytes = self.to_bytes();
        span.record("bytes", bytes.len());
        let mut file = std::fs::File::create(tmp)?;
        // Write the header, then each section as its own syscall-shaped
        // chunk so the `store.write.section` failpoint can tear the file
        // at a realistic boundary (`partial(n)`: n bytes of the section
        // reach the disk, then the write fails).
        let mut at = 12.min(bytes.len());
        file.write_all(&bytes[..at])?;
        for (_, payload) in &self.sections {
            let chunk = &bytes[at..at + 16 + payload.len()];
            match sper_obs::fault::evaluate("store.write.section") {
                None => {}
                Some(sper_obs::InjectedFault::Err(e)) => return Err(e.into()),
                Some(sper_obs::InjectedFault::Partial(n)) => {
                    file.write_all(&chunk[..n.min(chunk.len())])?;
                    let _ = file.sync_all();
                    return Err(std::io::Error::other(
                        "injected partial write at store.write.section",
                    )
                    .into());
                }
            }
            file.write_all(chunk)?;
            at += chunk.len();
        }
        sper_obs::fault::failpoint("store.fsync")?;
        file.sync_all()?;
        Ok(())
    }

    /// Reads and parses a store file. Opening a store directory is when
    /// garbage from killed writers gets collected: a stale `.tmp`
    /// sibling (a torn write that never reached its commit rename) is
    /// deleted with an Info event before the read.
    pub fn read_from_path(path: &std::path::Path) -> Result<Self, StoreError> {
        let _span = sper_obs::span!("store.read");
        purge_stale_tmp(path);
        sper_obs::fault::failpoint("store.read")?;
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// The sibling temporary path a write to `path` goes through. Derived by
/// appending (not replacing an extension): sibling outputs like `run.v1`
/// and `run.v2` must not collide on one temp path.
pub fn tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "store".into());
    tmp_name.push(".tmp");
    path.with_file_name(tmp_name)
}

/// Deletes a stale `.tmp` sibling left by a killed writer, if present.
/// Returns whether one was purged.
pub fn purge_stale_tmp(path: &std::path::Path) -> bool {
    let tmp = tmp_path(path);
    if !tmp.exists() {
        return false;
    }
    match std::fs::remove_file(&tmp) {
        Ok(()) => {
            sper_obs::event!(
                sper_obs::Level::Info,
                "store.purged_tmp",
                path = tmp.display().to_string()
            );
            sper_obs::count!("store.purged_tmp");
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_round_trips() {
        let bytes = Store::new().to_bytes();
        assert_eq!(bytes.len(), 12);
        let back = Store::from_bytes(&bytes).unwrap();
        assert_eq!(back.tags().count(), 0);
    }

    #[test]
    fn sections_round_trip_in_order() {
        let mut s = Store::new();
        s.push(*b"AAAA", vec![1, 2, 3]);
        s.push(*b"BBBB", vec![]);
        s.push(*b"AAAA", vec![9]);
        let back = Store::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(
            back.tags().collect::<Vec<_>>(),
            vec![*b"AAAA", *b"BBBB", *b"AAAA"]
        );
        assert_eq!(back.get(*b"AAAA"), Some(&[1u8, 2, 3][..]), "first wins");
        assert_eq!(back.get(*b"BBBB"), Some(&[][..]));
        assert_eq!(back.get(*b"CCCC"), None);
    }

    #[test]
    fn bad_magic() {
        let mut bytes = Store::new().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Store::from_bytes(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version() {
        let mut bytes = Store::new().to_bytes();
        bytes[4] = 99;
        match Store::from_bytes(&bytes) {
            Err(StoreError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn previous_format_version_still_parses() {
        let mut s = Store::new();
        s.push(*b"DATA", vec![1, 2, 3]);
        let mut bytes = s.to_bytes();
        bytes[4..8].copy_from_slice(&MIN_FORMAT_VERSION.to_le_bytes());
        let back = Store::from_bytes(&bytes).unwrap();
        assert_eq!(back.get(*b"DATA"), Some(&[1u8, 2, 3][..]));
        // …but version 0 predates the format and is rejected.
        bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Store::from_bytes(&bytes),
            Err(StoreError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let mut s = Store::new();
        s.push(*b"DATA", vec![5; 32]);
        let bytes = s.to_bytes();
        for cut in 0..bytes.len() {
            let err = Store::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn crafted_huge_section_length_is_typed_not_a_panic() {
        // Regression: a section header declaring a payload length near
        // `u64::MAX` used to overflow the bounds arithmetic and panic on
        // the payload slice; it must be a typed Truncated error.
        for len in [u64::MAX, u64::MAX - 15, (usize::MAX as u64), 1 << 60] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(b"DATA");
            bytes.extend_from_slice(&len.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 8]); // a few payload bytes
            assert!(
                matches!(Store::from_bytes(&bytes), Err(StoreError::Truncated { .. })),
                "len {len:#x}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_checksum_mismatch() {
        let mut s = Store::new();
        s.push(*b"DATA", (0..64).collect());
        let clean = s.to_bytes();
        let payload_start = 12 + 16;
        for i in payload_start..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            assert!(
                matches!(
                    Store::from_bytes(&bytes),
                    Err(StoreError::ChecksumMismatch { .. })
                ),
                "flip at byte {i} undetected"
            );
        }
    }
}
