//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) — the per-section
//! integrity check of the store format.
//!
//! Implemented as the classic one-table byte-at-a-time loop; the table is
//! computed at compile time. Throughput is far beyond what snapshot IO
//! needs, with zero dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = b"sper store section payload".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at byte {i} undetected");
            data[i] ^= 0x01;
        }
    }
}
