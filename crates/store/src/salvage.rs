//! Salvage: recover what a corrupted `.sper` file still proves intact.
//!
//! The strict reader ([`Store::from_bytes`]) rejects a file on the first
//! defect — right for routine loads, wrong when the file in hand is the
//! only copy. Salvage walks the same sectioned layout but keeps going:
//! every section whose CRC-32 still validates is recovered; everything
//! else lands in a typed [`SalvageReport`] naming what was lost and why.
//!
//! Semantics worth being honest about (also in DESIGN.md):
//!
//! * Damage inside a section's *payload* costs exactly that section —
//!   the per-section CRC attributes it, and the declared length still
//!   frames the next section.
//! * Damage to a section's *length field* costs everything after it:
//!   the format has no resync markers, so once framing is wrong, later
//!   prologues are noise. The report says how many sections became
//!   unreachable.
//! * A header defect (magic, version) is unrecoverable: without a
//!   trusted header there is no layout to walk, and salvage returns the
//!   same typed error the strict reader would.

use crate::container::{tag_name, Store, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::snapshot::Snapshot;
use crate::substrates::{
    decode_blocks, decode_graph, decode_interner, decode_neighbor_list, decode_profile_index,
    decode_profiles, TAG_BLOCKS, TAG_GRAPH, TAG_INTERNER, TAG_NEIGHBOR_LIST, TAG_PROFILES,
    TAG_PROFILE_INDEX,
};
use sper_text::TokenInterner;
use std::sync::Arc;

/// One section salvage could not bring back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostSection {
    /// The section's tag as text (`INTR`, …), or `<tail>` for the
    /// unreachable remainder after a framing loss.
    pub section: String,
    /// Why it was lost.
    pub reason: String,
}

/// What [`Store::salvage`] / [`Snapshot::salvage`] recovered and lost.
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Sections the header declared.
    pub declared: usize,
    /// Tags recovered intact (CRC-validated, and — for
    /// [`Snapshot::salvage`] — decoded), in file order.
    pub recovered: Vec<String>,
    /// Sections lost, with reasons, in file order.
    pub lost: Vec<LostSection>,
    /// Bytes past the last declared section (appended garbage).
    pub trailing_bytes: usize,
}

impl SalvageReport {
    /// True when nothing was lost — the file was intact after all.
    pub fn is_clean(&self) -> bool {
        self.lost.is_empty() && self.trailing_bytes == 0
    }

    /// A one-line human summary (`recovered 3/5 sections, lost INTR
    /// (checksum mismatch …), 12 trailing bytes`).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "recovered {}/{} sections",
            self.recovered.len(),
            self.declared
        );
        for lost in &self.lost {
            out.push_str(&format!(", lost {} ({})", lost.section, lost.reason));
        }
        if self.trailing_bytes > 0 {
            out.push_str(&format!(", {} trailing bytes", self.trailing_bytes));
        }
        out
    }
}

impl Store {
    /// Walks a possibly-corrupted store image, recovering every section
    /// whose CRC still validates.
    ///
    /// # Errors
    ///
    /// Only header defects are fatal ([`StoreError::Truncated`] under 12
    /// bytes, [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`]):
    /// with no trusted header there is no layout to walk.
    pub fn salvage(bytes: &[u8]) -> Result<(Store, SalvageReport), StoreError> {
        if bytes.len() < 12 {
            return Err(StoreError::Truncated {
                expected: 12,
                available: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let declared = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let mut report = SalvageReport {
            declared,
            ..SalvageReport::default()
        };
        let mut store = Store::new();
        let mut at = 12usize;
        for i in 0..declared {
            // A framing loss (truncated prologue, or a length field
            // pointing past EOF) ends the walk: without resync markers
            // every later byte is unframed noise.
            let unreachable_tail = |report: &mut SalvageReport, reason: String| {
                report.lost.push(LostSection {
                    section: format!("<section {i}>"),
                    reason,
                });
                let after = declared - i - 1;
                if after > 0 {
                    report.lost.push(LostSection {
                        section: "<tail>".into(),
                        reason: format!("{after} later sections unreachable after framing loss"),
                    });
                }
            };
            if bytes.len() - at < 16 {
                unreachable_tail(
                    &mut report,
                    format!("prologue truncated ({} of 16 bytes)", bytes.len() - at),
                );
                return Ok((store, report));
            }
            let tag: crate::container::Tag = bytes[at..at + 4].try_into().expect("4 bytes");
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let recorded = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4 bytes"));
            let name = tag_name(tag);
            let payload_at = at + 16;
            let in_bounds = usize::try_from(len)
                .ok()
                .and_then(|len| payload_at.checked_add(len))
                .filter(|end| *end <= bytes.len());
            let Some(end) = in_bounds else {
                unreachable_tail(
                    &mut report,
                    format!(
                        "length field of {name} declares {len} bytes, {} available",
                        bytes.len() - payload_at
                    ),
                );
                return Ok((store, report));
            };
            let payload = &bytes[payload_at..end];
            let computed = crc32(payload);
            if computed == recorded {
                report.recovered.push(name);
                store.push(tag, payload.to_vec());
            } else {
                report.lost.push(LostSection {
                    section: name,
                    reason: format!(
                        "checksum mismatch (recorded {recorded:08x}, computed {computed:08x})"
                    ),
                });
            }
            at = end;
        }
        report.trailing_bytes = bytes.len() - at;
        Ok((store, report))
    }
}

impl Snapshot {
    /// Salvages a snapshot from a possibly-corrupted store image:
    /// container-level salvage first, then each recovered section is
    /// decoded independently — a section that passes its CRC but decodes
    /// to garbage (a defect older than the checksum) moves to the lost
    /// list instead of failing the whole load.
    ///
    /// When the interner section itself is lost, every keyed structure
    /// that resolves through it (blocks, neighbor list) is lost too, and
    /// the snapshot is rebuilt around an empty interner.
    ///
    /// # Errors
    ///
    /// Header defects only, exactly as [`Store::salvage`].
    pub fn salvage(bytes: &[u8]) -> Result<(Snapshot, SalvageReport), StoreError> {
        let (store, mut report) = Store::salvage(bytes)?;
        // Demote a recovered-but-undecodable section to lost.
        let demote = |report: &mut SalvageReport, name: &str, err: &StoreError| {
            report.recovered.retain(|r| r != name);
            report.lost.push(LostSection {
                section: name.to_string(),
                reason: format!("decoded to garbage: {err}"),
            });
        };
        let interner = match store.get(TAG_INTERNER) {
            None => None,
            Some(payload) => match decode_interner(payload) {
                Ok(interner) => Some(Arc::new(interner)),
                Err(e) => {
                    demote(&mut report, "INTR", &e);
                    None
                }
            },
        };
        let keyed = |report: &mut SalvageReport,
                     tag: crate::container::Tag,
                     name: &str|
         -> Option<Vec<u8>> {
            let payload = store.get(tag)?.to_vec();
            if interner.is_none() {
                report.recovered.retain(|r| r != name);
                report.lost.push(LostSection {
                    section: name.to_string(),
                    reason: "requires the lost interner to resolve its keys".into(),
                });
                return None;
            }
            Some(payload)
        };
        let blocks_payload = keyed(&mut report, TAG_BLOCKS, "BLKS");
        let nl_payload = keyed(&mut report, TAG_NEIGHBOR_LIST, "NBRL");
        let interner_arc = interner.clone().unwrap_or_else(TokenInterner::shared);
        let mut snapshot = Snapshot::new(Arc::clone(&interner_arc));
        if let Some(payload) = store.get(TAG_PROFILES) {
            match decode_profiles(payload) {
                Ok(p) => snapshot.profiles = Some(p),
                Err(e) => demote(&mut report, "PROF", &e),
            }
        }
        if let Some(payload) = blocks_payload {
            match decode_blocks(&payload, Arc::clone(&interner_arc)) {
                Ok(b) => snapshot.blocks = Some(b),
                Err(e) => demote(&mut report, "BLKS", &e),
            }
        }
        if let Some(payload) = store.get(TAG_PROFILE_INDEX) {
            match decode_profile_index(payload) {
                Ok(i) => snapshot.profile_index = Some(i),
                Err(e) => demote(&mut report, "PIDX", &e),
            }
        }
        if let Some(payload) = store.get(TAG_GRAPH) {
            match decode_graph(payload) {
                Ok(g) => snapshot.graph = Some(g),
                Err(e) => demote(&mut report, "GRPH", &e),
            }
        }
        if let Some(payload) = nl_payload {
            match decode_neighbor_list(&payload, Arc::clone(&interner_arc)) {
                Ok(nl) => snapshot.neighbor_list = Some(nl),
                Err(e) => demote(&mut report, "NBRL", &e),
            }
        }
        Ok((snapshot, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_section_bytes() -> Vec<u8> {
        let mut s = Store::new();
        s.push(*b"AAAA", vec![1; 32]);
        s.push(*b"BBBB", vec![2; 32]);
        s.push(*b"CCCC", vec![3; 32]);
        s.to_bytes()
    }

    #[test]
    fn intact_file_salvages_clean() {
        let (store, report) = Store::salvage(&three_section_bytes()).unwrap();
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.recovered, vec!["AAAA", "BBBB", "CCCC"]);
        assert_eq!(store.tags().count(), 3);
    }

    #[test]
    fn payload_corruption_costs_exactly_that_section() {
        let mut bytes = three_section_bytes();
        // Flip a byte inside BBBB's payload: 12 header + (16+32) AAAA +
        // 16 prologue puts BBBB's payload at 76.
        bytes[76 + 5] ^= 0xFF;
        let (store, report) = Store::salvage(&bytes).unwrap();
        assert_eq!(report.recovered, vec!["AAAA", "CCCC"]);
        assert_eq!(report.lost.len(), 1);
        assert_eq!(report.lost[0].section, "BBBB");
        assert!(report.lost[0].reason.contains("checksum"), "{report:?}");
        assert!(store.get(*b"BBBB").is_none());
        assert_eq!(store.get(*b"CCCC"), Some(&[3u8; 32][..]));
    }

    #[test]
    fn length_field_corruption_loses_the_tail() {
        let mut bytes = three_section_bytes();
        // Blow up BBBB's length field (prologue at 60, len at 64).
        bytes[64..72].copy_from_slice(&u64::MAX.to_le_bytes());
        let (store, report) = Store::salvage(&bytes).unwrap();
        assert_eq!(report.recovered, vec!["AAAA"]);
        assert_eq!(report.lost.len(), 2, "{report:?}");
        assert!(report.lost[0].reason.contains("length field"), "{report:?}");
        assert!(report.lost[1].section == "<tail>", "{report:?}");
        assert_eq!(store.tags().count(), 1);
    }

    #[test]
    fn truncation_recovers_the_prefix() {
        let bytes = three_section_bytes();
        // Cut mid-CCCC-payload: AAAA and BBBB survive.
        let (store, report) = Store::salvage(&bytes[..bytes.len() - 10]).unwrap();
        assert_eq!(report.recovered, vec!["AAAA", "BBBB"]);
        assert!(!report.is_clean());
        assert_eq!(store.tags().count(), 2);
    }

    #[test]
    fn header_defects_stay_typed_errors() {
        let mut bad_magic = three_section_bytes();
        bad_magic[0] = b'X';
        assert!(matches!(
            Store::salvage(&bad_magic),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bad_version = three_section_bytes();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Store::salvage(&bad_version),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            Store::salvage(&bad_version[..5]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_reported_not_fatal() {
        let mut bytes = three_section_bytes();
        bytes.extend_from_slice(b"junkjunk");
        let (_, report) = Store::salvage(&bytes).unwrap();
        assert_eq!(report.trailing_bytes, 8);
        assert_eq!(report.recovered.len(), 3);
    }
}
