//! Round-trip property tests: every substrate codec reproduces the exact
//! arrays it serialized — bit-identical, for arbitrary collections and
//! both ER kinds — and whole snapshot files survive the byte layer.

use proptest::prelude::*;
use sper_blocking::{
    BlockId, BlockingGraph, NeighborList, ProfileIndex, TokenBlocking, WeightingScheme,
};
use sper_model::{ErKind, ProfileCollection, ProfileCollectionBuilder, ProfileId};
use sper_store::{substrates, Snapshot, Store};
use sper_stream::IncrementalTokenBlocking;
use std::sync::Arc;

fn dirty_collection(values: Vec<String>) -> ProfileCollection {
    let mut b = ProfileCollectionBuilder::dirty();
    for v in values {
        b.add_profile([("t", v)]);
    }
    b.build()
}

fn clean_clean_collection(first: Vec<String>, second: Vec<String>) -> ProfileCollection {
    let mut b = ProfileCollectionBuilder::clean_clean();
    for v in first {
        b.add_profile([("t", v)]);
    }
    b.start_second_source();
    for v in second {
        b.add_profile([("t", v)]);
    }
    b.build()
}

/// Arbitrary collection of either ER kind: the leading flag picks Dirty
/// or Clean-clean (the vendored proptest has no `prop_oneof!`).
fn arbitrary_collection() -> impl Strategy<Value = ProfileCollection> {
    (
        0u8..2,
        proptest::collection::vec("[a-e ]{1,8}", 1..12),
        proptest::collection::vec("[a-e ]{1,8}", 1..8),
    )
        .prop_map(|(kind, a, b)| {
            if kind == 0 {
                dirty_collection(a)
            } else {
                clean_clean_collection(a, b)
            }
        })
}

fn assert_profiles_equal(a: &ProfileCollection, b: &ProfileCollection) {
    assert_eq!(a.kind(), b.kind());
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len_first(), b.len_first());
    for (pa, pb) in a.iter().zip(b.iter()) {
        assert_eq!(pa, pb);
    }
}

proptest! {
    /// The interner vocabulary round-trips with every id preserved.
    #[test]
    fn interner_round_trips(coll in arbitrary_collection()) {
        let blocks = TokenBlocking::default().build(&coll);
        let interner = blocks.interner();
        let back = substrates::decode_interner(&substrates::encode_interner(interner)).unwrap();
        prop_assert_eq!(back.len(), interner.len());
        for (i, s) in interner.strings().iter().enumerate() {
            prop_assert_eq!(&*back.resolve(sper_text::TokenId(i as u32)), &**s);
        }
    }

    /// Profile collections round-trip attribute for attribute, with the
    /// source partition preserved.
    #[test]
    fn profiles_round_trip(coll in arbitrary_collection()) {
        let back = substrates::decode_profiles(&substrates::encode_profiles(&coll)).unwrap();
        assert_profiles_equal(&coll, &back);
    }

    /// Block collections round-trip to bit-identical CSR columns.
    #[test]
    fn blocks_round_trip(coll in arbitrary_collection()) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let bytes = substrates::encode_blocks(&blocks);
        let back = substrates::decode_blocks(&bytes, Arc::clone(blocks.interner())).unwrap();
        let (a, b) = (blocks.raw_parts(), back.raw_parts());
        prop_assert_eq!(a.kind, b.kind);
        prop_assert_eq!(a.n_profiles, b.n_profiles);
        prop_assert_eq!(a.keys, b.keys);
        prop_assert_eq!(a.offsets, b.offsets);
        prop_assert_eq!(a.members, b.members);
        prop_assert_eq!(a.n_firsts, b.n_firsts);
    }

    /// Frozen profile indexes round-trip to bit-identical CSR arrays.
    #[test]
    fn profile_index_round_trips(coll in arbitrary_collection()) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let bytes = substrates::encode_profile_index(&index);
        let back = substrates::decode_profile_index(&bytes).unwrap();
        prop_assert_eq!(back.total_blocks(), index.total_blocks());
        let (ao, ab, ac) = index.raw_parts();
        let (bo, bb, bc) = back.raw_parts();
        prop_assert_eq!(ao, bo);
        prop_assert_eq!(ab, bb);
        prop_assert_eq!(ac, bc);
    }

    /// Growable (incremental) profile indexes round-trip list for list.
    #[test]
    fn incremental_index_round_trips(coll in arbitrary_collection()) {
        let inc = IncrementalTokenBlocking::from_collection(&coll);
        let index = inc.profile_index();
        let bytes = substrates::encode_incremental_index(index);
        let back = substrates::decode_incremental_index(&bytes).unwrap();
        prop_assert_eq!(back.total_blocks(), index.total_blocks());
        prop_assert_eq!(back.n_profiles(), index.n_profiles());
        prop_assert_eq!(back.block_lists(), index.block_lists());
        for i in 0..index.total_blocks() {
            prop_assert_eq!(back.cardinality(BlockId(i as u32)), index.cardinality(BlockId(i as u32)));
        }
    }

    /// Blocking graphs round-trip edge for edge (weights bit-exact) with
    /// the CSR adjacency rebuilt identically.
    #[test]
    fn graph_round_trips(coll in arbitrary_collection()) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
        let bytes = substrates::encode_graph(&graph);
        let back = substrates::decode_graph(&bytes).unwrap();
        prop_assert_eq!(back.num_nodes(), graph.num_nodes());
        prop_assert_eq!(back.num_edges(), graph.num_edges());
        for ((pa, wa), (pb, wb)) in graph.edges().zip(back.edges()) {
            prop_assert_eq!(pa, pb);
            prop_assert_eq!(wa.to_bits(), wb.to_bits());
        }
        for p in 0..graph.num_nodes() as u32 {
            let p = ProfileId(p);
            prop_assert_eq!(back.degree(p), graph.degree(p));
            prop_assert!(back.neighbors(p).eq(graph.neighbors(p)));
        }
    }

    /// Neighbor lists round-trip placement for placement, including the
    /// optional key column, with the position index rebuilt identically.
    #[test]
    fn neighbor_list_round_trips(coll in arbitrary_collection(), keep_keys in 0u8..2, seed in 0u64..16) {
        let nl = if keep_keys == 1 {
            NeighborList::build_with_keys(&coll, seed)
        } else {
            NeighborList::build(&coll, seed)
        };
        let bytes = substrates::encode_neighbor_list(&nl);
        let back = substrates::decode_neighbor_list(&bytes, Arc::clone(nl.interner())).unwrap();
        prop_assert_eq!(back.as_slice(), nl.as_slice());
        prop_assert_eq!(back.keys(), nl.keys());
        for p in coll.iter() {
            prop_assert_eq!(
                back.position_index().positions_of(p.id),
                nl.position_index().positions_of(p.id)
            );
        }
    }

    /// A full snapshot survives the byte layer: store → bytes → store →
    /// snapshot reproduces every bundled substrate.
    #[test]
    fn snapshot_file_round_trips(coll in arbitrary_collection(), seed in 0u64..8) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let interner = Arc::clone(blocks.interner());
        let index = ProfileIndex::build(&blocks);
        let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
        let nl = NeighborList::build(&coll, seed);

        let mut snapshot = Snapshot::new(Arc::clone(&interner));
        snapshot.profiles = Some(coll.clone());
        snapshot.blocks = Some(blocks.clone());
        snapshot.profile_index = Some(index.clone());
        snapshot.graph = Some(graph.clone());
        snapshot.neighbor_list = Some(nl.clone());

        let bytes = snapshot.to_store().unwrap().to_bytes();
        let back = Snapshot::from_store(&Store::from_bytes(&bytes).unwrap()).unwrap();

        assert_profiles_equal(&coll, back.profiles.as_ref().unwrap());
        let (a, b) = (blocks.raw_parts(), back.blocks.as_ref().unwrap().raw_parts());
        prop_assert_eq!(a.keys, b.keys);
        prop_assert_eq!(a.offsets, b.offsets);
        prop_assert_eq!(a.members, b.members);
        prop_assert_eq!(a.n_firsts, b.n_firsts);
        prop_assert_eq!(
            back.profile_index.as_ref().unwrap().raw_parts().1,
            index.raw_parts().1
        );
        prop_assert_eq!(back.graph.as_ref().unwrap().num_edges(), graph.num_edges());
        prop_assert_eq!(back.neighbor_list.as_ref().unwrap().as_slice(), nl.as_slice());
        // Keys of the reloaded blocks resolve through the reloaded
        // interner to the same strings.
        for (ka, kb) in a.keys.iter().zip(b.keys.iter()) {
            prop_assert_eq!(&*interner.resolve(*ka), &*back.interner().resolve(*kb));
        }
    }
}

/// A snapshot refuses to serialize a block collection keyed by a foreign
/// interner — the keys would resolve through the wrong vocabulary.
#[test]
fn snapshot_rejects_foreign_interner() {
    let coll = dirty_collection(vec!["a b".into(), "b c".into()]);
    let blocks = TokenBlocking::default().build(&coll);
    let mut snapshot = Snapshot::new(sper_text::TokenInterner::shared());
    snapshot.blocks = Some(blocks);
    assert!(matches!(
        snapshot.to_store(),
        Err(sper_store::StoreError::InternerMismatch { .. })
    ));
}

/// Dirty and Clean-clean kinds round-trip through the profile codec,
/// including an empty second source.
#[test]
fn clean_clean_empty_second_source_round_trips() {
    let mut b = ProfileCollectionBuilder::clean_clean();
    b.add_profile([("n", "solo")]);
    b.start_second_source();
    let coll = b.build();
    assert_eq!(coll.kind(), ErKind::CleanClean);
    let back = substrates::decode_profiles(&substrates::encode_profiles(&coll)).unwrap();
    assert_eq!(back.kind(), ErKind::CleanClean);
    assert_eq!(back.len_first(), 1);
    assert_eq!(back.len_second(), 0);
}

/// The empty collection's substrates all round-trip.
#[test]
fn empty_collection_round_trips() {
    let coll = ProfileCollectionBuilder::dirty().build();
    let blocks = TokenBlocking::default().build(&coll);
    let bytes = substrates::encode_blocks(&blocks);
    let back = substrates::decode_blocks(&bytes, Arc::clone(blocks.interner())).unwrap();
    assert!(back.is_empty());
    let nl = NeighborList::build(&coll, 0);
    let back = substrates::decode_neighbor_list(
        &substrates::encode_neighbor_list(&nl),
        Arc::clone(nl.interner()),
    )
    .unwrap();
    assert!(back.is_empty());
}
