//! Golden-file compatibility: a committed `.sper` fixture written by the
//! format's first release must keep loading, bit-identically, on every
//! build — the regression gate for accidental format drift. CI runs this
//! on every push.
//!
//! The fixture bundles a snapshot *and* a session checkpoint in one store
//! (their section tags are disjoint), built from a fixed toy collection.
//! If the format ever needs to change, bump `FORMAT_VERSION`, teach the
//! reader the migration, and regenerate with:
//!
//! ```text
//! cargo test -p sper-store --test golden -- --ignored regenerate
//! ```

use sper_blocking::{BlockingGraph, NeighborList, ProfileIndex, TokenBlocking, WeightingScheme};
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, ProfileCollection, ProfileCollectionBuilder};
use sper_store::{SessionCheckpoint, Snapshot, Store};
use sper_stream::{ProgressiveSession, SessionConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("golden-v1.sper")
}

/// The fixed collection the fixture is built from. Changing this breaks
/// the fixture by construction — regenerate if you must, and say why in
/// the commit.
fn golden_profiles() -> ProfileCollection {
    let mut b = ProfileCollectionBuilder::dirty();
    for v in [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
    ] {
        b.add_profile([("text", v)]);
    }
    b.build()
}

const GOLDEN_SEED: u64 = 7;
const GOLDEN_EPOCH_BUDGET: u64 = 3;

/// Builds the exact store the fixture holds.
fn build_golden_store() -> Store {
    let coll = golden_profiles();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
    let nl = NeighborList::build(&coll, GOLDEN_SEED);

    let mut snapshot = Snapshot::new(Arc::clone(blocks.interner()));
    snapshot.profiles = Some(coll.clone());
    snapshot.blocks = Some(blocks);
    snapshot.profile_index = Some(index);
    snapshot.graph = Some(graph);
    snapshot.neighbor_list = Some(nl);
    let mut store = snapshot.to_store().expect("one interner");

    // A mid-stream PPS session: 2 epochs done, dedup filter non-empty.
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    let rows: Vec<Vec<Attribute>> = coll.iter().map(|p| p.attributes.clone()).collect();
    session.ingest_batch(rows[..3].to_vec());
    session.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    session.ingest_batch(rows[3..].to_vec());
    session.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    // Append the checkpoint's sections to the same store (its tags are
    // unique within the checkpoint; the duplicated INTR/PROF payloads are
    // byte-identical to the snapshot's — both tokenize the same profiles
    // in the same order — so first-wins lookups resolve correctly).
    let ck = SessionCheckpoint::of(&session).to_store();
    for tag in ck.tags() {
        store.push(tag, ck.get(tag).expect("just listed").to_vec());
    }
    store
}

/// Regenerates the committed fixture. Run explicitly (`--ignored`) after
/// a deliberate format-version bump — never as part of a normal test run.
#[test]
#[ignore = "writes the committed fixture; run only on deliberate format changes"]
fn regenerate() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
    build_golden_store()
        .write_to_path(&path)
        .expect("fixture writes");
    eprintln!("regenerated {}", path.display());
}

/// The committed fixture still parses, validates, and reproduces the
/// exact structures it was built from.
#[test]
fn golden_fixture_loads_bit_identically() {
    let path = golden_path();
    let store = Store::read_from_path(&path).unwrap_or_else(|e| {
        panic!(
            "committed fixture {} failed to load: {e}\n\
             (format drift? see the module docs for the migration policy)",
            path.display()
        )
    });

    // --- Snapshot half: arrays equal a fresh build of the same inputs ---
    let snapshot = Snapshot::from_store(&store).expect("snapshot half validates");
    let coll = golden_profiles();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
    let nl = NeighborList::build(&coll, GOLDEN_SEED);

    let loaded = snapshot.blocks.as_ref().expect("blocks stored");
    let (a, b) = (blocks.raw_parts(), loaded.raw_parts());
    assert_eq!(a.keys, b.keys);
    assert_eq!(a.offsets, b.offsets);
    assert_eq!(a.members, b.members);
    assert_eq!(a.n_firsts, b.n_firsts);
    // Key ids resolve to the same strings through the stored interner.
    for &k in a.keys {
        assert_eq!(
            &*blocks.interner().resolve(k),
            &*snapshot.interner().resolve(k)
        );
    }
    assert_eq!(
        snapshot.profile_index.as_ref().expect("stored").raw_parts(),
        index.raw_parts()
    );
    let loaded_graph = snapshot.graph.as_ref().expect("stored");
    assert_eq!(loaded_graph.num_edges(), graph.num_edges());
    for ((pa, wa), (pb, wb)) in graph.edges().zip(loaded_graph.edges()) {
        assert_eq!(pa, pb);
        assert_eq!(wa.to_bits(), wb.to_bits());
    }
    assert_eq!(
        snapshot.neighbor_list.as_ref().expect("stored").as_slice(),
        nl.as_slice()
    );
    let stored_profiles = snapshot.profiles.as_ref().expect("stored");
    assert_eq!(stored_profiles.len(), coll.len());
    for (pa, pb) in coll.iter().zip(stored_profiles.iter()) {
        assert_eq!(pa, pb);
    }

    // --- Checkpoint half: the session resumes and finishes exactly as an
    // uninterrupted run does ---
    let restored = SessionCheckpoint::from_store(&store).expect("checkpoint half validates");
    assert_eq!(restored.state.reports.len(), 2);
    let mut resumed = restored.resume();

    let rows: Vec<Vec<Attribute>> = coll.iter().map(|p| p.attributes.clone()).collect();
    let mut baseline = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    baseline.ingest_batch(rows[..3].to_vec());
    baseline.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    baseline.ingest_batch(rows[3..].to_vec());
    baseline.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));

    let a = resumed.emit_epoch(None);
    let b = baseline.emit_epoch(None);
    assert_eq!(
        a.comparisons
            .iter()
            .map(|c| (c.pair, c.weight))
            .collect::<Vec<_>>(),
        b.comparisons
            .iter()
            .map(|c| (c.pair, c.weight))
            .collect::<Vec<_>>(),
        "fixture-resumed session diverged from the uninterrupted run"
    );
    assert_eq!(a.report.epoch, 3);
}
