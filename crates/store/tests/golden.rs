//! Golden-file compatibility: committed `.sper` fixtures written by past
//! releases must keep loading, bit-identically, on every build — the
//! regression gate for accidental format drift. CI runs this on every
//! push.
//!
//! Two fixtures are committed:
//!
//! * `golden-v1.sper` — written by the format's first release
//!   (`FORMAT_VERSION` 1, no `TOMB` section). **Frozen**: this build
//!   writes version 2, so the file can never be regenerated — only read.
//!   Its continued loading proves the v1 migration path (absent `TOMB` ⇒
//!   no mutations) stays intact.
//! * `golden-v2.sper` — a version-2 store whose checkpoint carries live
//!   mutation state (retracted profiles with tombstones still physically
//!   pending in the substrate).
//!
//! The v1 fixture bundles a snapshot *and* a session checkpoint in one
//! store (their section tags are disjoint and their `PROF`/`INTR`
//! payloads coincide); the v2 fixture is a checkpoint-only store — its
//! mutated collection (husks, an amended row) deliberately differs from
//! what any snapshot of the base collection would hold, so the halves
//! can no longer share sections. Both are built from a fixed toy
//! collection. If the format ever needs to change again, bump
//! `FORMAT_VERSION`, teach the reader the migration, freeze the old
//! fixture, and regenerate the new one with:
//!
//! ```text
//! cargo test -p sper-store --test golden -- --ignored regenerate
//! ```

use sper_blocking::{BlockingGraph, NeighborList, ProfileIndex, TokenBlocking, WeightingScheme};
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, ProfileCollection, ProfileCollectionBuilder, ProfileId};
use sper_store::{SessionCheckpoint, Snapshot, Store};
use sper_stream::{CompactionPolicy, ProgressiveSession, SessionConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn golden_v1_path() -> PathBuf {
    golden_dir().join("golden-v1.sper")
}

fn golden_v2_path() -> PathBuf {
    golden_dir().join("golden-v2.sper")
}

/// The fixed collection the fixture is built from. Changing this breaks
/// the fixture by construction — regenerate if you must, and say why in
/// the commit.
fn golden_profiles() -> ProfileCollection {
    let mut b = ProfileCollectionBuilder::dirty();
    for v in [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
    ] {
        b.add_profile([("text", v)]);
    }
    b.build()
}

const GOLDEN_SEED: u64 = 7;
const GOLDEN_EPOCH_BUDGET: u64 = 3;

/// Builds the exact store the frozen v1 fixture holds. No longer
/// callable as a regeneration path (this build writes format version 2);
/// retained as the executable record of how `golden-v1.sper` was made.
#[allow(dead_code)]
fn build_golden_store() -> Store {
    let coll = golden_profiles();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
    let nl = NeighborList::build(&coll, GOLDEN_SEED);

    let mut snapshot = Snapshot::new(Arc::clone(blocks.interner()));
    snapshot.profiles = Some(coll.clone());
    snapshot.blocks = Some(blocks);
    snapshot.profile_index = Some(index);
    snapshot.graph = Some(graph);
    snapshot.neighbor_list = Some(nl);
    let mut store = snapshot.to_store().expect("one interner");

    // A mid-stream PPS session: 2 epochs done, dedup filter non-empty.
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    let rows: Vec<Vec<Attribute>> = coll.iter().map(|p| p.attributes.clone()).collect();
    session.ingest_batch(rows[..3].to_vec());
    session.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    session.ingest_batch(rows[3..].to_vec());
    session.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    // Append the checkpoint's sections to the same store (its tags are
    // unique within the checkpoint; the duplicated INTR/PROF payloads are
    // byte-identical to the snapshot's — both tokenize the same profiles
    // in the same order — so first-wins lookups resolve correctly).
    let ck = SessionCheckpoint::of(&session).to_store();
    for tag in ck.tags() {
        store.push(tag, ck.get(tag).expect("just listed").to_vec());
    }
    store
}

/// The session half of the v2 fixture: two epochs done, then a retract
/// and an amend under a manual compaction policy, so the checkpoint
/// carries a non-trivial `TOMB` section with *pending* tombstones (the
/// substrate still physically holds the dead rows).
fn build_golden_v2_session() -> ProgressiveSession {
    let coll = golden_profiles();
    let rows: Vec<Vec<Attribute>> = coll.iter().map(|p| p.attributes.clone()).collect();
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps)
            .with_compaction(CompactionPolicy::manual()),
    );
    session.ingest_batch(rows[..3].to_vec());
    session.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    session.ingest_batch(rows[3..].to_vec());
    session.retract(ProfileId(1));
    session.amend(
        ProfileId(4),
        vec![Attribute::new("text", "emma white wi taylor")],
    );
    session.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    assert_eq!(
        session.pending_tombstones(),
        2,
        "fixture carries tombstones"
    );
    session
}

/// Regenerates the committed v2 fixture. Run explicitly (`--ignored`)
/// after a deliberate format-version bump — never as part of a normal
/// test run. The v1 fixture is frozen and cannot be regenerated by this
/// build (it writes version 2).
#[test]
#[ignore = "writes the committed fixture; run only on deliberate format changes"]
fn regenerate() {
    let path = golden_v2_path();
    std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
    SessionCheckpoint::of(&build_golden_v2_session())
        .to_store()
        .write_to_path(&path)
        .expect("fixture writes");
    eprintln!("regenerated {}", path.display());
}

/// The committed fixture still parses, validates, and reproduces the
/// exact structures it was built from.
#[test]
fn golden_fixture_loads_bit_identically() {
    let path = golden_v1_path();
    let store = Store::read_from_path(&path).unwrap_or_else(|e| {
        panic!(
            "committed fixture {} failed to load: {e}\n\
             (format drift? see the module docs for the migration policy)",
            path.display()
        )
    });

    // --- Snapshot half: arrays equal a fresh build of the same inputs ---
    let snapshot = Snapshot::from_store(&store).expect("snapshot half validates");
    let coll = golden_profiles();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
    let nl = NeighborList::build(&coll, GOLDEN_SEED);

    let loaded = snapshot.blocks.as_ref().expect("blocks stored");
    let (a, b) = (blocks.raw_parts(), loaded.raw_parts());
    assert_eq!(a.keys, b.keys);
    assert_eq!(a.offsets, b.offsets);
    assert_eq!(a.members, b.members);
    assert_eq!(a.n_firsts, b.n_firsts);
    // Key ids resolve to the same strings through the stored interner.
    for &k in a.keys {
        assert_eq!(
            &*blocks.interner().resolve(k),
            &*snapshot.interner().resolve(k)
        );
    }
    assert_eq!(
        snapshot.profile_index.as_ref().expect("stored").raw_parts(),
        index.raw_parts()
    );
    let loaded_graph = snapshot.graph.as_ref().expect("stored");
    assert_eq!(loaded_graph.num_edges(), graph.num_edges());
    for ((pa, wa), (pb, wb)) in graph.edges().zip(loaded_graph.edges()) {
        assert_eq!(pa, pb);
        assert_eq!(wa.to_bits(), wb.to_bits());
    }
    assert_eq!(
        snapshot.neighbor_list.as_ref().expect("stored").as_slice(),
        nl.as_slice()
    );
    let stored_profiles = snapshot.profiles.as_ref().expect("stored");
    assert_eq!(stored_profiles.len(), coll.len());
    for (pa, pb) in coll.iter().zip(stored_profiles.iter()) {
        assert_eq!(pa, pb);
    }

    // --- Checkpoint half: the session resumes and finishes exactly as an
    // uninterrupted run does ---
    let restored = SessionCheckpoint::from_store(&store).expect("checkpoint half validates");
    assert_eq!(restored.state.reports.len(), 2);
    let mut resumed = restored.resume();

    let rows: Vec<Vec<Attribute>> = coll.iter().map(|p| p.attributes.clone()).collect();
    let mut baseline = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    baseline.ingest_batch(rows[..3].to_vec());
    baseline.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));
    baseline.ingest_batch(rows[3..].to_vec());
    baseline.emit_epoch(Some(GOLDEN_EPOCH_BUDGET));

    let a = resumed.emit_epoch(None);
    let b = baseline.emit_epoch(None);
    assert_eq!(
        a.comparisons
            .iter()
            .map(|c| (c.pair, c.weight))
            .collect::<Vec<_>>(),
        b.comparisons
            .iter()
            .map(|c| (c.pair, c.weight))
            .collect::<Vec<_>>(),
        "fixture-resumed session diverged from the uninterrupted run"
    );
    assert_eq!(a.report.epoch, 3);
}

/// The committed v2 fixture (mutation-bearing checkpoint) still parses,
/// restores the exact tombstone state, and resumes bit-identically to an
/// uninterrupted run — before *and* after compaction.
#[test]
fn golden_v2_fixture_loads_bit_identically() {
    let path = golden_v2_path();
    let store = Store::read_from_path(&path).unwrap_or_else(|e| {
        panic!(
            "committed fixture {} failed to load: {e}\n\
             (format drift? see the module docs for the migration policy)",
            path.display()
        )
    });
    let restored = SessionCheckpoint::from_store(&store).expect("checkpoint validates");

    // The mutation state round-trips exactly.
    assert_eq!(
        restored.state.retracted,
        vec![ProfileId(1), ProfileId(4)],
        "retracted ids drifted"
    );
    assert_eq!(
        restored.state.pending_tombstones,
        vec![ProfileId(1), ProfileId(4)],
        "pending tombstones drifted"
    );
    assert!(restored.state.compaction.tombstone_ratio.is_infinite());
    assert_eq!(restored.state.reports.len(), 2);

    // Byte-level drift gate: re-encoding the restored state reproduces
    // the committed file exactly.
    assert_eq!(
        SessionCheckpoint {
            state: restored.state.clone()
        }
        .to_store()
        .to_bytes(),
        std::fs::read(&path).expect("fixture read"),
        "re-encoded checkpoint diverged from the committed bytes"
    );

    // The resumed session continues exactly like the uninterrupted one,
    // and compaction on the fixture state changes nothing downstream.
    let mut resumed = restored.resume();
    let mut baseline = build_golden_v2_session();
    assert_eq!(resumed.compact(), baseline.pending_tombstones());
    let a = resumed.emit_epoch(None);
    let b = baseline.emit_epoch(None);
    assert_eq!(
        a.comparisons
            .iter()
            .map(|c| (c.pair, c.weight))
            .collect::<Vec<_>>(),
        b.comparisons
            .iter()
            .map(|c| (c.pair, c.weight))
            .collect::<Vec<_>>(),
        "fixture-resumed session diverged post-compaction"
    );
    assert_eq!(a.report.epoch, 3);
}
