//! Corrupted-store coverage: truncation at every byte, bad magic, wrong
//! version, flipped bits, and structurally valid but semantically corrupt
//! payloads — every one must surface as a typed [`StoreError`], never a
//! panic or a silently inconsistent structure.

use proptest::prelude::*;
use sper_blocking::{BlockingGraph, NeighborList, ProfileIndex, TokenBlocking, WeightingScheme};
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, ProfileCollectionBuilder};
use sper_store::{SessionCheckpoint, Snapshot, Store, StoreError};
use sper_stream::{ProgressiveSession, SessionConfig};
use std::sync::Arc;

/// A small but fully populated snapshot file.
fn sample_snapshot_bytes() -> Vec<u8> {
    let mut b = ProfileCollectionBuilder::dirty();
    for v in [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "emma white wi tailor",
    ] {
        b.add_profile([("text", v)]);
    }
    let coll = b.build();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let mut snapshot = Snapshot::new(Arc::clone(blocks.interner()));
    snapshot.profile_index = Some(ProfileIndex::build(&blocks));
    snapshot.graph = Some(BlockingGraph::build(&blocks, WeightingScheme::Arcs));
    snapshot.neighbor_list = Some(NeighborList::build(&coll, 7));
    snapshot.profiles = Some(coll);
    snapshot.blocks = Some(blocks);
    snapshot.to_store().expect("shared interner").to_bytes()
}

/// A checkpoint file of a mid-stream session.
fn sample_checkpoint_bytes() -> Vec<u8> {
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    session.ingest_batch(
        ["carl white", "karl white", "emma white"].map(|v| vec![Attribute::new("t", v)]),
    );
    session.emit_epoch(Some(2));
    SessionCheckpoint::of(&session).to_store().to_bytes()
}

/// A checkpoint of a session with live mutation state: retracted rows
/// whose tombstones are still physically pending in the substrate — the
/// `TOMB` section is non-trivial.
fn mutated_checkpoint_bytes() -> Vec<u8> {
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps)
            .with_compaction(sper_stream::CompactionPolicy::manual()),
    );
    session.ingest_batch(
        ["carl white", "karl white", "emma white", "frank black"]
            .map(|v| vec![Attribute::new("t", v)]),
    );
    session.emit_epoch(Some(2));
    session.retract(sper_model::ProfileId(1));
    session.amend(
        sper_model::ProfileId(3),
        vec![Attribute::new("t", "frank brown")],
    );
    assert!(
        session.pending_tombstones() > 0,
        "fixture must carry tombstones"
    );
    SessionCheckpoint::of(&session).to_store().to_bytes()
}

/// Decoding a snapshot from a parsed store (the full pipeline a reader
/// runs); used to prove payload-level corruption is typed too.
fn load_snapshot(bytes: &[u8]) -> Result<(), StoreError> {
    Snapshot::from_store(&Store::from_bytes(bytes)?).map(|_| ())
}

fn load_checkpoint(bytes: &[u8]) -> Result<(), StoreError> {
    SessionCheckpoint::from_store(&Store::from_bytes(bytes)?).map(|_| ())
}

#[test]
fn truncation_at_every_byte_is_typed() {
    let bytes = sample_snapshot_bytes();
    for cut in 0..bytes.len() {
        match load_snapshot(&bytes[..cut]) {
            Err(_) => {}
            Ok(()) => panic!("truncation at byte {cut} of {} went unnoticed", bytes.len()),
        }
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = sample_snapshot_bytes();
    bytes[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        load_snapshot(&bytes),
        Err(StoreError::BadMagic { found }) if &found == b"NOPE"
    ));
}

#[test]
fn wrong_version_is_typed() {
    let mut bytes = sample_snapshot_bytes();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        load_snapshot(&bytes),
        Err(StoreError::UnsupportedVersion { found: 99, .. })
    ));
}

#[test]
fn every_single_byte_flip_is_detected_or_harmless() {
    // Flip every byte of the file, one at a time. Each flip must either
    // fail with a typed error (the overwhelming majority: CRC catches
    // payload damage, the header checks catch the rest) or — never —
    // panic. A flip inside a length/crc prologue may masquerade as
    // truncation; that is fine, it is still typed.
    let bytes = sample_snapshot_bytes();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x80;
        let _ = load_snapshot(&corrupted); // must not panic
    }
}

#[test]
fn flipped_payload_byte_is_checksum_mismatch() {
    let bytes = sample_snapshot_bytes();
    // The first section's payload starts right after the 12-byte header
    // and its 16-byte section prologue.
    let at = 12 + 16;
    let mut corrupted = bytes.clone();
    corrupted[at] ^= 0x01;
    assert!(matches!(
        load_snapshot(&corrupted),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn checkpoint_corruption_is_typed() {
    let bytes = sample_checkpoint_bytes();
    assert!(load_checkpoint(&bytes).is_ok(), "clean file loads");
    for cut in 0..bytes.len() {
        assert!(load_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
    }
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x80;
        let _ = load_checkpoint(&corrupted); // must not panic
    }
}

#[test]
fn semantically_corrupt_sections_are_typed() {
    use sper_store::substrates::{
        TAG_BLOCKS, TAG_INTERNER, TAG_NEIGHBOR_LIST, TAG_PROFILES, TAG_PROFILE_INDEX,
    };
    let assert_corrupt = |store: &Store| {
        assert!(matches!(
            Snapshot::from_store(store),
            Err(StoreError::Corrupt { .. })
        ));
    };

    // An interner with a duplicated token: id lookups would be ambiguous.
    let mut store = Store::new();
    let dup = {
        let it = sper_text::TokenInterner::new();
        it.intern("a");
        let mut bytes = sper_store::substrates::encode_interner(&it);
        // Duplicate the vocabulary entry wholesale: count 2, same string.
        bytes = {
            let mut e = Vec::new();
            e.extend_from_slice(&2u64.to_le_bytes());
            e.extend_from_slice(&1u64.to_le_bytes());
            e.push(b'a');
            e.extend_from_slice(&1u64.to_le_bytes());
            e.push(b'a');
            let _ = bytes;
            e
        };
        bytes
    };
    store.push(TAG_INTERNER, dup);
    assert_corrupt(&store);

    // A profile collection claiming more P1 profiles than it has.
    let coll = {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("t", "x")]);
        b.build()
    };
    let mut bytes = sper_store::substrates::encode_profiles(&coll);
    bytes[1..9].copy_from_slice(&9u64.to_le_bytes()); // n_first = 9 > |P| = 1
    let mut store = Store::new();
    let it = sper_text::TokenInterner::new();
    store.push(TAG_INTERNER, sper_store::substrates::encode_interner(&it));
    store.push(TAG_PROFILES, bytes);
    assert_corrupt(&store);

    // Substrates referencing ids beyond their declared ranges.
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("t", "a b")]);
    b.add_profile([("t", "b c")]);
    let coll = b.build();
    let blocks = TokenBlocking::default().build(&coll);
    let nl = NeighborList::build(&coll, 1);
    let index = ProfileIndex::build(&blocks);

    // Block member out of range: bump a member id past n_profiles.
    let clean = sper_store::substrates::encode_blocks(&blocks);
    let mut store = Store::new();
    store.push(
        TAG_INTERNER,
        sper_store::substrates::encode_interner(blocks.interner()),
    );
    let mut corrupted = clean.clone();
    *corrupted.last_mut().unwrap() = 0xff; // last n_firsts entry → huge
    store.push(TAG_BLOCKS, corrupted);
    assert_corrupt(&store);

    // Profile index with non-monotone offsets.
    let mut bytes = sper_store::substrates::encode_profile_index(&index);
    // offsets begin after total_blocks(8) + len(8); make offsets[0] != 0.
    bytes[16] = 7;
    let mut store = Store::new();
    store.push(
        TAG_INTERNER,
        sper_store::substrates::encode_interner(blocks.interner()),
    );
    store.push(TAG_PROFILE_INDEX, bytes);
    assert_corrupt(&store);

    // Neighbor list with a placement out of profile range.
    let mut bytes = sper_store::substrates::encode_neighbor_list(&nl);
    bytes[0..8].copy_from_slice(&1u64.to_le_bytes()); // claim n_profiles = 1
    let mut store = Store::new();
    store.push(
        TAG_INTERNER,
        sper_store::substrates::encode_interner(nl.interner()),
    );
    store.push(TAG_NEIGHBOR_LIST, bytes);
    assert_corrupt(&store);
}

#[test]
fn tombstone_section_corruption_is_typed() {
    // The mutation-bearing checkpoint survives the same gauntlet as the
    // base fixtures: truncation at every byte and every single-byte flip
    // are typed errors (or harmless prologue reinterpretations) — never a
    // panic.
    let bytes = mutated_checkpoint_bytes();
    assert!(load_checkpoint(&bytes).is_ok(), "clean file loads");
    for cut in 0..bytes.len() {
        assert!(load_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
    }
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x80;
        let _ = load_checkpoint(&corrupted); // must not panic
    }
}

#[test]
fn tombstone_crc_flip_is_checksum_mismatch() {
    // Flip one payload byte of the TOMB section specifically; the
    // per-section CRC must attribute the damage to it.
    let bytes = mutated_checkpoint_bytes();
    let store = Store::from_bytes(&bytes).unwrap();
    // Locate the TOMB payload in the raw file: walk the section layout.
    let mut at = 12usize;
    let mut tomb_payload: Option<(usize, usize)> = None;
    while at < bytes.len() {
        let tag = &bytes[at..at + 4];
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
        if tag == b"TOMB" {
            tomb_payload = Some((at + 16, len));
            break;
        }
        at += 16 + len;
    }
    let (start, len) = tomb_payload.expect("mutated checkpoint has a TOMB section");
    assert!(len > 0, "TOMB payload is non-trivial");
    assert!(store.get(*b"TOMB").is_some());
    for off in 0..len {
        let mut corrupted = bytes.clone();
        corrupted[start + off] ^= 0x01;
        match Store::from_bytes(&corrupted) {
            Err(StoreError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, "TOMB", "flip at offset {off}")
            }
            other => panic!("flip at offset {off}: {other:?}"),
        }
    }
}

#[test]
fn semantically_corrupt_tombstones_are_typed() {
    use sper_store::TAG_TOMBSTONES;
    let bytes = mutated_checkpoint_bytes();
    let clean = Store::from_bytes(&bytes).unwrap();
    let tomb = clean.get(TAG_TOMBSTONES).unwrap().to_vec();

    // Rebuild the store with one section swapped out.
    let rebuild = |tomb_bytes: Vec<u8>| -> Store {
        let mut s = Store::new();
        for tag in clean.tags() {
            if tag == TAG_TOMBSTONES {
                s.push(tag, tomb_bytes.clone());
            } else {
                s.push(tag, clean.get(tag).unwrap().to_vec());
            }
        }
        s
    };
    let assert_corrupt = |tomb_bytes: Vec<u8>, what: &str| {
        assert!(
            matches!(
                SessionCheckpoint::from_store(&rebuild(tomb_bytes)),
                Err(StoreError::Corrupt { .. })
            ),
            "{what} went unnoticed"
        );
    };

    // NaN compaction ratio.
    let mut t = tomb.clone();
    t[0..8].copy_from_slice(&f64::NAN.to_le_bytes());
    assert_corrupt(t, "NaN compaction ratio");

    // Negative compaction ratio.
    let mut t = tomb.clone();
    t[0..8].copy_from_slice(&(-1.0f64).to_le_bytes());
    assert_corrupt(t, "negative compaction ratio");

    // Retracted id out of profile range. Layout after the ratio: count
    // u64, then u32 ids.
    let mut t = tomb.clone();
    t[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_corrupt(t, "retracted id out of range");

    // Ids not strictly ascending: duplicate the first retracted id.
    let n_retracted = u64::from_le_bytes(tomb[8..16].try_into().unwrap()) as usize;
    assert!(n_retracted >= 2, "fixture retracts at least two profiles");
    let first = tomb[16..20].to_vec();
    let mut t = tomb.clone();
    t[20..24].copy_from_slice(&first);
    assert_corrupt(t, "non-ascending retracted ids");

    // A pending tombstone that was never retracted: point the pending
    // list at a live profile (id 0 is never retracted by the fixture).
    let pending_at = 16 + 4 * n_retracted + 8;
    let mut t = tomb.clone();
    t[pending_at..pending_at + 4].copy_from_slice(&0u32.to_le_bytes());
    assert_corrupt(t, "pending tombstone never retracted");

    // Cross-section lie: a retracted profile that still has attributes in
    // PROF. Claim profile 0 (live, non-empty) is retracted.
    let mut t = tomb.clone();
    t[16..20].copy_from_slice(&0u32.to_le_bytes());
    // Keep ascending order: id 0 < previous first id, so this stays valid
    // structurally as long as the old first id was > 0 — it is 1, so
    // overwrite the *second* entry too, making the list [0, 3].
    assert_corrupt(t, "retracted profile still has attributes");

    // Truncated mid-list (decoder-level, inside a checksummed payload).
    let t = tomb[..tomb.len() - 2].to_vec();
    assert_corrupt(t, "short tombstone payload");

    // Trailing garbage after the pending list.
    let mut t = tomb.clone();
    t.extend_from_slice(&[0xAB, 0xCD]);
    assert_corrupt(t, "trailing bytes");
}

#[test]
fn missing_required_section_is_typed() {
    let store = Store::new();
    assert!(matches!(
        Snapshot::from_store(&store),
        Err(StoreError::MissingSection { section: "INTR" })
    ));
    assert!(matches!(
        SessionCheckpoint::from_store(&store),
        Err(StoreError::MissingSection { section: "SESS" })
    ));
}

proptest! {
    /// Arbitrary byte soup never panics the parser — worst case a typed
    /// error, best case an (extremely unlikely) valid empty store.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = load_snapshot(&bytes);
        let _ = load_checkpoint(&bytes);
    }

    /// Arbitrary mutations of a valid snapshot never panic and never
    /// produce an undetected *structural* lie (any successful load must
    /// at minimum have parsed all sections with matching checksums).
    #[test]
    fn mutated_snapshots_never_panic(
        at in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut bytes = sample_snapshot_bytes();
        let at = at % bytes.len();
        bytes[at] ^= xor;
        let _ = load_snapshot(&bytes);
    }
}
