//! Epoch-report timing is diagnostic, never state: wall-clock fields
//! (`init_time`, `emission_time`, `wall_clock`, `comparisons_per_sec`)
//! must not be persisted by a checkpoint — two runs reaching the same
//! logical state on hosts of different speeds must produce identical
//! checkpoint bytes, and a resumed session must not inherit stale timing.

use sper_core::ProgressiveMethod;
use sper_model::{Attribute, ProfileCollectionBuilder};
use sper_store::{SessionCheckpoint, Store};
use sper_stream::{ProgressiveSession, SessionConfig};
use std::time::Duration;

fn session_with_epochs() -> ProgressiveSession {
    let rows: Vec<Vec<Attribute>> = [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
    ]
    .iter()
    .map(|v| vec![Attribute::new("d", *v)])
    .collect();
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    for batch in rows.chunks(2) {
        session.ingest_batch(batch.to_vec());
        session.emit_epoch(None);
    }
    session
}

#[test]
fn restored_reports_carry_zero_timing_but_full_counts() {
    let session = session_with_epochs();
    let bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
    let restored =
        SessionCheckpoint::from_store(&Store::from_bytes(&bytes).expect("container parses"))
            .expect("checkpoint validates");

    let live = session.reports();
    let loaded = &restored.state.reports;
    assert_eq!(live.len(), loaded.len());
    for (a, b) in live.iter().zip(loaded) {
        // Logical state survives bit for bit…
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.ingested, b.ingested);
        assert_eq!(a.profiles_total, b.profiles_total);
        assert_eq!(a.raw_emissions, b.raw_emissions);
        assert_eq!(a.new_emissions, b.new_emissions);
        assert_eq!(a.suppressed, b.suppressed);
        // …while timing is restored as the documented zeros.
        assert_eq!(b.init_time, Duration::ZERO);
        assert_eq!(b.emission_time, Duration::ZERO);
        assert_eq!(b.wall_clock, Duration::ZERO);
        assert_eq!(b.comparisons_per_sec, 0.0);
    }
}

/// The wire format cannot depend on how fast the host ran: checkpointing,
/// resuming, and checkpointing again (reports now zero-timed) must yield
/// byte-identical stores. If a timing field ever leaked into the RPTS
/// section, the second pass would differ.
#[test]
fn checkpoint_bytes_are_independent_of_measured_timing() {
    let session = session_with_epochs();
    let first = SessionCheckpoint::of(&session).to_store().to_bytes();
    let resumed =
        SessionCheckpoint::from_store(&Store::from_bytes(&first).expect("container parses"))
            .expect("checkpoint validates")
            .resume();
    let second = SessionCheckpoint::of(&resumed).to_store().to_bytes();
    assert_eq!(first, second, "timing leaked into the checkpoint bytes");
}
