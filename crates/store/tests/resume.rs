//! Kill/resume equivalence: a budgeted streaming run killed at an
//! arbitrary epoch boundary and resumed from its checkpoint **file**
//! emits, epoch for epoch, exactly the `(pair, weight)` sequences the
//! uninterrupted run emits — for every streamable method, both ER kinds,
//! arbitrary batch splits and arbitrary kill points.
//!
//! (PSN is schema-based and cannot stream — `ProgressiveSession` rejects
//! it by construction — so "all methods" here is the six schema-agnostic
//! ones; the seventh is covered by the batch equivalence suite in
//! `sper-core`.)

use proptest::prelude::*;
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, Pair, ProfileCollection, ProfileCollectionBuilder, ProfileId};
use sper_store::{SessionCheckpoint, Store};
use sper_stream::{CompactionPolicy, ProgressiveSession, SessionConfig};

const STREAMABLE: [ProgressiveMethod; 6] = [
    ProgressiveMethod::SaPsn,
    ProgressiveMethod::SaPsab,
    ProgressiveMethod::LsPsn,
    ProgressiveMethod::GsPsn,
    ProgressiveMethod::Pbs,
    ProgressiveMethod::Pps,
];

/// One epoch's emissions, fully observable.
type Emissions = Vec<(Pair, f64)>;

fn emissions(outcome: &sper_stream::EpochOutcome) -> Emissions {
    outcome
        .comparisons
        .iter()
        .map(|c| (c.pair, c.weight))
        .collect()
}

/// Runs `batches` through a fresh session, one epoch per batch, with the
/// given per-epoch budget; kills the run after `kill_after` epochs by
/// round-tripping a checkpoint through actual file bytes, then finishes
/// on the resumed session. Returns every epoch's emissions.
fn run_with_kill(
    initial: ProfileCollection,
    batches: &[Vec<Vec<Attribute>>],
    config: SessionConfig,
    budget: Option<u64>,
    kill_after: Option<usize>,
) -> Vec<Emissions> {
    let mut session = ProgressiveSession::new(initial, config);
    let mut out = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        session.ingest_batch(batch.clone());
        out.push(emissions(&session.emit_epoch(budget)));
        if kill_after == Some(i + 1) {
            // The full death-and-rebirth cycle: state → sections → bytes
            // → parse → validate → state.
            let bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
            let restored = SessionCheckpoint::from_store(
                &Store::from_bytes(&bytes).expect("container parses"),
            )
            .expect("checkpoint validates");
            session = restored.resume();
        }
    }
    // A final drain epoch with no ingest, so the tail after the last
    // batch is compared too.
    out.push(emissions(&session.emit_epoch(budget)));
    out
}

fn toy_rows(n: usize) -> Vec<Vec<Attribute>> {
    [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
        "frances black la baker",
        "joe green sf cook",
    ]
    .iter()
    .cycle()
    .take(n)
    .enumerate()
    .map(|(i, v)| vec![Attribute::new("text", format!("{v} row{}", i % 5))])
    .collect()
}

/// Exhaustive sweep on a fixed collection: every streamable method ×
/// every kill epoch, budgeted so emissions straddle epochs.
#[test]
fn every_method_every_kill_point_is_bit_identical() {
    let rows = toy_rows(8);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(2).map(|c| c.to_vec()).collect();
    for method in STREAMABLE {
        let config = SessionConfig::exhaustive(method);
        let baseline = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config.clone(),
            Some(3),
            None,
        );
        for kill_after in 1..=batches.len() {
            let resumed = run_with_kill(
                ProfileCollectionBuilder::dirty().build(),
                &batches,
                config.clone(),
                Some(3),
                Some(kill_after),
            );
            assert_eq!(
                resumed, baseline,
                "{method:?} diverged when killed after epoch {kill_after}"
            );
        }
    }
}

/// Clean-clean sessions (fixed `P1` base, streamed `P2`) resume
/// identically too.
#[test]
fn clean_clean_kill_resume_is_bit_identical() {
    let mut b = ProfileCollectionBuilder::clean_clean();
    b.add_profile([("n", "carl white ny tailor")]);
    b.add_profile([("n", "hellen white ml teacher")]);
    b.add_profile([("n", "frank black la baker")]);
    b.start_second_source();
    let base = b.build();
    let rows: Vec<Vec<Attribute>> = [
        "karl white ny tailor",
        "ellen white ml teacher",
        "frances black la baker",
        "emma white wi tailor",
    ]
    .iter()
    .map(|v| vec![Attribute::new("n", *v)])
    .collect();
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(1).map(|c| c.to_vec()).collect();
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::GsPsn] {
        let config = SessionConfig::exhaustive(method);
        let baseline = run_with_kill(base.clone(), &batches, config.clone(), Some(2), None);
        for kill_after in 1..=batches.len() {
            let resumed = run_with_kill(
                base.clone(),
                &batches,
                config.clone(),
                Some(2),
                Some(kill_after),
            );
            assert_eq!(
                resumed, baseline,
                "{method:?} (clean-clean) diverged at kill {kill_after}"
            );
        }
    }
}

/// Paper-default (pruned) configurations checkpoint exactly too: the
/// restored substrate is the same object, so even non-monotone pruning
/// decisions replay identically.
#[test]
fn paper_default_config_kill_resume_is_bit_identical() {
    let rows = toy_rows(10);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(3).map(|c| c.to_vec()).collect();
    for method in STREAMABLE {
        let config = SessionConfig::new(method);
        let baseline = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config.clone(),
            Some(4),
            None,
        );
        for kill_after in 1..=batches.len() {
            let resumed = run_with_kill(
                ProfileCollectionBuilder::dirty().build(),
                &batches,
                config.clone(),
                Some(4),
                Some(kill_after),
            );
            assert_eq!(
                resumed, baseline,
                "{method:?} (paper defaults) diverged at kill {kill_after}"
            );
        }
    }
}

proptest! {
    /// Arbitrary collections, batch splits, budgets and kill points: the
    /// killed-and-resumed run's concatenated emission sequence equals the
    /// uninterrupted run's, for every streamable method.
    #[test]
    fn kill_resume_property(
        values in proptest::collection::vec("[a-e ]{1,8}", 2..14),
        split in 1usize..5,
        budget in 1u64..6,
        kill_seed in 0usize..1000,
        method_idx in 0usize..6,
    ) {
        let method = STREAMABLE[method_idx];
        let rows: Vec<Vec<Attribute>> = values
            .iter()
            .map(|v| vec![Attribute::new("t", v.clone())])
            .collect();
        let batches: Vec<Vec<Vec<Attribute>>> =
            rows.chunks(split).map(|c| c.to_vec()).collect();
        let kill_after = 1 + kill_seed % batches.len();
        let config = SessionConfig::exhaustive(method);
        let baseline = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config.clone(),
            Some(budget),
            None,
        );
        let resumed = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config,
            Some(budget),
            Some(kill_after),
        );
        prop_assert_eq!(resumed, baseline);
    }
}

// ---------------------------------------------------------------------
// Mutation-aware kill/resume: schedules with update/delete/compaction.
// ---------------------------------------------------------------------

/// One scripted mutation, applied after a batch's ingest.
#[derive(Clone, Copy, Debug)]
enum MutOp {
    /// Retract the profile with this id.
    Del(u32),
    /// Amend the profile with this id (retract + re-ingest fresh text).
    Upd(u32),
}

/// The mutation script for one batch: ops after ingest, then optionally
/// an explicit compaction.
#[derive(Clone, Debug, Default)]
struct BatchScript {
    ops: Vec<MutOp>,
    compact: bool,
}

/// Where within a batch's `ingest → mutate → compact → emit` cycle the
/// process dies. `AfterMutate` on a compacting batch is the
/// "mid-compaction" kill: the checkpoint carries the pending tombstones
/// and the resumed process performs the identical compaction the dead one
/// would have — the file itself is never torn mid-write because
/// checkpoints go through an fsynced temp + rename (torn *bytes* are the
/// corruption suite's domain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the After- prefix *is* the semantics
enum Stage {
    AfterIngest,
    AfterMutate,
    AfterCompact,
    AfterEmit,
}

const STAGES: [Stage; 4] = [
    Stage::AfterIngest,
    Stage::AfterMutate,
    Stage::AfterCompact,
    Stage::AfterEmit,
];

fn checkpoint_roundtrip(session: &ProgressiveSession) -> ProgressiveSession {
    let bytes = SessionCheckpoint::of(session).to_store().to_bytes();
    SessionCheckpoint::from_store(&Store::from_bytes(&bytes).expect("container parses"))
        .expect("checkpoint validates")
        .resume()
}

/// [`run_with_kill`] with a mutation script: each batch runs `ingest →
/// ops → (compact) → emit`, and the kill (checkpoint → file bytes →
/// restore) can land at any stage of any batch.
fn run_mutated_with_kill(
    batches: &[Vec<Vec<Attribute>>],
    script: &[BatchScript],
    config: SessionConfig,
    budget: Option<u64>,
    kill_at: Option<(usize, Stage)>,
) -> Vec<Emissions> {
    assert_eq!(batches.len(), script.len());
    let mut session = ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config);
    let mut out = Vec::new();
    for (i, (batch, script)) in batches.iter().zip(script).enumerate() {
        let maybe_kill = |session: &mut ProgressiveSession, stage: Stage| {
            if kill_at == Some((i, stage)) {
                *session = checkpoint_roundtrip(session);
            }
        };
        session.ingest_batch(batch.clone());
        maybe_kill(&mut session, Stage::AfterIngest);
        for op in &script.ops {
            match *op {
                MutOp::Del(id) => session.retract(ProfileId(id)),
                MutOp::Upd(id) => {
                    session.amend(
                        ProfileId(id),
                        vec![Attribute::new("text", format!("amended row {id}"))],
                    );
                }
            }
        }
        maybe_kill(&mut session, Stage::AfterMutate);
        if script.compact {
            session.compact();
        }
        maybe_kill(&mut session, Stage::AfterCompact);
        out.push(emissions(&session.emit_epoch(budget)));
        maybe_kill(&mut session, Stage::AfterEmit);
    }
    out.push(emissions(&session.emit_epoch(budget)));
    out
}

/// The fixed mutation script the sweeps run: deletes, amends (including
/// deleting a previously amended row), and an explicit mid-stream
/// compaction, under a manual policy so the pending-tombstone windows are
/// wide and deterministic.
///
/// Id accounting (ids are dense and never recycled): batches of 3 ingest
/// ids 0–11; the batch-1 amend of id 4 re-ingests as id 6, shifting the
/// later batches' ids up by one per preceding amend.
fn mutation_script() -> (Vec<Vec<Vec<Attribute>>>, Vec<BatchScript>) {
    let rows = toy_rows(12);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(3).map(|c| c.to_vec()).collect();
    let script = vec![
        BatchScript::default(),
        // ids 0..=5 ingested; amend(4) re-ingests as id 6.
        BatchScript {
            ops: vec![MutOp::Del(1), MutOp::Upd(4)],
            compact: false,
        },
        // ids 7..=9 ingested this batch; drop the amended row too, then
        // compact away the accumulated tombstones {1, 4, 6}.
        BatchScript {
            ops: vec![MutOp::Del(6), MutOp::Del(0)],
            compact: true,
        },
        // ids 10..=12 ingested; a fresh post-compaction mutation so the
        // final checkpoint window has pending tombstones again.
        BatchScript {
            ops: vec![MutOp::Upd(2)],
            compact: false,
        },
    ];
    (batches, script)
}

/// Every streamable method × every batch × every stage: a budgeted run
/// killed anywhere in the `ingest → mutate → compact → emit` cycle —
/// including right before and right after the compaction — resumes from
/// file bytes bit-identically.
#[test]
fn mutated_kill_resume_every_stage_is_bit_identical() {
    let (batches, script) = mutation_script();
    for method in STREAMABLE {
        let config = SessionConfig::exhaustive(method).with_compaction(CompactionPolicy::manual());
        let baseline = run_mutated_with_kill(&batches, &script, config.clone(), Some(3), None);
        for batch in 0..batches.len() {
            for stage in STAGES {
                let resumed = run_mutated_with_kill(
                    &batches,
                    &script,
                    config.clone(),
                    Some(3),
                    Some((batch, stage)),
                );
                assert_eq!(
                    resumed, baseline,
                    "{method:?} diverged when killed at {stage:?} of batch {batch}"
                );
            }
        }
    }
}

/// The kill window that matters most: after mutations, before their
/// compaction. The checkpoint must actually carry pending tombstones
/// (the regression this guards is a writer that silently compacts or
/// drops the pending list on save).
#[test]
fn checkpoint_before_compaction_carries_pending_tombstones() {
    let (batches, script) = mutation_script();
    let config = SessionConfig::exhaustive(ProgressiveMethod::Pps)
        .with_compaction(CompactionPolicy::manual());
    let mut session = ProgressiveSession::new(ProfileCollectionBuilder::dirty().build(), config);
    for (batch, script) in batches.iter().zip(&script).take(3) {
        session.ingest_batch(batch.clone());
        for op in &script.ops {
            match *op {
                MutOp::Del(id) => session.retract(ProfileId(id)),
                MutOp::Upd(id) => {
                    session.amend(
                        ProfileId(id),
                        vec![Attribute::new("text", format!("amended row {id}"))],
                    );
                }
            }
        }
        if script.compact {
            // Kill *between* the mutations and the compaction they feed.
            assert_eq!(session.pending_tombstones(), 4, "{{0, 1, 4, 6}} pending");
            let bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
            let restored =
                SessionCheckpoint::from_store(&Store::from_bytes(&bytes).unwrap()).unwrap();
            assert_eq!(
                restored.state.pending_tombstones,
                vec![ProfileId(0), ProfileId(1), ProfileId(4), ProfileId(6)]
            );
            assert_eq!(restored.state.retracted, restored.state.pending_tombstones);
            let mut resumed = restored.resume();
            // Both sides compact and drain; the streams must agree.
            assert_eq!(session.compact(), 4);
            assert_eq!(resumed.compact(), 4);
            let a = emissions(&session.emit_epoch(None));
            let b = emissions(&resumed.emit_epoch(None));
            assert_eq!(a, b, "post-compaction drain diverged");
            return;
        }
        session.emit_epoch(Some(3));
    }
    panic!("script never reached its compaction batch");
}

/// Paper-default (pruned) configuration with the auto-trigger live: the
/// policy decision (compact or not at each epoch start) replays
/// identically after a kill at any batch boundary, because the policy,
/// the pending list, and the live-count inputs all ride the checkpoint.
#[test]
fn mutated_kill_resume_with_auto_compaction_policy() {
    let (batches, script) = mutation_script();
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::SaPsn] {
        // Every pending tombstone triggers compaction at the next epoch.
        let config = SessionConfig::new(method).with_compaction(CompactionPolicy::at_ratio(0.0));
        let baseline = run_mutated_with_kill(&batches, &script, config.clone(), Some(4), None);
        for batch in 0..batches.len() {
            for stage in [Stage::AfterMutate, Stage::AfterEmit] {
                let resumed = run_mutated_with_kill(
                    &batches,
                    &script,
                    config.clone(),
                    Some(4),
                    Some((batch, stage)),
                );
                assert_eq!(
                    resumed, baseline,
                    "{method:?} auto-compaction diverged at {stage:?} of batch {batch}"
                );
            }
        }
    }
}

proptest! {
    /// Random budgets and kill positions over the fixed mutation script:
    /// the concatenated emission sequence of the killed run equals the
    /// uninterrupted one for every streamable method.
    #[test]
    fn mutated_kill_resume_property(
        budget in 1u64..7,
        batch_seed in 0usize..100,
        stage_idx in 0usize..4,
        method_idx in 0usize..6,
    ) {
        let method = STREAMABLE[method_idx];
        let (batches, script) = mutation_script();
        let kill_at = (batch_seed % batches.len(), STAGES[stage_idx]);
        let config =
            SessionConfig::exhaustive(method).with_compaction(CompactionPolicy::manual());
        let baseline =
            run_mutated_with_kill(&batches, &script, config.clone(), Some(budget), None);
        let resumed =
            run_mutated_with_kill(&batches, &script, config, Some(budget), Some(kill_at));
        prop_assert_eq!(resumed, baseline);
    }
}

/// The checkpoint also persists the *reports* cursor: the resumed session
/// numbers its next epoch exactly where the original stopped.
#[test]
fn emission_cursor_survives_the_file() {
    let rows = toy_rows(6);
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    session.ingest_batch(rows[..3].to_vec());
    session.emit_epoch(Some(2));
    session.ingest_batch(rows[3..].to_vec());
    session.emit_epoch(Some(2));

    let bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
    let restored = SessionCheckpoint::from_store(&Store::from_bytes(&bytes).unwrap()).unwrap();
    assert_eq!(restored.state.reports.len(), 2);
    assert_eq!(restored.state.emitted.len(), session.emitted().len());
    let mut resumed = restored.resume();
    assert_eq!(resumed.reports().len(), 2);
    let outcome = resumed.emit_epoch(None);
    assert_eq!(outcome.report.epoch, 3, "epoch numbering continues");
}

/// The sparse-accumulator scratch is **deliberately not persisted**: the
/// dense accumulator arrays and touched lists inside the kernel-backed
/// methods (`WeightAccumulator` in PBS/PPS, the co-occurrence scratch in
/// LS-PSN/GS-PSN) are pure functions of the substrates they sweep, so the
/// wire format carries only the substrates and `SessionState` — a
/// rehydrated session re-allocates zeroed scratch and rebuilds it on the
/// next sweep. This test pins the invariant where it would bite hardest:
/// tight budgets leave most of each epoch's weighted frontier pending (the
/// scratch was hot mid-schedule when the process died), yet every resumed
/// continuation is bit-identical to the uninterrupted run, at every kill
/// point. If any scratch state had needed to survive the crash, some
/// continuation would diverge.
#[test]
fn kernel_scratch_is_rebuilt_not_persisted() {
    let rows = toy_rows(18);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(3).map(|c| c.to_vec()).collect();
    for method in [ProgressiveMethod::Pbs, ProgressiveMethod::Pps] {
        let config = SessionConfig::exhaustive(method);
        // Budget 1: the kill always lands with the kernel's frontier
        // almost entirely unemitted.
        for budget in [1u64, 5] {
            let baseline = run_with_kill(
                ProfileCollectionBuilder::dirty().build(),
                &batches,
                config.clone(),
                Some(budget),
                None,
            );
            for kill_after in 1..=batches.len() {
                let resumed = run_with_kill(
                    ProfileCollectionBuilder::dirty().build(),
                    &batches,
                    config.clone(),
                    Some(budget),
                    Some(kill_after),
                );
                assert_eq!(
                    resumed, baseline,
                    "{method:?} budget {budget}: scratch rebuild diverged after epoch {kill_after}"
                );
            }
        }
    }
}
