//! Kill/resume equivalence: a budgeted streaming run killed at an
//! arbitrary epoch boundary and resumed from its checkpoint **file**
//! emits, epoch for epoch, exactly the `(pair, weight)` sequences the
//! uninterrupted run emits — for every streamable method, both ER kinds,
//! arbitrary batch splits and arbitrary kill points.
//!
//! (PSN is schema-based and cannot stream — `ProgressiveSession` rejects
//! it by construction — so "all methods" here is the six schema-agnostic
//! ones; the seventh is covered by the batch equivalence suite in
//! `sper-core`.)

use proptest::prelude::*;
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, Pair, ProfileCollection, ProfileCollectionBuilder};
use sper_store::{SessionCheckpoint, Store};
use sper_stream::{ProgressiveSession, SessionConfig};

const STREAMABLE: [ProgressiveMethod; 6] = [
    ProgressiveMethod::SaPsn,
    ProgressiveMethod::SaPsab,
    ProgressiveMethod::LsPsn,
    ProgressiveMethod::GsPsn,
    ProgressiveMethod::Pbs,
    ProgressiveMethod::Pps,
];

/// One epoch's emissions, fully observable.
type Emissions = Vec<(Pair, f64)>;

fn emissions(outcome: &sper_stream::EpochOutcome) -> Emissions {
    outcome
        .comparisons
        .iter()
        .map(|c| (c.pair, c.weight))
        .collect()
}

/// Runs `batches` through a fresh session, one epoch per batch, with the
/// given per-epoch budget; kills the run after `kill_after` epochs by
/// round-tripping a checkpoint through actual file bytes, then finishes
/// on the resumed session. Returns every epoch's emissions.
fn run_with_kill(
    initial: ProfileCollection,
    batches: &[Vec<Vec<Attribute>>],
    config: SessionConfig,
    budget: Option<u64>,
    kill_after: Option<usize>,
) -> Vec<Emissions> {
    let mut session = ProgressiveSession::new(initial, config);
    let mut out = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        session.ingest_batch(batch.clone());
        out.push(emissions(&session.emit_epoch(budget)));
        if kill_after == Some(i + 1) {
            // The full death-and-rebirth cycle: state → sections → bytes
            // → parse → validate → state.
            let bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
            let restored = SessionCheckpoint::from_store(
                &Store::from_bytes(&bytes).expect("container parses"),
            )
            .expect("checkpoint validates");
            session = restored.resume();
        }
    }
    // A final drain epoch with no ingest, so the tail after the last
    // batch is compared too.
    out.push(emissions(&session.emit_epoch(budget)));
    out
}

fn toy_rows(n: usize) -> Vec<Vec<Attribute>> {
    [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
        "frances black la baker",
        "joe green sf cook",
    ]
    .iter()
    .cycle()
    .take(n)
    .enumerate()
    .map(|(i, v)| vec![Attribute::new("text", format!("{v} row{}", i % 5))])
    .collect()
}

/// Exhaustive sweep on a fixed collection: every streamable method ×
/// every kill epoch, budgeted so emissions straddle epochs.
#[test]
fn every_method_every_kill_point_is_bit_identical() {
    let rows = toy_rows(8);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(2).map(|c| c.to_vec()).collect();
    for method in STREAMABLE {
        let config = SessionConfig::exhaustive(method);
        let baseline = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config.clone(),
            Some(3),
            None,
        );
        for kill_after in 1..=batches.len() {
            let resumed = run_with_kill(
                ProfileCollectionBuilder::dirty().build(),
                &batches,
                config.clone(),
                Some(3),
                Some(kill_after),
            );
            assert_eq!(
                resumed, baseline,
                "{method:?} diverged when killed after epoch {kill_after}"
            );
        }
    }
}

/// Clean-clean sessions (fixed `P1` base, streamed `P2`) resume
/// identically too.
#[test]
fn clean_clean_kill_resume_is_bit_identical() {
    let mut b = ProfileCollectionBuilder::clean_clean();
    b.add_profile([("n", "carl white ny tailor")]);
    b.add_profile([("n", "hellen white ml teacher")]);
    b.add_profile([("n", "frank black la baker")]);
    b.start_second_source();
    let base = b.build();
    let rows: Vec<Vec<Attribute>> = [
        "karl white ny tailor",
        "ellen white ml teacher",
        "frances black la baker",
        "emma white wi tailor",
    ]
    .iter()
    .map(|v| vec![Attribute::new("n", *v)])
    .collect();
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(1).map(|c| c.to_vec()).collect();
    for method in [ProgressiveMethod::Pps, ProgressiveMethod::GsPsn] {
        let config = SessionConfig::exhaustive(method);
        let baseline = run_with_kill(base.clone(), &batches, config.clone(), Some(2), None);
        for kill_after in 1..=batches.len() {
            let resumed = run_with_kill(
                base.clone(),
                &batches,
                config.clone(),
                Some(2),
                Some(kill_after),
            );
            assert_eq!(
                resumed, baseline,
                "{method:?} (clean-clean) diverged at kill {kill_after}"
            );
        }
    }
}

/// Paper-default (pruned) configurations checkpoint exactly too: the
/// restored substrate is the same object, so even non-monotone pruning
/// decisions replay identically.
#[test]
fn paper_default_config_kill_resume_is_bit_identical() {
    let rows = toy_rows(10);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(3).map(|c| c.to_vec()).collect();
    for method in STREAMABLE {
        let config = SessionConfig::new(method);
        let baseline = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config.clone(),
            Some(4),
            None,
        );
        for kill_after in 1..=batches.len() {
            let resumed = run_with_kill(
                ProfileCollectionBuilder::dirty().build(),
                &batches,
                config.clone(),
                Some(4),
                Some(kill_after),
            );
            assert_eq!(
                resumed, baseline,
                "{method:?} (paper defaults) diverged at kill {kill_after}"
            );
        }
    }
}

proptest! {
    /// Arbitrary collections, batch splits, budgets and kill points: the
    /// killed-and-resumed run's concatenated emission sequence equals the
    /// uninterrupted run's, for every streamable method.
    #[test]
    fn kill_resume_property(
        values in proptest::collection::vec("[a-e ]{1,8}", 2..14),
        split in 1usize..5,
        budget in 1u64..6,
        kill_seed in 0usize..1000,
        method_idx in 0usize..6,
    ) {
        let method = STREAMABLE[method_idx];
        let rows: Vec<Vec<Attribute>> = values
            .iter()
            .map(|v| vec![Attribute::new("t", v.clone())])
            .collect();
        let batches: Vec<Vec<Vec<Attribute>>> =
            rows.chunks(split).map(|c| c.to_vec()).collect();
        let kill_after = 1 + kill_seed % batches.len();
        let config = SessionConfig::exhaustive(method);
        let baseline = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config.clone(),
            Some(budget),
            None,
        );
        let resumed = run_with_kill(
            ProfileCollectionBuilder::dirty().build(),
            &batches,
            config,
            Some(budget),
            Some(kill_after),
        );
        prop_assert_eq!(resumed, baseline);
    }
}

/// The checkpoint also persists the *reports* cursor: the resumed session
/// numbers its next epoch exactly where the original stopped.
#[test]
fn emission_cursor_survives_the_file() {
    let rows = toy_rows(6);
    let mut session = ProgressiveSession::new(
        ProfileCollectionBuilder::dirty().build(),
        SessionConfig::exhaustive(ProgressiveMethod::Pps),
    );
    session.ingest_batch(rows[..3].to_vec());
    session.emit_epoch(Some(2));
    session.ingest_batch(rows[3..].to_vec());
    session.emit_epoch(Some(2));

    let bytes = SessionCheckpoint::of(&session).to_store().to_bytes();
    let restored = SessionCheckpoint::from_store(&Store::from_bytes(&bytes).unwrap()).unwrap();
    assert_eq!(restored.state.reports.len(), 2);
    assert_eq!(restored.state.emitted.len(), session.emitted().len());
    let mut resumed = restored.resume();
    assert_eq!(resumed.reports().len(), 2);
    let outcome = resumed.emit_epoch(None);
    assert_eq!(outcome.report.epoch, 3, "epoch numbering continues");
}

/// The sparse-accumulator scratch is **deliberately not persisted**: the
/// dense accumulator arrays and touched lists inside the kernel-backed
/// methods (`WeightAccumulator` in PBS/PPS, the co-occurrence scratch in
/// LS-PSN/GS-PSN) are pure functions of the substrates they sweep, so the
/// wire format carries only the substrates and `SessionState` — a
/// rehydrated session re-allocates zeroed scratch and rebuilds it on the
/// next sweep. This test pins the invariant where it would bite hardest:
/// tight budgets leave most of each epoch's weighted frontier pending (the
/// scratch was hot mid-schedule when the process died), yet every resumed
/// continuation is bit-identical to the uninterrupted run, at every kill
/// point. If any scratch state had needed to survive the crash, some
/// continuation would diverge.
#[test]
fn kernel_scratch_is_rebuilt_not_persisted() {
    let rows = toy_rows(18);
    let batches: Vec<Vec<Vec<Attribute>>> = rows.chunks(3).map(|c| c.to_vec()).collect();
    for method in [ProgressiveMethod::Pbs, ProgressiveMethod::Pps] {
        let config = SessionConfig::exhaustive(method);
        // Budget 1: the kill always lands with the kernel's frontier
        // almost entirely unemitted.
        for budget in [1u64, 5] {
            let baseline = run_with_kill(
                ProfileCollectionBuilder::dirty().build(),
                &batches,
                config.clone(),
                Some(budget),
                None,
            );
            for kill_after in 1..=batches.len() {
                let resumed = run_with_kill(
                    ProfileCollectionBuilder::dirty().build(),
                    &batches,
                    config.clone(),
                    Some(budget),
                    Some(kill_after),
                );
                assert_eq!(
                    resumed, baseline,
                    "{method:?} budget {budget}: scratch rebuild diverged after epoch {kill_after}"
                );
            }
        }
    }
}
