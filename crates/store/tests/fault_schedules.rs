//! The headline robustness invariant, driven by fault schedules: under
//! **any** failpoint schedule over the persistence sites, a budgeted
//! (optionally mutated) streaming run with a `Continue`-policy
//! [`CheckpointWriter`] either completes with emissions bit-identical to
//! the unfaulted baseline, or — killed at an arbitrary epoch — resumes
//! from the rotated last-good generation and emits exactly the suffix
//! the uninterrupted run would have. Never a panic, and once a single
//! checkpoint has committed, resume-ability is never lost again.
//!
//! The grid mirrors `resume.rs`: all six streamable methods × dirty and
//! clean-clean ER × lazy (manual, tombstones ride the checkpoint) and
//! compacted (auto at every epoch) tombstone policies.

use proptest::prelude::*;
use sper_core::ProgressiveMethod;
use sper_model::{Attribute, Pair, ProfileCollection, ProfileCollectionBuilder, ProfileId};
use sper_store::{
    prev_path, tmp_path, CheckpointOutcome, CheckpointWriter, OnCheckpointFailure, RetryPolicy,
    SessionCheckpoint, StoreError,
};
use sper_stream::{CompactionPolicy, ProgressiveSession, SessionConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const STREAMABLE: [ProgressiveMethod; 6] = [
    ProgressiveMethod::SaPsn,
    ProgressiveMethod::SaPsab,
    ProgressiveMethod::LsPsn,
    ProgressiveMethod::GsPsn,
    ProgressiveMethod::Pbs,
    ProgressiveMethod::Pps,
];

type Emissions = Vec<(Pair, f64)>;

fn emissions(outcome: &sper_stream::EpochOutcome) -> Emissions {
    outcome
        .comparisons
        .iter()
        .map(|c| (c.pair, c.weight))
        .collect()
}

/// Unique scratch dir per invocation — proptest cases in one process
/// must not share checkpoint files.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("sper-faultsched-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn toy_rows(n: usize) -> Vec<Vec<Attribute>> {
    [
        "carl white ny tailor",
        "karl white ny tailor",
        "hellen white ml teacher",
        "ellen white ml teacher",
        "emma white wi tailor",
        "frank black la baker",
        "frances black la baker",
        "joe green sf cook",
    ]
    .iter()
    .cycle()
    .take(n)
    .enumerate()
    .map(|(i, v)| vec![Attribute::new("text", format!("{v} row{}", i % 5))])
    .collect()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Er {
    Dirty,
    CleanClean,
}

/// Initial collection + streamed batches per ER kind. Both shapes give
/// four batches, so kill indices line up across the grid.
fn setup(er: Er) -> (ProfileCollection, Vec<Vec<Vec<Attribute>>>) {
    match er {
        Er::Dirty => (
            ProfileCollectionBuilder::dirty().build(),
            toy_rows(12).chunks(3).map(|c| c.to_vec()).collect(),
        ),
        Er::CleanClean => {
            let mut b = ProfileCollectionBuilder::clean_clean();
            b.add_profile([("n", "carl white ny tailor")]);
            b.add_profile([("n", "hellen white ml teacher")]);
            b.add_profile([("n", "frank black la baker")]);
            b.start_second_source();
            let rows: Vec<Vec<Attribute>> = [
                "karl white ny tailor",
                "ellen white ml teacher",
                "frances black la baker",
                "emma white wi tailor",
            ]
            .iter()
            .map(|v| vec![Attribute::new("n", *v)])
            .collect();
            (b.build(), rows.chunks(1).map(|c| c.to_vec()).collect())
        }
    }
}

/// The fixed per-batch mutation ops for dirty runs (ids follow the
/// `resume.rs` accounting: batches of 3 ingest ids 0–11, the batch-1
/// amend re-ingests id 4 as id 6). Clean-clean runs skip mutations.
fn apply_ops(session: &mut ProgressiveSession, batch: usize) {
    match batch {
        1 => {
            session.retract(ProfileId(1));
            session.amend(ProfileId(4), vec![Attribute::new("text", "amended row 4")]);
        }
        2 => {
            session.retract(ProfileId(6));
            session.retract(ProfileId(0));
        }
        3 => {
            session.amend(ProfileId(2), vec![Attribute::new("text", "amended row 2")]);
        }
        _ => {}
    }
}

/// An instant-clock writer with the `Continue` policy: faults degrade
/// checkpoints, never the run.
fn continue_writer(path: &Path) -> CheckpointWriter {
    CheckpointWriter::new(path)
        .with_retry(
            RetryPolicy::new(2, std::time::Duration::ZERO, std::time::Duration::ZERO)
                .with_sleeper(|_| {}),
        )
        .with_on_failure(OnCheckpointFailure::Continue)
}

/// The unfaulted reference: every epoch's emissions, batches then a
/// final drain, no checkpointing.
fn baseline(er: Er, config: &SessionConfig, budget: u64) -> Vec<Emissions> {
    let (initial, batches) = setup(er);
    let mut session = ProgressiveSession::new(initial, config.clone());
    let mut out = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        session.ingest_batch(batch.clone());
        if er == Er::Dirty {
            apply_ops(&mut session, i);
        }
        out.push(emissions(&session.emit_epoch(Some(budget))));
    }
    out.push(emissions(&session.emit_epoch(Some(budget))));
    out
}

/// Runs the faulted leg and the post-kill resume leg, asserting the
/// headline invariant. `spec` is armed for the faulted leg only (the
/// restarted process comes up clean); `kill` is the last batch index the
/// dying process runs.
fn check_schedule(tag: &str, er: Er, config: &SessionConfig, budget: u64, spec: &str, kill: usize) {
    let d = fresh_dir(tag);
    let path = d.join("ckpt.sper");
    let base = baseline(er, config, budget);
    let (initial, batches) = setup(er);
    assert!(kill < batches.len());

    sper_obs::fault::arm(spec).expect("schedule parses");
    let mut session = ProgressiveSession::new(initial, config.clone());
    let mut writer = continue_writer(&path);
    let mut last_saved: Option<usize> = None;
    let mut faulted = Vec::new();
    for (i, batch) in batches.iter().take(kill + 1).enumerate() {
        session.ingest_batch(batch.clone());
        if er == Er::Dirty {
            apply_ops(&mut session, i);
        }
        faulted.push(emissions(&session.emit_epoch(Some(budget))));
        match writer.save(&session).expect("Continue policy never errors") {
            CheckpointOutcome::Saved => last_saved = Some(i),
            CheckpointOutcome::FailedContinuing => {}
        }
        if last_saved.is_some() {
            // Once one checkpoint committed, no later fault — failed
            // rotation, torn tmp, anything — may lose resume-ability.
            CheckpointWriter::resume(&path)
                .unwrap_or_else(|e| panic!("{spec:?} lost the last-good generation: {e}"));
        }
    }
    drop(session); // the kill
    sper_obs::fault::disarm();

    // Persistence faults never perturb what the live run emitted.
    assert_eq!(
        faulted.as_slice(),
        &base[..=kill],
        "{spec:?} perturbed the emission stream"
    );

    match last_saved {
        // Nothing ever committed: resume fails with a typed error (no
        // generation exists), and a from-scratch restart is the baseline
        // by construction.
        None => {
            assert!(
                CheckpointWriter::resume(&path).is_err(),
                "no save succeeded yet resume found a file"
            );
        }
        // Resume from the last good generation and re-run everything
        // after it: the suffix must be bit-identical to the baseline.
        Some(j) => {
            let (ckpt, _used_prev) = CheckpointWriter::resume(&path).expect("good generation");
            let mut resumed = ckpt.resume();
            let mut suffix = Vec::new();
            for (i, batch) in batches.iter().enumerate().skip(j + 1) {
                resumed.ingest_batch(batch.clone());
                if er == Er::Dirty {
                    apply_ops(&mut resumed, i);
                }
                suffix.push(emissions(&resumed.emit_epoch(Some(budget))));
            }
            suffix.push(emissions(&resumed.emit_epoch(Some(budget))));
            assert_eq!(
                suffix.as_slice(),
                &base[j + 1..],
                "{spec:?} resumed from epoch {} but the suffix diverged",
                j + 1
            );
        }
    }
    let _ = std::fs::remove_dir_all(&d);
}

/// Every streamable method × both ER kinds × lazy and eagerly-compacted
/// tombstones, against a deliberately nasty fixed schedule mixing
/// exhausting-retries errors, rotation failures, and torn section
/// writes.
#[test]
fn every_method_er_and_tombstone_policy_survives_a_nasty_schedule() {
    let _guard = sper_obs::fault::arm_scoped("").unwrap();
    let spec =
        "stream.checkpoint=3*err(io);store.rename=1in4*err(full);store.write.section=2*partial(7)";
    for method in STREAMABLE {
        for er in [Er::Dirty, Er::CleanClean] {
            for policy in [CompactionPolicy::manual(), CompactionPolicy::at_ratio(0.0)] {
                let config = SessionConfig::exhaustive(method).with_compaction(policy);
                check_schedule("grid", er, &config, 3, spec, 3);
            }
        }
    }
}

/// A schedule that defeats every single save (first attempt + both
/// retries, every time): the run still completes unperturbed, and resume
/// correctly reports that no generation exists.
#[test]
fn total_checkpoint_outage_still_completes_the_run() {
    let _guard = sper_obs::fault::arm_scoped("").unwrap();
    let config = SessionConfig::exhaustive(ProgressiveMethod::Pps)
        .with_compaction(CompactionPolicy::manual());
    check_schedule(
        "outage",
        Er::Dirty,
        &config,
        3,
        "stream.checkpoint=err(io)",
        3,
    );
}

const SITES: [&str; 4] = [
    "store.write.section",
    "store.fsync",
    "store.rename",
    "stream.checkpoint",
];

/// Decodes one `(site, trigger, action)` draw into spec-grammar text.
fn spec_entry(site_idx: usize, trigger: u32, action: usize) -> String {
    let site = SITES[site_idx % SITES.len()];
    // 0..3 → fire the first 1–3 hits; 3..6 → fire the last 1 of every
    // 2–4-hit window (the trigger that skips early hits).
    let trigger = if trigger < 3 {
        format!("{}*", trigger + 1)
    } else {
        format!("1in{}*", trigger - 1)
    };
    let action = match action {
        0 => "err(io)".to_string(),
        1 => "err(full)".to_string(),
        n => format!("partial({})", n - 2),
    };
    format!("{site}={trigger}{action}")
}

proptest! {
    /// Arbitrary schedules over the persistence sites × method × ER kind
    /// × tombstone policy × budget × kill epoch: the headline invariant
    /// holds for all of them.
    #[test]
    fn any_fault_schedule_completes_or_resumes_bit_identically(
        entries in proptest::collection::vec((0usize..4, 0u32..6, 0usize..42), 1..4),
        method_idx in 0usize..6,
        dirty_seed in 0usize..2,
        lazy_seed in 0usize..2,
        budget in 1u64..6,
        kill_seed in 0usize..100,
    ) {
        let spec = entries
            .iter()
            .map(|&(s, t, a)| spec_entry(s, t, a))
            .collect::<Vec<_>>()
            .join(";");
        let er = if dirty_seed == 0 { Er::Dirty } else { Er::CleanClean };
        let policy = if lazy_seed == 0 {
            CompactionPolicy::manual()
        } else {
            CompactionPolicy::at_ratio(0.0)
        };
        let config =
            SessionConfig::exhaustive(STREAMABLE[method_idx]).with_compaction(policy);
        let _guard = sper_obs::fault::arm_scoped("").unwrap();
        check_schedule("prop", er, &config, budget, &spec, kill_seed % 4);
    }
}

// ---------------------------------------------------------------------
// Rotation kill points, exercised with real checkpoint files.
// ---------------------------------------------------------------------

/// A session checkpointed after `epochs` budgeted epochs — generations
/// are told apart by their report count.
fn checkpoint_after(epochs: usize) -> (ProgressiveSession, SessionCheckpoint) {
    let (initial, batches) = setup(Er::Dirty);
    let mut session =
        ProgressiveSession::new(initial, SessionConfig::exhaustive(ProgressiveMethod::Pps));
    for batch in batches.iter().take(epochs) {
        session.ingest_batch(batch.clone());
        session.emit_epoch(Some(3));
    }
    let ckpt = SessionCheckpoint::of(&session);
    (session, ckpt)
}

fn epochs_on_disk(path: &Path) -> (usize, bool) {
    let (ckpt, used_prev) = CheckpointWriter::resume(path).expect("a readable generation");
    (ckpt.state.reports.len(), used_prev)
}

/// Kill between the two renames of a rotation (`path → .prev` done,
/// `tmp → path` not): the primary is gone, but resume falls back to the
/// generation that just became `.prev`.
#[test]
fn kill_between_the_two_renames_falls_back_to_prev() {
    let _guard = sper_obs::fault::arm_scoped("").unwrap();
    let d = fresh_dir("midrot");
    let path = d.join("ckpt.sper");
    let (session1, ckpt1) = checkpoint_after(1);
    drop(session1);
    let (session2, ckpt2) = checkpoint_after(2);
    drop(session2);
    let mut writer = CheckpointWriter::new(&path).with_retry(RetryPolicy::none());
    writer.save_checkpoint(&ckpt1).unwrap();
    writer.save_checkpoint(&ckpt2).unwrap();
    assert_eq!(epochs_on_disk(&path), (2, false));

    // `1in2` fires on the *second* rename of the next rotation: the
    // demotion to `.prev` runs, the promotion of the new tmp does not.
    sper_obs::fault::arm("store.rename=1in2*err(io)").unwrap();
    let (_, ckpt3) = checkpoint_after(3);
    let err = writer.save_checkpoint(&ckpt3).unwrap_err();
    assert!(
        matches!(err, StoreError::Io(_)),
        "typed, not a panic: {err:?}"
    );
    sper_obs::fault::disarm();

    assert!(!path.exists(), "the kill landed between the renames");
    let (epochs, used_prev) = epochs_on_disk(&path);
    assert_eq!(
        (epochs, used_prev),
        (2, true),
        "resume takes the rotated last-good"
    );
    let _ = std::fs::remove_dir_all(&d);
}

/// The same mid-rotation kill, but with the default retry policy: the
/// second attempt finds the demotion already done and completes the
/// promotion — the rotation self-heals and no generation is lost.
#[test]
fn retry_completes_a_half_done_rotation() {
    let _guard = sper_obs::fault::arm_scoped("").unwrap();
    let d = fresh_dir("heal");
    let path = d.join("ckpt.sper");
    let mut writer = continue_writer(&path);
    let (_, ckpt1) = checkpoint_after(1);
    let (_, ckpt2) = checkpoint_after(2);
    writer.save_checkpoint(&ckpt1).unwrap();
    writer.save_checkpoint(&ckpt2).unwrap();

    sper_obs::fault::arm("store.rename=1in2*err(io)").unwrap();
    let (_, ckpt3) = checkpoint_after(3);
    assert_eq!(
        writer.save_checkpoint(&ckpt3).unwrap(),
        CheckpointOutcome::Saved,
        "the retry finishes the interrupted rotation"
    );
    sper_obs::fault::disarm();
    assert_eq!(epochs_on_disk(&path), (3, false));
    assert_eq!(
        epochs_on_disk(&prev_path(&path)),
        (2, false),
        ".prev kept the demoted generation"
    );
    let _ = std::fs::remove_dir_all(&d);
}

/// A torn section write dies in the tmp file: both committed generations
/// are untouched, resume does not even need the fallback, and the torn
/// tmp is purged by the open.
#[test]
fn torn_tmp_never_infects_either_generation() {
    let _guard = sper_obs::fault::arm_scoped("").unwrap();
    let d = fresh_dir("torn-tmp");
    let path = d.join("ckpt.sper");
    let mut writer = CheckpointWriter::new(&path).with_retry(RetryPolicy::none());
    let (_, ckpt1) = checkpoint_after(1);
    let (_, ckpt2) = checkpoint_after(2);
    writer.save_checkpoint(&ckpt1).unwrap();
    writer.save_checkpoint(&ckpt2).unwrap();

    sper_obs::fault::arm("store.write.section=1*partial(9)").unwrap();
    let (_, ckpt3) = checkpoint_after(3);
    assert!(writer.save_checkpoint(&ckpt3).is_err());
    sper_obs::fault::disarm();

    assert!(tmp_path(&path).exists(), "the torn write died in the tmp");
    assert_eq!(
        epochs_on_disk(&path),
        (2, false),
        "primary untouched, no fallback"
    );
    assert!(!tmp_path(&path).exists(), "open purged the torn tmp");
    assert_eq!(epochs_on_disk(&prev_path(&path)), (1, false));
    let _ = std::fs::remove_dir_all(&d);
}

/// Both generations corrupted on disk (the double-fault outside the
/// rotation's guarantees): resume is a typed container error naming the
/// primary file — never a panic.
#[test]
fn both_generations_corrupt_is_a_typed_error() {
    let _guard = sper_obs::fault::arm_scoped("").unwrap();
    let d = fresh_dir("double");
    let path = d.join("ckpt.sper");
    let mut writer = CheckpointWriter::new(&path);
    let (_, ckpt1) = checkpoint_after(1);
    let (_, ckpt2) = checkpoint_after(2);
    writer.save_checkpoint(&ckpt1).unwrap();
    writer.save_checkpoint(&ckpt2).unwrap();

    // Flip a payload byte near the end of each generation: framing still
    // parses, the section CRC does not.
    for p in [path.clone(), prev_path(&path)] {
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
    }
    match CheckpointWriter::resume(&path) {
        Err(StoreError::ChecksumMismatch { .. }) => {}
        other => panic!("expected the primary's typed CRC error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&d);
}
