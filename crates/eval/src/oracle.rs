//! Progressive ER with a perfect, transitive oracle — the crowdsourced
//! setting the paper discusses in §2 (Vesdapunt et al., Firmani et al.).
//!
//! The paper's own methods deliberately assume *nothing* about the match
//! function; this module implements the complementary setting as an
//! extension: the "crowd" answers pair queries perfectly, answers are
//! transitive (`p1≡p2 ∧ p2≡p3 ⇒ p1≡p3`), and deducible comparisons are
//! never issued. Wrapping any progressive method with the oracle therefore
//! (a) saves queries and (b) lifts progressive recall, quantifying how much
//! the paper's non-oracle setting leaves on the table.

use crate::curve::RecallCurve;
use sper_core::ProgressiveEr;
use sper_model::{GroundTruth, UnionFind};

/// Outcome of an oracle-assisted progressive run.
#[derive(Debug, Clone)]
pub struct OracleRunResult {
    /// Method acronym.
    pub method: &'static str,
    /// Recall (including transitively deduced matches) per *issued query*.
    pub curve: RecallCurve,
    /// Emitted comparisons whose outcome was already deducible and were
    /// therefore not queried.
    pub deduced_skips: u64,
    /// Queries actually issued to the oracle.
    pub queries: u64,
    /// Queries the oracle answered positively (cluster merges). Transitive
    /// deduction shows up as `positive_queries < matches_found`.
    pub positive_queries: u64,
}

/// Runs `method` against a perfect transitive oracle until `max_queries`
/// queries have been issued (or the method is exhausted).
///
/// Emission semantics: every comparison the method produces is inspected;
/// if both endpoints are already in the same confirmed cluster, the
/// comparison is *deduced* (skipped, free). Otherwise the oracle is
/// queried; positive answers merge the clusters, and recall counts every
/// ground-truth pair already implied by the confirmed clusters.
pub fn run_with_oracle(
    mut method: Box<dyn ProgressiveEr + '_>,
    truth: &GroundTruth,
    n_profiles: usize,
    max_queries: u64,
) -> OracleRunResult {
    let name = method.method_name();
    let mut uf = UnionFind::new(n_profiles);
    // Confirmed cluster sizes drive the deduced-match count: merging
    // clusters of sizes a and b confirms a·b new pairs.
    let mut cluster_size: Vec<u64> = vec![1; n_profiles];
    let mut confirmed_pairs: u64 = 0;
    let mut queries: u64 = 0;
    let mut positive_queries: u64 = 0;
    let mut deduced_skips: u64 = 0;
    let mut match_indices: Vec<u64> = Vec::new();
    let total = truth.num_matches() as u64;

    while queries < max_queries && confirmed_pairs < total {
        let Some(c) = method.next() else { break };
        let (a, b) = (c.pair.first.index(), c.pair.second.index());
        if uf.connected(a, b) {
            deduced_skips += 1;
            continue;
        }
        queries += 1;
        if truth.is_match_pair(c.pair) {
            positive_queries += 1;
            let (ra, rb) = (uf.find(a), uf.find(b));
            let gained = cluster_size[ra] * cluster_size[rb];
            uf.union(a, b);
            let root = uf.find(a);
            cluster_size[root] = cluster_size[ra] + cluster_size[rb];
            // Each of the `gained` newly implied pairs is credited to this
            // query; the curve stores one index per found match.
            for _ in 0..gained {
                confirmed_pairs += 1;
                if confirmed_pairs <= total {
                    match_indices.push(queries);
                }
            }
        }
    }

    OracleRunResult {
        method: name,
        curve: RecallCurve::new(truth.num_matches(), queries, match_indices),
        deduced_skips,
        queries,
        positive_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_blocking::{TokenBlocking, WeightingScheme};
    use sper_core::pbs::Pbs;
    use sper_core::sa_psn::SaPsn;

    #[test]
    fn oracle_deduces_transitive_matches() {
        // Fig. 3 truth: {p1,p2,p3} needs only 2 queries to confirm all 3
        // pairs; the third pair is deduced.
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let blocks = TokenBlocking::default().build(&profiles);
        let pbs = Box::new(Pbs::from_blocks(blocks, WeightingScheme::Arcs));
        let result = run_with_oracle(pbs, &truth, profiles.len(), 1_000);
        assert_eq!(result.curve.matches_found(), truth.num_matches());
        // 4 pairs confirmed with exactly 3 positive queries (2 for the
        // triple + 1 for the pair): one pair was transitively deduced.
        assert_eq!(result.positive_queries, 3);
        assert!(
            (result.positive_queries as usize) < result.curve.matches_found(),
            "transitivity must save at least one positive query"
        );
    }

    #[test]
    fn oracle_lifts_progressive_recall_of_naive_methods() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let sa = Box::new(SaPsn::new(&profiles, 7));
        let with_oracle = run_with_oracle(sa, &truth, profiles.len(), 1_000);
        assert_eq!(with_oracle.curve.matches_found(), truth.num_matches());
        // The 3-cluster needs only 2 positive answers for its 3 pairs.
        assert!((with_oracle.positive_queries as usize) < truth.num_matches());
    }

    #[test]
    fn query_budget_respected() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let sa = Box::new(SaPsn::new(&profiles, 7));
        let result = run_with_oracle(sa, &truth, profiles.len(), 3);
        assert!(result.queries <= 3);
    }
}
