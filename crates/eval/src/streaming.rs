//! Epoch-annotated recall evaluation for streaming (ingest-while-resolving)
//! runs: the `sper-stream` session emits comparisons in *epochs* — ingest a
//! batch, re-prioritize, emit — and this module assembles the cumulative
//! emissions into a [`RecallCurve`] whose epoch boundaries are retained, so
//! progressiveness can be judged per ingest step as well as overall.
//!
//! Recall is always measured against the ground truth of the *final*
//! collection: early epochs cannot have found matches involving profiles
//! that had not arrived yet, which is exactly the latency the curve makes
//! visible (the Same Eventual Quality requirement of §3.1 says the *end*
//! state must agree with the batch run, not the path to it).

use crate::curve::RecallCurve;
use serde::Serialize;
use sper_model::{GroundTruth, Pair};
use std::collections::HashSet;

/// One epoch of a streaming run, as fed to [`streaming_recall`].
#[derive(Debug, Clone)]
pub struct StreamEpoch {
    /// Profiles in the collection at the end of the epoch.
    pub profiles_total: usize,
    /// Comparisons newly emitted during the epoch (already deduplicated
    /// across epochs by the session; repeats are ignored defensively).
    pub pairs: Vec<Pair>,
}

/// Summary of one epoch inside a [`StreamingRecall`].
#[derive(Debug, Clone, Serialize)]
pub struct EpochMark {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Profiles in the collection at the end of the epoch.
    pub profiles_total: usize,
    /// Cumulative emissions at the end of the epoch.
    pub emissions_end: u64,
    /// New matches found during the epoch.
    pub new_matches: usize,
    /// Recall against the final ground truth at the end of the epoch.
    pub recall: f64,
}

/// A recall curve over the cumulative emissions of a streaming run, plus
/// the per-epoch boundaries.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingRecall {
    /// The cumulative recall curve (emission indices are global across
    /// epochs).
    pub curve: RecallCurve,
    /// One mark per epoch, in order.
    pub epochs: Vec<EpochMark>,
}

impl StreamingRecall {
    /// Recall at the end of epoch `i` (0-based index into `epochs`).
    pub fn recall_after_epoch(&self, i: usize) -> f64 {
        self.epochs[i].recall
    }

    /// Final recall of the whole run.
    pub fn final_recall(&self) -> f64 {
        self.curve.final_recall()
    }
}

/// Folds per-epoch emissions into an epoch-annotated recall curve against
/// the final ground truth.
pub fn streaming_recall(epochs: &[StreamEpoch], truth: &GroundTruth) -> StreamingRecall {
    let mut emitted: HashSet<Pair> = HashSet::new();
    let mut found: HashSet<Pair> = HashSet::with_capacity(truth.num_matches());
    let mut match_indices: Vec<u64> = Vec::new();
    let mut marks: Vec<EpochMark> = Vec::new();
    let mut emissions: u64 = 0;

    for (i, epoch) in epochs.iter().enumerate() {
        let found_before = found.len();
        for &pair in &epoch.pairs {
            if !emitted.insert(pair) {
                continue;
            }
            emissions += 1;
            if truth.is_match_pair(pair) && found.insert(pair) {
                match_indices.push(emissions);
            }
        }
        marks.push(EpochMark {
            epoch: i + 1,
            profiles_total: epoch.profiles_total,
            emissions_end: emissions,
            new_matches: found.len() - found_before,
            recall: if truth.num_matches() == 0 {
                1.0
            } else {
                found.len() as f64 / truth.num_matches() as f64
            },
        });
    }

    StreamingRecall {
        curve: RecallCurve::new(truth.num_matches(), emissions, match_indices),
        epochs: marks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::ProfileId;

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    fn truth() -> GroundTruth {
        GroundTruth::from_pairs(6, [pair(0, 1), pair(2, 3), pair(4, 5)])
    }

    #[test]
    fn epochs_annotate_the_cumulative_curve() {
        let epochs = vec![
            StreamEpoch {
                profiles_total: 2,
                pairs: vec![pair(0, 1)],
            },
            StreamEpoch {
                profiles_total: 4,
                pairs: vec![pair(1, 2), pair(2, 3)],
            },
            StreamEpoch {
                profiles_total: 6,
                pairs: vec![pair(4, 5), pair(0, 4)],
            },
        ];
        let r = streaming_recall(&epochs, &truth());
        assert_eq!(r.curve.emissions(), 5);
        assert_eq!(r.curve.matches_found(), 3);
        assert_eq!(r.final_recall(), 1.0);
        assert_eq!(r.epochs.len(), 3);
        assert!((r.recall_after_epoch(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.recall_after_epoch(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.epochs[1].emissions_end, 3);
        assert_eq!(r.epochs[2].new_matches, 1);
    }

    #[test]
    fn repeats_across_epochs_are_ignored() {
        let epochs = vec![
            StreamEpoch {
                profiles_total: 2,
                pairs: vec![pair(0, 1), pair(0, 1)],
            },
            StreamEpoch {
                profiles_total: 2,
                pairs: vec![pair(0, 1)],
            },
        ];
        let r = streaming_recall(&epochs, &truth());
        assert_eq!(r.curve.emissions(), 1);
        assert_eq!(r.curve.matches_found(), 1);
    }

    #[test]
    fn empty_truth_has_vacuous_recall() {
        let epochs = vec![StreamEpoch {
            profiles_total: 2,
            pairs: vec![pair(0, 1)],
        }];
        let t = GroundTruth::from_pairs(2, []);
        let r = streaming_recall(&epochs, &t);
        assert_eq!(r.epochs[0].recall, 1.0);
    }

    #[test]
    fn serializes_to_json() {
        let r = streaming_recall(
            &[StreamEpoch {
                profiles_total: 2,
                pairs: vec![pair(0, 1)],
            }],
            &truth(),
        );
        let json = serde::json::to_string(&r);
        assert!(json.contains("\"epochs\":["), "{json}");
        assert!(json.contains("\"emissions_end\":1"), "{json}");
    }
}
