//! Wall-clock experiments (Fig. 13): run a progressive method paired with a
//! *real* match function (edit distance = expensive, Jaccard = cheap) and
//! record recall as a function of elapsed time, including the
//! initialization time.

use sper_core::ProgressiveEr;
use sper_model::{GroundTruth, MatchFunction, Pair};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Options for a timed run.
#[derive(Debug, Clone, Copy)]
pub struct TimingOptions {
    /// Emission budget as a multiple of `|DP|`.
    pub max_ec_star: f64,
    /// Number of evenly spaced (in emissions) checkpoints to record.
    pub checkpoints: usize,
}

impl Default for TimingOptions {
    fn default() -> Self {
        Self {
            max_ec_star: 10.0,
            checkpoints: 20,
        }
    }
}

/// Result of a timed run: the recall trajectory over wall-clock time.
///
/// Round-trips through JSON (`Serialize` + `Deserialize`) for trajectory
/// merging across runs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TimedResult {
    /// Method acronym.
    pub method: String,
    /// Match function name.
    pub match_function: String,
    /// Initialization time (constructing the method).
    pub init_time: Duration,
    /// `(elapsed since start incl. init, recall)` checkpoints.
    pub trajectory: Vec<(Duration, f64)>,
    /// Total comparisons emitted.
    pub emissions: u64,
    /// Comparisons the match function labelled positive (distinct pairs).
    pub declared_matches: u64,
}

impl TimedResult {
    /// Recall at the end of the run.
    pub fn final_recall(&self) -> f64 {
        self.trajectory.last().map_or(0.0, |&(_, r)| r)
    }

    /// Time at which recall first reached `target` (None if never).
    pub fn time_to_recall(&self, target: f64) -> Option<Duration> {
        self.trajectory
            .iter()
            .find(|&&(_, r)| r >= target)
            .map(|&(t, _)| t)
    }
}

/// Builds the method (timed), then emits comparisons, applying `matcher` to
/// each one — so elapsed time includes both emission and match-function
/// cost, as in §7.3. Recall is measured against the ground truth (the match
/// function's own verdict is recorded but does not gate recall, matching
/// the paper's footnote 10: "the outcome of the match function is assumed
/// to be identical to the known ground truth").
pub fn run_timed<'a, F, M>(
    build: F,
    matcher: &M,
    truth: &GroundTruth,
    options: TimingOptions,
) -> TimedResult
where
    F: FnOnce() -> Box<dyn ProgressiveEr + 'a>,
    M: MatchFunction + ?Sized,
{
    let start = Instant::now();
    let mut method = build();
    let init_time = start.elapsed();

    let budget = ((options.max_ec_star * truth.num_matches() as f64).ceil() as u64).max(1);
    let step = (budget / options.checkpoints.max(1) as u64).max(1);

    let mut found: HashSet<Pair> = HashSet::new();
    let mut declared: HashSet<Pair> = HashSet::new();
    let mut trajectory: Vec<(Duration, f64)> = vec![(init_time, 0.0)];
    let mut emitted = 0u64;

    while emitted < budget {
        let Some(c) = method.next() else { break };
        emitted += 1;
        // Apply the (possibly expensive) match function — this is the cost
        // being measured.
        if matcher.matches(c.pair.first, c.pair.second) {
            declared.insert(c.pair);
        }
        if truth.is_match_pair(c.pair) {
            found.insert(c.pair);
        }
        if emitted.is_multiple_of(step) || emitted == budget {
            let recall = if truth.num_matches() == 0 {
                1.0
            } else {
                found.len() as f64 / truth.num_matches() as f64
            };
            trajectory.push((start.elapsed(), recall));
            if recall >= 1.0 {
                break;
            }
        }
    }
    // Final checkpoint when the loop ended between steps.
    let final_recall = if truth.num_matches() == 0 {
        1.0
    } else {
        found.len() as f64 / truth.num_matches() as f64
    };
    if trajectory.last().map(|&(_, r)| r) != Some(final_recall) {
        trajectory.push((start.elapsed(), final_recall));
    }

    TimedResult {
        method: method.method_name().to_string(),
        match_function: matcher.name().to_string(),
        init_time,
        trajectory,
        emissions: emitted,
        declared_matches: declared.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_blocking::{TokenBlocking, WeightingScheme};
    use sper_core::pbs::Pbs;
    use sper_model::{JaccardMatcher, ProfileText};

    #[test]
    fn timed_run_records_trajectory() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let text = ProfileText::extract(&profiles);
        let matcher = JaccardMatcher::new(&text, 0.2);
        let result = run_timed(
            || {
                let blocks = TokenBlocking::default().build(&profiles);
                Box::new(Pbs::from_blocks(blocks, WeightingScheme::Arcs))
            },
            &matcher,
            &truth,
            TimingOptions::default(),
        );
        assert_eq!(result.method, "PBS");
        assert_eq!(result.match_function, "jaccard");
        assert!(result.final_recall() > 0.9);
        assert!(result.emissions > 0);
        // Trajectory is time-monotone and recall-monotone.
        for w in result.trajectory.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!(result.time_to_recall(0.5).is_some());
        assert!(result.time_to_recall(2.0).is_none());
    }

    #[test]
    fn timed_result_json_round_trips() {
        let result = TimedResult {
            method: "PBS".into(),
            match_function: "jaccard".into(),
            init_time: Duration::from_micros(1500),
            trajectory: vec![
                (Duration::from_micros(1500), 0.0),
                (Duration::from_millis(2), 0.75),
            ],
            emissions: 42,
            declared_matches: 3,
        };
        let text = serde::json::to_string(&result);
        let back: TimedResult = serde::json::from_str(&text).expect("round-trip parses");
        assert_eq!(back.method, result.method);
        assert_eq!(back.match_function, result.match_function);
        assert_eq!(back.emissions, result.emissions);
        assert_eq!(back.declared_matches, result.declared_matches);
        assert_eq!(back.trajectory.len(), result.trajectory.len());
        assert!((back.final_recall() - result.final_recall()).abs() < 1e-12);
        assert!(
            (back.init_time.as_secs_f64() - result.init_time.as_secs_f64()).abs() < 1e-9,
            "durations survive the fractional-second encoding"
        );
    }
}
