//! Normalized area under the recall curve — the paper's `AUC*_m@ec*`.

use crate::curve::RecallCurve;

/// `AUC*_m@ec*` (§7): the area under the recall curve up to
/// `ec = ec_star · |DP|` emissions, divided by the ideal method's area at
/// the same budget. In `\[0, 1\]` for plain progressive runs, with the ideal
/// method scoring 1 for every `ec*`. (Oracle-assisted curves — where one
/// query can confirm several matches transitively — may legitimately
/// exceed 1; see [`crate::oracle`].)
pub fn normalized_auc(curve: &RecallCurve, ec_star: f64) -> f64 {
    assert!(ec_star > 0.0, "ec* must be positive");
    let emissions = (ec_star * curve.num_matches() as f64).round() as u64;
    if emissions == 0 {
        return 0.0;
    }
    let ideal = curve.auc_ideal(emissions);
    if ideal == 0.0 {
        return 0.0;
    }
    curve.auc_raw(emissions) / ideal
}

/// Mean `AUC*` across several curves (one per dataset) at one `ec*` — the
/// aggregation of Figs. 10 and 12.
pub fn mean_normalized_auc(curves: &[&RecallCurve], ec_star: f64) -> f64 {
    if curves.is_empty() {
        return 0.0;
    }
    curves
        .iter()
        .map(|c| normalized_auc(c, ec_star))
        .sum::<f64>()
        / curves.len() as f64
}

/// The `ec*` checkpoints reported in Figs. 10 and 12.
pub const PAPER_EC_STARS: [f64; 4] = [1.0, 5.0, 10.0, 20.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_curve_scores_one() {
        let c = RecallCurve::new(4, 80, vec![1, 2, 3, 4]);
        for ec in PAPER_EC_STARS {
            assert!((normalized_auc(&c, ec) - 1.0).abs() < 1e-12, "ec*={ec}");
        }
    }

    #[test]
    fn late_matches_score_less() {
        let early = RecallCurve::new(2, 20, vec![1, 2]);
        let late = RecallCurve::new(2, 20, vec![9, 10]);
        for ec in [1.0, 5.0, 10.0] {
            assert!(normalized_auc(&early, ec) >= normalized_auc(&late, ec));
        }
        assert_eq!(normalized_auc(&late, 1.0), 0.0, "nothing found by ec*=1");
    }

    #[test]
    fn in_unit_interval() {
        let c = RecallCurve::new(5, 100, vec![3, 17, 44, 80]);
        for ec in PAPER_EC_STARS {
            let a = normalized_auc(&c, ec);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn mean_aggregation() {
        let a = RecallCurve::new(2, 20, vec![1, 2]);
        let b = RecallCurve::new(2, 20, vec![19, 20]);
        let mean = mean_normalized_auc(&[&a, &b], 10.0);
        let expected = (normalized_auc(&a, 10.0) + normalized_auc(&b, 10.0)) / 2.0;
        assert!((mean - expected).abs() < 1e-12);
        assert_eq!(mean_normalized_auc(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ec_star_panics() {
        let c = RecallCurve::new(1, 1, vec![1]);
        normalized_auc(&c, 0.0);
    }
}
