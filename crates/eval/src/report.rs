//! Fixed-width table helpers for the bench binaries — every figure/table of
//! the paper is regenerated as plain text rows.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn add_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column-wise alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals (the paper's AUC precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in adaptive units (µs/ms/s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["method", "AUC*@1"]);
        t.add_row(["LS-PSN", "0.812"]);
        t.add_row(["PPS", "0.930"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].ends_with("0.812"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.add_row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(f3(0.93), "0.930");
    }
}
