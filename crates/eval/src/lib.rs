//! # sper-eval
//!
//! Progressive-recall evaluation (§7 metrics):
//!
//! * [`curve::RecallCurve`] — recall as a function of the number of emitted
//!   comparisons, stored compactly as the emission index of every newly
//!   found match.
//! * [`auc`] — the paper's `AUC*_m@ec*`: area under the recall-vs-`ec*`
//!   curve, normalized by the ideal method (which reaches recall 1 at
//!   `ec* = 1`).
//! * [`runner`] — drives a progressive method against a ground truth,
//!   recording the curve, the initialization time and emission counts.
//! * [`timing`] — wall-clock experiments pairing methods with real match
//!   functions (Fig. 13).
//! * [`report`] — fixed-width table helpers for the bench binaries.
//! * [`oracle`] — extension: progressive ER with a perfect transitive
//!   oracle (the crowdsourced setting of §2).
//! * [`streaming`] — epoch-annotated recall curves for the
//!   ingest-while-resolving sessions of `sper-stream`.

pub mod auc;
pub mod blocking_quality;
pub mod curve;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod streaming;
pub mod timing;

pub use auc::normalized_auc;
pub use blocking_quality::{blocking_quality, BlockingQuality};
pub use curve::RecallCurve;
pub use oracle::{run_with_oracle, OracleRunResult};
pub use runner::{run_progressive, RunOptions, RunResult};
pub use streaming::{streaming_recall, EpochMark, StreamEpoch, StreamingRecall};
pub use timing::{run_timed, TimedResult, TimingOptions};
