//! Drives a progressive method against a ground truth, producing a
//! [`RecallCurve`] plus initialization/emission statistics.

use crate::curve::RecallCurve;
use sper_core::ProgressiveEr;
use sper_model::{GroundTruth, Pair};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Options for a progressive run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Stop after `max_ec_star · |DP|` emissions (the paper plots up to
    /// `ec* = 30`).
    pub max_ec_star: f64,
    /// Also stop once every match has been found (the tail adds nothing to
    /// the curve but costs time). Defaults to true.
    pub stop_at_full_recall: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_ec_star: 30.0,
            stop_at_full_recall: true,
        }
    }
}

impl RunOptions {
    /// Budget in emissions for a task with `num_matches` true matches.
    pub fn max_emissions(&self, num_matches: usize) -> u64 {
        ((self.max_ec_star * num_matches as f64).ceil() as u64).max(1)
    }
}

/// The outcome of one progressive run.
///
/// Round-trips through JSON (`Serialize` + `Deserialize`), so resumed
/// sessions and trajectory tooling can merge previously exported results
/// with fresh ones.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Method acronym.
    pub method: String,
    /// The recall curve.
    pub curve: RecallCurve,
    /// Time spent constructing the method (the initialization phase).
    pub init_time: Duration,
    /// Time spent emitting (excludes match-function cost; the oracle is
    /// O(1)).
    pub emission_time: Duration,
    /// Emitted comparisons that were repeats of earlier emissions.
    pub repeated_emissions: u64,
}

impl RunResult {
    /// `AUC*@ec*` of this run.
    pub fn auc(&self, ec_star: f64) -> f64 {
        crate::auc::normalized_auc(&self.curve, ec_star)
    }
}

/// Runs an already-initialized method (init time supplied by the caller;
/// see [`run_progressive`] for the one-call variant).
pub fn run_prepared(
    mut method: Box<dyn ProgressiveEr + '_>,
    truth: &GroundTruth,
    options: RunOptions,
    init_time: Duration,
) -> RunResult {
    let name = method.method_name();
    let budget = options.max_emissions(truth.num_matches());
    let mut emitted: u64 = 0;
    let mut repeated: u64 = 0;
    let mut seen: HashSet<Pair> = HashSet::new();
    let mut found: HashSet<Pair> = HashSet::with_capacity(truth.num_matches());
    let mut match_indices: Vec<u64> = Vec::new();

    let start = Instant::now();
    while emitted < budget {
        let Some(c) = method.next() else { break };
        emitted += 1;
        if !seen.insert(c.pair) {
            repeated += 1;
            continue;
        }
        if truth.is_match_pair(c.pair) && found.insert(c.pair) {
            match_indices.push(emitted);
            if options.stop_at_full_recall && found.len() == truth.num_matches() {
                break;
            }
        }
    }
    let emission_time = start.elapsed();

    RunResult {
        method: name.to_string(),
        curve: RecallCurve::new(truth.num_matches(), emitted, match_indices),
        init_time,
        emission_time,
        repeated_emissions: repeated,
    }
}

/// Builds the method via `build` (timing the initialization phase) and runs
/// it to the emission budget.
pub fn run_progressive<'a, F>(build: F, truth: &GroundTruth, options: RunOptions) -> RunResult
where
    F: FnOnce() -> Box<dyn ProgressiveEr + 'a>,
{
    let t0 = Instant::now();
    let method = build();
    let init_time = t0.elapsed();
    run_prepared(method, truth, options, init_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_blocking::{TokenBlocking, WeightingScheme};
    use sper_core::{pbs::Pbs, sa_psn::SaPsn};

    #[test]
    fn pbs_run_reaches_full_recall_quickly() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        // Raw token blocks: the 10 % purging rule is meaningless on a
        // six-profile toy example.
        let result = run_progressive(
            || {
                let blocks = TokenBlocking::default().build(&profiles);
                Box::new(Pbs::from_blocks(blocks, WeightingScheme::Arcs))
            },
            &truth,
            RunOptions::default(),
        );
        assert_eq!(result.method, "PBS");
        assert_eq!(result.curve.final_recall(), 1.0);
        assert!(result.curve.emissions() <= 15);
        assert_eq!(result.repeated_emissions, 0, "LeCoBI dedups");
        assert!(result.auc(5.0) > 0.3);
    }

    #[test]
    fn sa_psn_run_counts_repeats() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let result = run_progressive(
            || Box::new(SaPsn::new(&profiles, 7)),
            &truth,
            RunOptions {
                max_ec_star: 30.0,
                stop_at_full_recall: false,
            },
        );
        assert!(result.repeated_emissions > 0, "SA-PSN repeats comparisons");
    }

    #[test]
    fn budget_is_respected() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let result = run_progressive(
            || Box::new(SaPsn::new(&profiles, 7)),
            &truth,
            RunOptions {
                max_ec_star: 1.0,
                stop_at_full_recall: false,
            },
        );
        assert!(
            result.curve.emissions() <= 4,
            "|DP| = 4 → at most 4 emissions"
        );
    }

    #[test]
    fn run_result_json_round_trips() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let result = run_progressive(
            || {
                let blocks = TokenBlocking::default().build(&profiles);
                Box::new(Pbs::from_blocks(blocks, WeightingScheme::Arcs))
            },
            &truth,
            RunOptions::default(),
        );
        let text = serde::json::to_string(&result);
        let back: RunResult = serde::json::from_str(&text).expect("round-trip parses");
        assert_eq!(back.method, result.method);
        assert_eq!(back.curve.emissions(), result.curve.emissions());
        assert_eq!(back.curve.match_indices(), result.curve.match_indices());
        assert_eq!(back.repeated_emissions, result.repeated_emissions);
        assert!((back.auc(5.0) - result.auc(5.0)).abs() < 1e-12);
    }

    #[test]
    fn repeats_do_not_advance_recall() {
        // A curve's found matches are distinct pairs only.
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let result = run_progressive(
            || Box::new(SaPsn::new(&profiles, 7)),
            &truth,
            RunOptions::default(),
        );
        assert!(result.curve.matches_found() <= truth.num_matches());
    }
}
