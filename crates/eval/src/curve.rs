//! The recall-progressiveness curve.
//!
//! Stored compactly: for every *newly found* match, the (1-based) emission
//! index at which it surfaced. Recall after `e` emissions is then
//! `|{indices ≤ e}| / |DP|`, and areas under the step curve have closed
//! forms — no per-emission storage needed even for millions of emissions.

use serde::{Deserialize, Serialize};

/// Recall as a step function of emitted comparisons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecallCurve {
    /// `|DP|`: total true matches of the task.
    num_matches: usize,
    /// Total comparisons emitted during the run.
    emissions: u64,
    /// Sorted, 1-based emission indices at which each new match was found.
    match_indices: Vec<u64>,
}

impl RecallCurve {
    /// Builds a curve. `match_indices` must be sorted non-decreasing (ties
    /// are allowed: an oracle query can confirm several matches at once).
    ///
    /// # Panics
    ///
    /// Panics when more matches than `num_matches` are recorded or indices
    /// are unsorted/out of range.
    pub fn new(num_matches: usize, emissions: u64, match_indices: Vec<u64>) -> Self {
        assert!(
            match_indices.len() <= num_matches,
            "found more matches than |DP|"
        );
        assert!(
            match_indices.windows(2).all(|w| w[0] <= w[1]),
            "match indices must be non-decreasing"
        );
        if let Some(&last) = match_indices.last() {
            assert!(last <= emissions, "match index beyond emission count");
            assert!(match_indices[0] >= 1, "indices are 1-based");
        }
        Self {
            num_matches,
            emissions,
            match_indices,
        }
    }

    /// `|DP|`.
    pub fn num_matches(&self) -> usize {
        self.num_matches
    }

    /// Total emitted comparisons.
    pub fn emissions(&self) -> u64 {
        self.emissions
    }

    /// Number of matches found by the end of the run.
    pub fn matches_found(&self) -> usize {
        self.match_indices.len()
    }

    /// The emission indices of the found matches.
    pub fn match_indices(&self) -> &[u64] {
        &self.match_indices
    }

    /// Recall after `emissions` comparisons.
    pub fn recall_at(&self, emissions: u64) -> f64 {
        if self.num_matches == 0 {
            return 1.0;
        }
        let found = self.match_indices.partition_point(|&m| m <= emissions);
        found as f64 / self.num_matches as f64
    }

    /// Final recall of the run.
    pub fn final_recall(&self) -> f64 {
        self.recall_at(self.emissions)
    }

    /// Normalized emitted comparisons `ec* = ec / |DP|` of the whole run.
    pub fn final_ec_star(&self) -> f64 {
        if self.num_matches == 0 {
            return 0.0;
        }
        self.emissions as f64 / self.num_matches as f64
    }

    /// Area under the recall step curve for the first `e` emissions:
    /// `Σ_{k=1..e} recall(k)` — the discrete AUC before normalization.
    ///
    /// Closed form: each match found at index `m` contributes
    /// `max(0, e − m + 1)` recall units divided by `|DP|`.
    pub fn auc_raw(&self, emissions: u64) -> f64 {
        if self.num_matches == 0 {
            return emissions as f64;
        }
        let mut units = 0u128;
        for &m in &self.match_indices {
            if m <= emissions {
                units += u128::from(emissions - m + 1);
            }
        }
        units as f64 / self.num_matches as f64
    }

    /// The ideal method's raw AUC at the same budget: recall climbs by
    /// `1/|DP|` per emission until `ec* = 1`, then stays at 1.
    pub fn auc_ideal(&self, emissions: u64) -> f64 {
        if self.num_matches == 0 {
            return emissions as f64;
        }
        let d = self.num_matches as u64;
        if emissions <= d {
            // Σ k/d for k = 1..e
            (emissions * (emissions + 1)) as f64 / (2.0 * d as f64)
        } else {
            let ramp = (d + 1) as f64 / 2.0 * d as f64 / d as f64; // Σ k/d, k=1..d
            ramp + (emissions - d) as f64
        }
    }

    /// Recall sampled at the given `ec*` grid (for plotting/reports).
    pub fn sample(&self, ec_star_grid: &[f64]) -> Vec<(f64, f64)> {
        ec_star_grid
            .iter()
            .map(|&x| {
                let e = (x * self.num_matches as f64).round() as u64;
                (x, self.recall_at(e))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_like_curve() {
        // 3 matches found at emissions 1, 2, 3 of a 6-emission run.
        let c = RecallCurve::new(3, 6, vec![1, 2, 3]);
        assert_eq!(c.recall_at(0), 0.0);
        assert!((c.recall_at(2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.recall_at(3), 1.0);
        assert_eq!(c.final_recall(), 1.0);
        assert_eq!(c.final_ec_star(), 2.0);
    }

    #[test]
    fn auc_raw_closed_form_matches_naive_sum() {
        let c = RecallCurve::new(4, 10, vec![2, 3, 7]);
        for e in 0..=10u64 {
            let naive: f64 = (1..=e).map(|k| c.recall_at(k)).sum();
            assert!(
                (c.auc_raw(e) - naive).abs() < 1e-9,
                "e={e}: {} vs {naive}",
                c.auc_raw(e)
            );
        }
    }

    #[test]
    fn auc_ideal_closed_form() {
        let c = RecallCurve::new(4, 20, vec![1, 2, 3, 4]);
        // Ideal = this curve: ramp then flat.
        for e in [0u64, 2, 4, 10, 20] {
            let naive: f64 = (1..=e).map(|k| (k.min(4)) as f64 / 4.0).sum();
            assert!((c.auc_ideal(e) - naive).abs() < 1e-9);
            assert!((c.auc_raw(e) - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn recall_monotone_nondecreasing() {
        let c = RecallCurve::new(5, 100, vec![10, 30, 31, 90]);
        let mut prev = -1.0;
        for e in 0..=100 {
            let r = c.recall_at(e);
            assert!(r >= prev);
            prev = r;
        }
        assert!((c.final_recall() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_matches_edge_case() {
        let c = RecallCurve::new(0, 50, vec![]);
        assert_eq!(c.recall_at(10), 1.0);
        assert_eq!(c.final_ec_star(), 0.0);
    }

    #[test]
    fn sample_grid() {
        let c = RecallCurve::new(2, 10, vec![1, 4]);
        let pts = c.sample(&[0.5, 1.0, 2.0, 5.0]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (0.5, 0.5)); // e=1: one match
        assert_eq!(pts[1], (1.0, 0.5)); // e=2
        assert_eq!(pts[2], (2.0, 1.0)); // e=4
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_indices_panic() {
        RecallCurve::new(3, 10, vec![5, 2]);
    }

    #[test]
    fn tied_indices_are_allowed() {
        // An oracle query may confirm several matches at once.
        let c = RecallCurve::new(3, 10, vec![2, 2, 2]);
        assert_eq!(c.recall_at(1), 0.0);
        assert_eq!(c.recall_at(2), 1.0);
    }

    #[test]
    #[should_panic(expected = "more matches")]
    fn too_many_matches_panic() {
        RecallCurve::new(1, 10, vec![1, 2]);
    }

    #[test]
    fn json_round_trips() {
        let c = RecallCurve::new(4, 10, vec![2, 3, 7]);
        let text = serde::json::to_string(&c);
        let back: RecallCurve = serde::json::from_str(&text).expect("round-trip parses");
        assert_eq!(back.num_matches(), c.num_matches());
        assert_eq!(back.emissions(), c.emissions());
        assert_eq!(back.match_indices(), c.match_indices());
        for e in 0..=10u64 {
            assert_eq!(back.recall_at(e), c.recall_at(e));
            assert_eq!(back.auc_raw(e), c.auc_raw(e));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// Closed-form AUC equals the naive per-emission sum, and recall is
        /// monotone, for arbitrary curves.
        #[test]
        fn auc_equivalence(
            d in 1usize..20,
            emissions in 0u64..200,
            raw_idx in proptest::collection::btree_set(1u64..200, 0..15),
        ) {
            let indices: Vec<u64> = raw_idx
                .into_iter()
                .filter(|&m| m <= emissions)
                .take(d)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let c = RecallCurve::new(d, emissions, indices);
            let naive: f64 = (1..=emissions).map(|k| c.recall_at(k)).sum();
            prop_assert!((c.auc_raw(emissions) - naive).abs() < 1e-6);
            prop_assert!(c.auc_raw(emissions) <= c.auc_ideal(emissions) + 1e-9,
                "no method beats the ideal");
        }
    }
}
