//! Classic blocking-quality metrics (\[19\], used throughout the
//! meta-blocking literature the paper builds on):
//!
//! * **PC** — Pairs Completeness: the fraction of true matches whose
//!   profiles co-occur in at least one block (the blocking recall ceiling
//!   every progressive method inherits — this is why PBS/PPS cap below
//!   100 % on cora, §7.1).
//! * **PQ** — Pairs Quality: true matches per distinct comparison
//!   (blocking precision).
//! * **RR** — Reduction Ratio: the fraction of the naïve quadratic
//!   comparison space the blocks eliminate.

use sper_blocking::BlockCollection;
use sper_model::{GroundTruth, Pair, ProfileCollection};
use std::collections::HashSet;

/// The quality metrics of a block collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Pairs Completeness ∈ \[0, 1\].
    pub pc: f64,
    /// Pairs Quality ∈ \[0, 1\].
    pub pq: f64,
    /// Reduction Ratio ∈ \[0, 1\].
    pub rr: f64,
    /// Distinct comparisons entailed by the blocks.
    pub distinct_comparisons: u64,
}

/// Computes PC / PQ / RR for `blocks` against `truth`.
pub fn blocking_quality(
    blocks: &BlockCollection,
    profiles: &ProfileCollection,
    truth: &GroundTruth,
) -> BlockingQuality {
    let kind = blocks.kind();
    let mut distinct: HashSet<Pair> = HashSet::new();
    for b in blocks.iter() {
        distinct.extend(b.comparisons(kind));
    }
    let covered = truth.pairs().filter(|p| distinct.contains(p)).count();
    let pc = if truth.num_matches() == 0 {
        1.0
    } else {
        covered as f64 / truth.num_matches() as f64
    };
    let pq = if distinct.is_empty() {
        0.0
    } else {
        covered as f64 / distinct.len() as f64
    };
    let naive = profiles.naive_comparisons();
    let rr = if naive == 0 {
        0.0
    } else {
        1.0 - distinct.len() as f64 / naive as f64
    };
    BlockingQuality {
        pc,
        pq,
        rr,
        distinct_comparisons: distinct.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_blocking::fixtures::{fig3_ground_truth, fig3_profiles};
    use sper_blocking::{BlockFilter, BlockPurger, TokenBlocking};

    #[test]
    fn fig3_raw_blocks_have_full_pc() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let blocks = TokenBlocking::default().build(&profiles);
        let q = blocking_quality(&blocks, &profiles, &truth);
        // Every pair co-occurs in "white" → all 15 distinct comparisons.
        assert_eq!(q.pc, 1.0);
        assert_eq!(q.distinct_comparisons, 15);
        assert!((q.pq - 4.0 / 15.0).abs() < 1e-12);
        assert_eq!(q.rr, 0.0, "complete graph saves nothing here");
    }

    #[test]
    fn purging_trades_pc_for_pq() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let raw = TokenBlocking::default().build(&profiles);
        let purged = BlockPurger::paper_default().purge(raw.clone());
        let q_raw = blocking_quality(&raw, &profiles, &truth);
        let q_purged = blocking_quality(&purged, &profiles, &truth);
        assert!(q_purged.pq >= q_raw.pq, "purging must not lower precision");
        assert!(q_purged.rr >= q_raw.rr);
        assert!(q_purged.pc <= q_raw.pc);
    }

    #[test]
    fn filtering_preserves_most_pc() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let raw = TokenBlocking::default().build(&profiles);
        let filtered = BlockFilter::paper_default().filter(raw);
        let q = blocking_quality(&filtered, &profiles, &truth);
        assert!(q.pc >= 0.75, "filtering is recall-friendly: {q:?}");
    }

    #[test]
    fn empty_blocks_metrics() {
        let profiles = fig3_profiles();
        let truth = fig3_ground_truth();
        let empty = BlockCollection::empty(profiles.kind(), profiles.len());
        let q = blocking_quality(&empty, &profiles, &truth);
        assert_eq!(q.pc, 0.0);
        assert_eq!(q.pq, 0.0);
        assert_eq!(q.rr, 1.0);
    }
}
