//! Sparse-accumulator kernel equivalence: the `spacc` sweep paths are
//! observationally identical to both the legacy interned edge-list builder
//! (seen-set + per-pair merge intersection) and the string-keyed seed
//! weights — for all four weighting schemes, dirty and clean-clean, at
//! 1–8 worker threads.
//!
//! What is pinned down:
//!
//! * **Edge lists** — `spacc::weighted_edge_list` (the engine inside
//!   `BlockingGraph::build` and `parallel_blocking_graph`) reproduces the
//!   legacy builder's exact edge *sequence* (pairs and weight bits), not
//!   merely its edge set, at every thread count.
//! * **Weights** — every kernel edge weight equals the naive string-keyed
//!   reference weight of the pair.
//! * **Streaming** — `for_each_weighted_edge` (zero materialization)
//!   covers the same edges with the same weight bits and correct
//!   least-common-block witnesses.
//! * **Pruning** — `prune_blocks` / `par_prune_blocks` (node-centric
//!   sweeps, no materialized graph) equal `prune` over the kernel-built
//!   graph for every pruning scheme.
//! * **Incremental substrates** — the growable `IncrementalProfileIndex` +
//!   live `[Block]` array drive the kernel to the frozen CSR results.
//! * **Degenerate inputs** — empty and single-profile collections take
//!   every path without panicking.

use proptest::prelude::*;
use sper_blocking::legacy::{
    legacy_graph_edges, string_block_lists, string_token_blocking, string_weight,
};
use sper_blocking::spacc::{for_each_weighted_edge, weighted_edge_list};
use sper_blocking::{
    par_prune_blocks, prune, prune_blocks, Block, BlockingGraph, IncrementalProfileIndex,
    Parallelism, ProfileIndex, PruningScheme, TokenBlocking, WeightAccumulator, WeightingScheme,
};
use sper_model::{Pair, ProfileCollection, ProfileCollectionBuilder, ProfileId};

/// Random collections over a tiny alphabet — small vocabularies maximize
/// token collisions, which is where blocking behavior lives. Half the
/// cases are Dirty (both vecs in one source), half Clean-clean (P1 | P2).
fn any_collection() -> impl Strategy<Value = ProfileCollection> {
    (
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        0u8..2,
    )
        .prop_map(|(p1, p2, kind)| {
            let mut b = if kind == 0 {
                ProfileCollectionBuilder::dirty()
            } else {
                ProfileCollectionBuilder::clean_clean()
            };
            for v in p1 {
                b.add_profile([("t", v)]);
            }
            if kind != 0 {
                b.start_second_source();
            }
            for v in p2 {
                b.add_profile([("t", v)]);
            }
            b.build()
        })
}

fn assert_same_edges(a: &[(Pair, f64)], b: &[(Pair, f64)], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: edge counts diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.0, y.0, "{ctx}: edge order diverged");
        assert_eq!(
            x.1.to_bits(),
            y.1.to_bits(),
            "{ctx}: weight bits diverged at {:?}",
            x.0
        );
    }
}

proptest! {
    /// Kernel edge list ≡ legacy edge list (sequence and weight bits) ≡
    /// string-keyed weights, for all four schemes at 1–8 threads, in both
    /// the scheduled (cardinality-sorted) and raw block orders.
    #[test]
    fn kernel_matches_legacy_and_string_weights(
        coll in any_collection(),
        threads in 1usize..9,
        sort_flag in 0u8..2,
    ) {
        let sort_by_cardinality = sort_flag == 1;
        let mut blocks = TokenBlocking::default().build(&coll);
        if sort_by_cardinality {
            blocks.sort_by_cardinality();
        }
        let index = ProfileIndex::build(&blocks);
        let sblocks = string_token_blocking(&coll);
        let slists = string_block_lists(&sblocks, coll.len());
        let par = Parallelism::new(threads).expect("threads > 0");
        for scheme in WeightingScheme::ALL {
            let reference = legacy_graph_edges(&blocks, scheme);
            let kernel = weighted_edge_list(&blocks, &index, scheme, par);
            assert_same_edges(&kernel, &reference, &format!("{scheme} at {threads} threads"));
            if !sort_by_cardinality {
                // String-keyed blocks are key-sorted; compare weights in
                // the matching (unsorted) block order only.
                for &(pair, w) in &kernel {
                    let sw = string_weight(
                        &sblocks, &slists, coll.kind(), pair.first, pair.second, scheme,
                    );
                    prop_assert!(
                        (w - sw).abs() < 1e-12,
                        "{scheme}: {pair:?} kernel {w} vs string {sw}"
                    );
                }
            }
        }
    }

    /// The zero-materialization stream covers exactly the legacy edge set
    /// with identical weight bits, and every least-common-block witness
    /// agrees with the merge-based intersection.
    #[test]
    fn streaming_edges_match_legacy_set(coll in any_collection()) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Js] {
            let mut streamed = Vec::new();
            for_each_weighted_edge(&blocks, &index, scheme, |pair, w, lcb| {
                assert_eq!(
                    index.intersect(pair.first, pair.second).least_common,
                    Some(lcb),
                    "lcb witness diverged at {pair:?}"
                );
                streamed.push((pair, w));
            });
            let mut reference = legacy_graph_edges(&blocks, scheme);
            let key = |e: &(Pair, f64)| e.0;
            streamed.sort_by_key(key);
            reference.sort_by_key(key);
            assert_same_edges(&streamed, &reference, &format!("stream {scheme}"));
        }
    }

    /// Node-centric streaming pruning ≡ graph-based pruning for every
    /// pruning scheme, sequential and sharded.
    #[test]
    fn streaming_prune_matches_graph_prune(coll in any_collection(), threads in 1usize..5) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let graph = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
        for scheme in [
            PruningScheme::Wep,
            PruningScheme::Cep { k: 5 },
            PruningScheme::Wnp,
            PruningScheme::Cnp { k: 2 },
        ] {
            let reference = prune(&graph, scheme);
            let streamed = prune_blocks(&blocks, WeightingScheme::Arcs, scheme);
            prop_assert_eq!(&streamed, &reference, "{} sequential", scheme.name());
            let sharded = par_prune_blocks(&blocks, WeightingScheme::Arcs, scheme, threads)
                .expect("threads > 0");
            prop_assert_eq!(&sharded, &reference, "{} at {} threads", scheme.name(), threads);
        }
    }

    /// The growable streaming index + live block array drive the kernel to
    /// the frozen CSR pair's results: same touched sets, same weight bits.
    #[test]
    fn incremental_substrates_run_the_same_kernel(coll in any_collection()) {
        let blocks = TokenBlocking::default().build(&coll);
        let index = ProfileIndex::build(&blocks);
        let kind = blocks.kind();
        let mut inc = IncrementalProfileIndex::new_empty(blocks.n_profiles());
        for block in blocks.iter() {
            inc.push_block(block.profiles(), block.cardinality(kind));
        }
        let owned: Vec<Block> = blocks.clone().into_blocks();
        let mut frozen = WeightAccumulator::new(blocks.n_profiles());
        let mut live = WeightAccumulator::new(blocks.n_profiles());
        for scheme in WeightingScheme::ALL {
            for i in 0..blocks.n_profiles() as u32 {
                let i = ProfileId(i);
                frozen.sweep(kind, &blocks, &index, scheme, i, None);
                live.sweep(kind, owned.as_slice(), &inc, scheme, i, None);
                prop_assert_eq!(frozen.touched(), live.touched());
                for t in 0..frozen.touched().len() {
                    let j = ProfileId(frozen.touched()[t]);
                    prop_assert_eq!(
                        frozen.finalize(&index, scheme, i, j).to_bits(),
                        live.finalize(&inc, scheme, i, j).to_bits()
                    );
                }
                frozen.reset();
                live.reset();
            }
        }
    }
}

#[test]
fn empty_and_single_profile_regressions() {
    let empty = ProfileCollectionBuilder::dirty().build();
    let mut one = ProfileCollectionBuilder::dirty();
    one.add_profile([("t", "lonely tokens here")]);
    let one = one.build();
    for coll in [empty, one] {
        let blocks = TokenBlocking::default().build(&coll);
        let index = ProfileIndex::build(&blocks);
        for scheme in WeightingScheme::ALL {
            for threads in [1, 4] {
                let par = Parallelism::new(threads).unwrap();
                let edges = weighted_edge_list(&blocks, &index, scheme, par);
                assert!(edges.is_empty());
            }
            assert!(legacy_graph_edges(&blocks, scheme).is_empty());
            assert!(prune_blocks(&blocks, scheme, PruningScheme::Wnp).is_empty());
            assert!(prune_blocks(&blocks, scheme, PruningScheme::Wep).is_empty());
        }
    }
}

/// The graph builders themselves stay pinned to the kernel output — the
/// public surface every downstream consumer (store codecs, golden
/// fixture, CLI snapshots) observes.
#[test]
fn graph_builders_expose_kernel_edges() {
    let mut b = ProfileCollectionBuilder::dirty();
    for i in 0..40u32 {
        b.add_profile([("t", format!("tok{} shared{} white", i % 16, i % 5))]);
    }
    let coll = b.build();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    for scheme in WeightingScheme::ALL {
        let expected = weighted_edge_list(&blocks, &index, scheme, Parallelism::SEQUENTIAL);
        let graph = BlockingGraph::build(&blocks, scheme);
        let got: Vec<(Pair, f64)> = graph.edges().collect();
        assert_same_edges(&got, &expected, "BlockingGraph::build");
    }
}
