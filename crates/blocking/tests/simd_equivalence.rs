//! SIMD kernel equivalence: every vector path of the spacc engine is
//! bit-identical to the chunked scalar fallback — which is itself pinned
//! to the legacy string-keyed weights by `weighting_equivalence.rs`.
//!
//! What is pinned down:
//!
//! * **Accumulation** — [`WeightAccumulator::with_path`] sweeps with the
//!   AVX2 / SSE2 / scalar kernels touch the same neighbors with the same
//!   accumulated bits and least-common-block witnesses, for all four
//!   schemes, dirty and clean-clean.
//! * **Finalization** — [`FinalizeTable::weights_into`] through each
//!   kernel equals the per-edge [`FinalizeTable::weight`] reference,
//!   bitwise, including the JS zero-union clamp.
//! * **End-to-end** — `weighted_edge_list` (which dispatches through
//!   [`KernelPath::active`], i.e. the forced-scalar path under
//!   `SPER_NO_SIMD=1`) reproduces the legacy edge sequence at 1–8
//!   threads. CI runs the bench smoke twice — default and
//!   `SPER_NO_SIMD=1` — so both dispatch outcomes cross this test's
//!   in-process per-path sweep *and* a whole-binary forced-fallback run.
//! * **Drain order** — [`WeightAccumulator::drain_ascending`] emits the
//!   sorted-touched sequence on both its branches: the dense bitmap scan
//!   and the sparse sort fallback.
//! * **Dispatch policy** — `SPER_NO_SIMD` forces scalar; feature flags
//!   pick the widest available unit; every path reachable on this host
//!   actually runs here (the scalar-only assertions are vacuous only on
//!   pre-AVX2 hardware, where there is no vector path to diverge).

use proptest::prelude::*;
use sper_blocking::legacy::legacy_graph_edges;
use sper_blocking::spacc::weighted_edge_list;
use sper_blocking::{
    FinalizeTable, KernelPath, Parallelism, ProfileIndex, TokenBlocking, WeightAccumulator,
    WeightingScheme,
};
use sper_model::{ProfileCollection, ProfileCollectionBuilder, ProfileId};

/// Random collections over a tiny alphabet — small vocabularies maximize
/// token collisions, which is where blocking behavior lives. Half the
/// cases are Dirty (both vecs in one source), half Clean-clean (P1 | P2).
fn any_collection() -> impl Strategy<Value = ProfileCollection> {
    (
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        0u8..2,
    )
        .prop_map(|(p1, p2, kind)| {
            let mut b = if kind == 0 {
                ProfileCollectionBuilder::dirty()
            } else {
                ProfileCollectionBuilder::clean_clean()
            };
            for v in p1 {
                b.add_profile([("t", v)]);
            }
            if kind != 0 {
                b.start_second_source();
            }
            for v in p2 {
                b.add_profile([("t", v)]);
            }
            b.build()
        })
}

/// The kernel paths this host can execute: scalar always, plus whatever
/// the runtime dispatcher could pick. On an AVX2 host this is all three.
fn runnable_paths() -> Vec<KernelPath> {
    let mut paths = vec![KernelPath::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            paths.push(KernelPath::Sse2);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            paths.push(KernelPath::Avx2);
        }
    }
    paths
}

proptest! {
    /// Sweeping with each runnable kernel touches identical neighbor sets
    /// with identical accumulated bits and LCB witnesses, and finalizes to
    /// identical weight bits, for all four schemes on both ER kinds.
    #[test]
    fn every_kernel_path_sweeps_identically(coll in any_collection()) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        let kind = blocks.kind();
        let mut reference = WeightAccumulator::with_path(n, KernelPath::Scalar);
        for path in runnable_paths() {
            let mut acc = WeightAccumulator::with_path(n, path);
            prop_assert_eq!(acc.path(), path);
            for scheme in WeightingScheme::ALL {
                for i in 0..n as u32 {
                    let i = ProfileId(i);
                    reference.sweep(kind, &blocks, &index, scheme, i, None);
                    acc.sweep(kind, &blocks, &index, scheme, i, None);
                    reference.sort_touched();
                    acc.sort_touched();
                    prop_assert_eq!(
                        acc.touched(), reference.touched(),
                        "{:?} touched set diverged at {:?}", path, i
                    );
                    for &j in reference.touched() {
                        let j = ProfileId(j);
                        prop_assert_eq!(
                            acc.raw(j).to_bits(), reference.raw(j).to_bits(),
                            "{:?} accumulated bits diverged at ({:?},{:?})", path, i, j
                        );
                        prop_assert_eq!(
                            acc.least_common_block(j), reference.least_common_block(j),
                            "{:?} LCB witness diverged at ({:?},{:?})", path, i, j
                        );
                        prop_assert_eq!(
                            acc.finalize(&index, scheme, i, j).to_bits(),
                            reference.finalize(&index, scheme, i, j).to_bits()
                        );
                    }
                    reference.reset();
                    acc.reset();
                }
            }
        }
    }

    /// Batched finalization through each kernel equals the per-edge
    /// reference bitwise, for every scheme (the counting schemes take the
    /// copy path; JS and ECBS exercise the gather/arithmetic lanes).
    #[test]
    fn batched_finalize_matches_per_edge_on_every_path(
        terms in proptest::collection::vec(1u32..20, 2..40),
        acc_units in proptest::collection::vec(0u32..4800, 0..24),
    ) {
        // Quarter-unit grid in [0, 12): exact in f64, covers the zero
        // accumulator and fractional sums without an f64 strategy.
        let accs: Vec<f64> = acc_units.iter().map(|&u| u as f64 / 400.0).collect();
        // A synthetic index is unnecessary: drive the table through the
        // same constructor the engine uses, on real blocks, then compare
        // per-edge vs batched on synthetic (js, accs) neighborhoods.
        let mut b = ProfileCollectionBuilder::dirty();
        for t in &terms {
            b.add_profile([("t", format!("tok{} common", t % 7))]);
        }
        let coll = b.build();
        let blocks = TokenBlocking::default().build(&coll);
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        let i = 0u32;
        let js: Vec<u32> = (0..accs.len() as u32).map(|k| k % n.max(1) as u32).collect();
        let mut out = Vec::new();
        for scheme in WeightingScheme::ALL {
            let table = FinalizeTable::build(&index, scheme, n);
            for path in runnable_paths() {
                table.weights_into(path, i, &js, &accs, &mut out);
                prop_assert_eq!(out.len(), js.len());
                for (k, (&j, &acc)) in js.iter().zip(&accs).enumerate() {
                    prop_assert_eq!(
                        out[k].to_bits(),
                        table.weight(i, j, acc).to_bits(),
                        "{} via {:?} diverged at lane {}", scheme, path, k
                    );
                }
            }
        }
    }

    /// The full engine — `KernelPath::active` dispatch, work-stealing
    /// chunks, two-pass counting scatter — reproduces the legacy edge
    /// sequence bitwise at 1–8 threads. Under `SPER_NO_SIMD=1` this same
    /// test pins the forced-scalar dispatch end to end.
    #[test]
    fn dispatched_edge_list_matches_legacy(
        coll in any_collection(),
        threads in 1usize..9,
    ) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let par = Parallelism::new(threads).expect("threads > 0");
        for scheme in WeightingScheme::ALL {
            let reference = legacy_graph_edges(&blocks, scheme);
            let kernel = weighted_edge_list(&blocks, &index, scheme, par);
            prop_assert_eq!(kernel.len(), reference.len(), "{} edge count", scheme);
            for (k, (a, b)) in kernel.iter().zip(&reference).enumerate() {
                prop_assert_eq!(a.0, b.0, "{} edge order diverged at {}", scheme, k);
                prop_assert_eq!(
                    a.1.to_bits(), b.1.to_bits(),
                    "{} weight bits diverged at {:?}", scheme, a.0
                );
            }
        }
    }

    /// `drain_ascending` visits exactly the sorted touched set with the
    /// accumulated sums and LCB witnesses, and leaves the scratch reset.
    /// Small collections keep the touched density above the bitmap
    /// threshold, so this exercises the word-scan branch (the sparse
    /// branch is pinned by `drain_sparse_branch_sorts` below).
    #[test]
    fn drain_ascending_matches_sorted_touched(coll in any_collection()) {
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        let kind = blocks.kind();
        let mut probe = WeightAccumulator::new(n);
        let mut drained = WeightAccumulator::new(n);
        for i in 0..n as u32 {
            let i = ProfileId(i);
            probe.sweep_forward(kind, &blocks, &index, WeightingScheme::Cbs, i);
            drained.sweep_forward(kind, &blocks, &index, WeightingScheme::Cbs, i);
            probe.sort_touched();
            let expected: Vec<(u32, u64, u32)> = probe
                .touched()
                .iter()
                .map(|&j| {
                    let p = ProfileId(j);
                    (j, probe.raw(p).to_bits(), probe.least_common_block(p).0)
                })
                .collect();
            let mut got = Vec::new();
            drained.drain_ascending(|j, sum, lcb| got.push((j, sum.to_bits(), lcb)));
            prop_assert_eq!(got, expected, "drain order diverged at {:?}", i);
            prop_assert!(drained.is_empty(), "drain must leave the scratch reset");
            probe.reset();
        }
    }
}

/// The sparse branch of `drain_ascending` (touched density below one bit
/// per eight mask words) sorts instead of scanning — same output order.
#[test]
fn drain_sparse_branch_sorts() {
    // 4000 profiles → 63 mask words → the sort branch engages below 7
    // touched entries. Profiles 0, 777 and 3999 share one token; everyone
    // else is singleton noise.
    let mut b = ProfileCollectionBuilder::dirty();
    for i in 0..4000u32 {
        let text = match i {
            0 | 777 | 3999 => format!("shared u{i}"),
            _ => format!("u{i}"),
        };
        b.add_profile([("t", text)]);
    }
    let coll = b.build();
    let blocks = TokenBlocking::default().build(&coll);
    let index = ProfileIndex::build(&blocks);
    let mut acc = WeightAccumulator::new(blocks.n_profiles());
    acc.sweep_forward(
        blocks.kind(),
        &blocks,
        &index,
        WeightingScheme::Cbs,
        ProfileId(0),
    );
    assert_eq!(acc.touched().len(), 2, "0 sees exactly 777 and 3999");
    let mut got = Vec::new();
    acc.drain_ascending(|j, sum, _| got.push((j, sum)));
    assert_eq!(got, vec![(777, 1.0), (3999, 1.0)], "ascending id order");
    assert!(acc.is_empty());
}

/// The dispatch policy: `SPER_NO_SIMD` (any non-empty value except "0")
/// forces scalar regardless of hardware; otherwise the widest detected
/// unit wins; SSE2-less hosts fall back to scalar.
#[test]
fn dispatch_policy_is_pinned() {
    assert_eq!(
        KernelPath::select(Some("1"), true, true),
        KernelPath::Scalar
    );
    assert_eq!(
        KernelPath::select(Some("yes"), true, true),
        KernelPath::Scalar
    );
    assert_eq!(KernelPath::select(Some("0"), true, true), KernelPath::Avx2);
    assert_eq!(KernelPath::select(Some(""), true, true), KernelPath::Avx2);
    assert_eq!(KernelPath::select(None, true, true), KernelPath::Avx2);
    assert_eq!(KernelPath::select(None, false, true), KernelPath::Sse2);
    assert_eq!(KernelPath::select(None, false, false), KernelPath::Scalar);
    // The cached runtime choice is one of the runnable paths.
    assert!(runnable_paths().contains(&KernelPath::active()));
}

/// Sweeping on a non-reset scratch is a hard contract violation in every
/// build profile — stale sums would silently corrupt every weight.
#[test]
#[should_panic(expected = "non-reset scratch")]
fn sweep_on_dirty_scratch_panics() {
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("t", "alpha beta")]);
    b.add_profile([("t", "alpha beta")]);
    let coll = b.build();
    let blocks = TokenBlocking::default().build(&coll);
    let index = ProfileIndex::build(&blocks);
    let mut acc = WeightAccumulator::new(blocks.n_profiles());
    let kind = blocks.kind();
    acc.sweep(
        kind,
        &blocks,
        &index,
        WeightingScheme::Cbs,
        ProfileId(0),
        None,
    );
    assert!(!acc.is_empty(), "first sweep must touch profile 1");
    // No reset: the second sweep must panic, not corrupt.
    acc.sweep(
        kind,
        &blocks,
        &index,
        WeightingScheme::Cbs,
        ProfileId(1),
        None,
    );
}

/// Degenerate inputs take every path without panicking, whatever the
/// dispatched kernel.
#[test]
fn empty_and_single_profile_per_path() {
    let empty = ProfileCollectionBuilder::dirty().build();
    let mut one = ProfileCollectionBuilder::dirty();
    one.add_profile([("t", "lonely tokens here")]);
    let one = one.build();
    for coll in [empty, one] {
        let blocks = TokenBlocking::default().build(&coll);
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        for path in runnable_paths() {
            let mut acc = WeightAccumulator::with_path(n, path);
            for i in 0..n as u32 {
                acc.sweep_forward(
                    blocks.kind(),
                    &blocks,
                    &index,
                    WeightingScheme::Ecbs,
                    ProfileId(i),
                );
                acc.drain_ascending(|_, _, _| panic!("no neighbors exist"));
            }
        }
        for scheme in WeightingScheme::ALL {
            let edges = weighted_edge_list(&blocks, &index, scheme, Parallelism::SEQUENTIAL);
            assert!(edges.is_empty());
        }
    }
}

/// `Pair` ordering invariant survives the unsafe scatter: every emitted
/// pair has `first < second` in id order (the contract downstream
/// consumers index on).
#[test]
fn scattered_pairs_keep_endpoint_order() {
    let mut b = ProfileCollectionBuilder::dirty();
    for i in 0..60u32 {
        b.add_profile([("t", format!("tok{} shared{}", i % 9, i % 4))]);
    }
    let coll = b.build();
    let mut blocks = TokenBlocking::default().build(&coll);
    blocks.sort_by_cardinality();
    let index = ProfileIndex::build(&blocks);
    for threads in [1, 3, 8] {
        let par = Parallelism::new(threads).unwrap();
        let edges = weighted_edge_list(&blocks, &index, WeightingScheme::Js, par);
        assert!(!edges.is_empty());
        for (pair, w) in &edges {
            assert!(pair.first < pair.second, "unordered pair {pair:?}");
            assert!(w.is_finite());
        }
    }
}
