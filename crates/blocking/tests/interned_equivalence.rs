//! Equivalence property tests: the interned/CSR pipeline is
//! observationally identical to the string-keyed seed semantics preserved
//! in [`sper_blocking::legacy`].
//!
//! Three layers are pinned down, each for Dirty and Clean-clean ER:
//!
//! 1. **Blocks** — `TokenBlocking` (interned ids, flat bucket index, CSR
//!    collection) produces the same keys, members, source partitions and
//!    key-sorted order as the seed's `HashMap<String, Vec<_>>` build. The
//!    parallel builder must agree too (`TokenId % shards` sharding).
//! 2. **Weights** — `ProfileIndex` (CSR merge kernels) reproduces the
//!    naive string-keyed weight of every scheme on every pair.
//! 3. **Neighbor List** — the rank-sorted interned build is *bit
//!    identical* to the seed's string-sorted build: same keys, same
//!    profiles at every position (the equal-key runs consume the shuffle
//!    RNG identically).
//!
//! Method-level emission equivalence lives in
//! `crates/core/tests/emission_equivalence.rs` (it needs `sper-core`).

use proptest::prelude::*;
use sper_blocking::legacy::{
    string_block_lists, string_neighbor_list, string_token_blocking, string_weight,
};
use sper_blocking::{
    parallel_token_blocking, BlockCollection, ProfileIndex, TokenBlocking, WeightingScheme,
};
use sper_model::{ProfileCollection, ProfileCollectionBuilder, ProfileId};

/// Random collections over a tiny alphabet — small vocabularies maximize
/// token collisions, which is where blocking behavior lives. Half the
/// cases are Dirty (both vecs in one source), half Clean-clean (P1 | P2).
fn any_collection() -> impl Strategy<Value = ProfileCollection> {
    (
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        0u8..2,
    )
        .prop_map(|(p1, p2, kind)| {
            let mut b = if kind == 0 {
                ProfileCollectionBuilder::dirty()
            } else {
                ProfileCollectionBuilder::clean_clean()
            };
            for v in p1 {
                b.add_profile([("t", v)]);
            }
            if kind != 0 {
                b.start_second_source();
            }
            for v in p2 {
                b.add_profile([("t", v)]);
            }
            b.build()
        })
}

/// Asserts one interned collection equals the legacy blocks: same order,
/// same key strings, same members, same source partitions.
fn assert_blocks_equal(
    interned: &BlockCollection,
    legacy: &[sper_blocking::legacy::StringBlock],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(interned.len(), legacy.len());
    for (a, b) in interned.iter().zip(legacy) {
        prop_assert_eq!(&*a.key_str(), b.key.as_str());
        prop_assert_eq!(a.profiles(), &b.members[..]);
        prop_assert_eq!(a.first_source().len() as u32, b.n_first);
    }
    Ok(())
}

proptest! {
    /// Layer 1: interned Token Blocking ≡ string-keyed Token Blocking,
    /// sequential and parallel, dirty and clean-clean.
    #[test]
    fn token_blocking_matches_seed(coll in any_collection(), threads in 1usize..5) {
        let legacy = string_token_blocking(&coll);
        let interned = TokenBlocking::default().build(&coll);
        assert_blocks_equal(&interned, &legacy)?;
        let parallel = parallel_token_blocking(&coll, threads).expect("threads > 0");
        assert_blocks_equal(&parallel, &legacy)?;
    }

    /// Layer 2: CSR Profile-Index weights ≡ naive string-keyed weights for
    /// every scheme on every pair. (Block order is the shared key-sorted
    /// order, so block ids line up by construction.)
    #[test]
    fn weights_match_seed(coll in any_collection()) {
        let legacy = string_token_blocking(&coll);
        let lists = string_block_lists(&legacy, coll.len());
        let interned = TokenBlocking::default().build(&coll);
        let index = ProfileIndex::build(&interned);
        let kind = coll.kind();
        let n = coll.len() as u32;
        for i in 0..n {
            for j in (i + 1)..n {
                let (pi, pj) = (ProfileId(i), ProfileId(j));
                for scheme in WeightingScheme::ALL {
                    let expected = string_weight(&legacy, &lists, kind, pi, pj, scheme);
                    let got = index.weight(pi, pj, scheme);
                    prop_assert!(
                        (expected - got).abs() < 1e-9,
                        "{scheme} weight of ({i},{j}): interned {got} vs seed {expected}"
                    );
                }
            }
        }
    }

    /// Layer 3: the interned Neighbor List is bit-identical to the seed's
    /// string-sorted build — same key at every position, same profile at
    /// every position, for any seed.
    #[test]
    fn neighbor_list_matches_seed(coll in any_collection(), seed in 0u64..1000) {
        let (legacy_nl, legacy_keys) = string_neighbor_list(&coll, seed);
        let nl = sper_blocking::NeighborList::build_with_keys(&coll, seed);
        prop_assert_eq!(nl.len(), legacy_nl.len());
        for i in 0..nl.len() {
            prop_assert_eq!(&*nl.key_at(i).unwrap(), legacy_keys[i].as_str(), "key at {}", i);
            prop_assert_eq!(nl.profile_at(i), legacy_nl[i], "profile at {}", i);
        }
    }

    /// The CSR collection survives its own transformations: cardinality
    /// sort and comparable-retain produce the same multiset of
    /// (key, members) as the straightforward owned-block route.
    #[test]
    fn csr_transforms_preserve_contents(coll in any_collection()) {
        let mut a = TokenBlocking::default().build(&coll);
        let owned = a.clone().into_blocks();
        a.sort_by_cardinality();
        a.retain_comparable();
        let kind = a.kind();
        let mut expected: Vec<_> = owned
            .into_iter()
            .filter(|b| b.cardinality(kind) > 0)
            .map(|b| (b.key, b.profiles().to_vec()))
            .collect();
        let mut got: Vec<_> = a.iter().map(|b| (b.key, b.profiles().to_vec())).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }
}
