//! Parallel-engine equivalence: the sharded execution paths are
//! observationally identical to the sequential paths — and, transitively,
//! to the string-keyed seed semantics preserved in
//! [`sper_blocking::legacy`] — at every thread count.
//!
//! What is pinned down:
//!
//! * **Weights** — the LeCoBI-sharded `parallel_blocking_graph` reproduces
//!   the naive string-keyed weight of every edge under all four weighting
//!   schemes at 1–8 threads, with the exact sequential edge order.
//! * **Blocks** — `parallel_token_blocking` equals the sequential build
//!   (also covered per shard count in `interned_equivalence.rs`).
//! * **Neighbor List** — `par_build` is bit-identical to `build` for any
//!   seed and thread count (tournament merge = stable sort).
//! * **Degenerate inputs** — empty and single-profile collections take the
//!   parallel paths without panicking and produce the sequential results.

use proptest::prelude::*;
use sper_blocking::legacy::{string_block_lists, string_token_blocking, string_weight};
use sper_blocking::{
    parallel_blocking_graph, parallel_token_blocking, BlockingGraph, NeighborList, TokenBlocking,
    WeightingScheme,
};
use sper_model::{Pair, ProfileCollection, ProfileCollectionBuilder};

/// Random collections over a tiny alphabet — small vocabularies maximize
/// token collisions, which is where blocking behavior lives. Half the
/// cases are Dirty (both vecs in one source), half Clean-clean (P1 | P2).
fn any_collection() -> impl Strategy<Value = ProfileCollection> {
    (
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        proptest::collection::vec("[a-e ]{1,10}", 1..13),
        0u8..2,
    )
        .prop_map(|(p1, p2, kind)| {
            let mut b = if kind == 0 {
                ProfileCollectionBuilder::dirty()
            } else {
                ProfileCollectionBuilder::clean_clean()
            };
            for v in p1 {
                b.add_profile([("t", v)]);
            }
            if kind != 0 {
                b.start_second_source();
            }
            for v in p2 {
                b.add_profile([("t", v)]);
            }
            b.build()
        })
}

proptest! {
    /// Parallel weight computation ≡ the string-keyed seed weights, for
    /// all four schemes at 1–8 threads: every edge of the sharded graph
    /// carries the weight the naive legacy intersection computes, and the
    /// edge sequence equals the sequential builder's.
    #[test]
    fn parallel_weights_match_legacy(coll in any_collection(), threads in 1usize..9) {
        let legacy = string_token_blocking(&coll);
        let lists = string_block_lists(&legacy, coll.len());
        // Key-sorted block order on both sides, so block ids line up.
        let blocks = TokenBlocking::default().build(&coll);
        for scheme in WeightingScheme::ALL {
            let sequential = BlockingGraph::build(&blocks, scheme);
            let parallel = parallel_blocking_graph(&blocks, scheme, threads)
                .expect("threads > 0");
            let seq_edges: Vec<(Pair, f64)> = sequential.edges().collect();
            let par_edges: Vec<(Pair, f64)> = parallel.edges().collect();
            prop_assert_eq!(par_edges.len(), seq_edges.len());
            for ((pp, pw), (sp, sw)) in par_edges.iter().zip(&seq_edges) {
                prop_assert_eq!(pp, sp, "edge order diverged under {}", scheme);
                prop_assert!((pw - sw).abs() < 1e-12);
                let expected = string_weight(
                    &legacy, &lists, coll.kind(), pp.first, pp.second, scheme,
                );
                prop_assert!(
                    (pw - expected).abs() < 1e-9,
                    "{scheme} weight of {:?} at {threads} threads: {pw} vs seed {expected}",
                    pp
                );
            }
        }
    }

    /// The parallel Neighbor List build is bit-identical to the sequential
    /// build for any seed and thread count.
    #[test]
    fn parallel_neighbor_list_matches_sequential(
        coll in any_collection(),
        seed in 0u64..1000,
        threads in 1usize..9,
    ) {
        let sequential = NeighborList::build_with_keys(&coll, seed);
        let parallel = NeighborList::par_build_with_keys(&coll, seed, threads)
            .expect("threads > 0");
        prop_assert_eq!(parallel.as_slice(), sequential.as_slice());
        for i in 0..sequential.len() {
            prop_assert_eq!(parallel.key_at(i), sequential.key_at(i), "key at {}", i);
        }
    }
}

#[test]
fn empty_collection_under_parallel_paths() {
    let empty = ProfileCollectionBuilder::dirty().build();
    for threads in 1..=8 {
        let blocks = parallel_token_blocking(&empty, threads).expect("threads > 0");
        assert!(blocks.is_empty());
        let graph =
            parallel_blocking_graph(&blocks, WeightingScheme::Arcs, threads).expect("threads > 0");
        assert_eq!(graph.num_edges(), 0);
        assert_eq!(graph.num_nodes(), 0);
        let nl = NeighborList::par_build(&empty, 7, threads).expect("threads > 0");
        assert!(nl.is_empty());
    }
}

#[test]
fn single_profile_under_parallel_paths() {
    let mut b = ProfileCollectionBuilder::dirty();
    b.add_profile([("name", "solitary profile with several tokens")]);
    let one = b.build();
    let sequential_blocks = TokenBlocking::default().build(&one);
    let sequential_nl = NeighborList::build(&one, 7);
    for threads in 1..=8 {
        // One profile → no comparable blocks survive the cardinality
        // filter, exactly like the sequential build.
        let blocks = parallel_token_blocking(&one, threads).expect("threads > 0");
        assert_eq!(blocks.len(), sequential_blocks.len());
        let graph =
            parallel_blocking_graph(&blocks, WeightingScheme::Ecbs, threads).expect("threads > 0");
        assert_eq!(graph.num_edges(), 0);
        let nl = NeighborList::par_build(&one, 7, threads).expect("threads > 0");
        assert_eq!(nl.as_slice(), sequential_nl.as_slice());
    }
}
