//! Runtime-dispatched SIMD kernels for the sparse-accumulator sweep.
//!
//! The spacc hot loops ([`crate::spacc`]) are scatter/gather over a dense
//! per-profile scratch: for every valid co-occurrence `(i, j)` the sweep
//! reads `acc[j]`, tests it for first touch, and adds the block's
//! contribution. This module provides three implementations of that
//! accumulate step plus the ascending touched-scan used by edge emission:
//!
//! * **AVX2** — 4-lane `f64` gathers (`vgatherdpd`) with a branchless
//!   first-touch mask (`vcmppd` + `vmovmskpd`); the stores stay scalar
//!   because AVX2 has no scatter instruction.
//! * **SSE2** — 128-bit chunked variant: 4 ids are loaded per iteration
//!   with one `movdqu` and processed with pair-wise `f64` loads; on
//!   x86_64, SSE2 is a baseline feature, so this path always exists.
//! * **Scalar** — a chunked plain-Rust loop, the only path on
//!   non-x86_64 targets and the forced path under `SPER_NO_SIMD=1`.
//!
//! All three are **bit-identical**: each neighbor's accumulation is one
//! `f64` add per shared block applied in the same block order, lanes never
//! alias (block members are strictly increasing ids), and the first-touch
//! list is pushed in partition order lane by lane. The equivalence is
//! pinned by `tests/simd_equivalence.rs` for every scheme, ER kind, and
//! worker count.
//!
//! Dispatch happens once per process ([`KernelPath::active`]): the chosen
//! path is recorded as a `spacc.kernel_dispatch` trace event and a
//! `kernel_dispatch` gauge so every trace and metrics dump names the code
//! path that produced the run.

use std::sync::OnceLock;

/// Which accumulate-kernel implementation a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// 4-lane AVX2 gather kernel (x86_64 with `avx2` detected).
    Avx2,
    /// 128-bit SSE2 chunked kernel (x86_64 baseline).
    Sse2,
    /// Chunked scalar kernel (all targets; forced by `SPER_NO_SIMD=1`).
    Scalar,
}

impl KernelPath {
    /// Short name for traces, gauges, and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Avx2 => "avx2",
            KernelPath::Sse2 => "sse2",
            KernelPath::Scalar => "scalar",
        }
    }

    /// Stable gauge code (`kernel_dispatch` metric): scalar 0, sse2 1,
    /// avx2 2.
    pub fn code(self) -> i64 {
        match self {
            KernelPath::Scalar => 0,
            KernelPath::Sse2 => 1,
            KernelPath::Avx2 => 2,
        }
    }

    /// Pure dispatch policy: the best path given the `SPER_NO_SIMD`
    /// override and the detected CPU features. Split out from
    /// [`Self::active`] so the policy is unit-testable without mutating
    /// process environment.
    pub fn select(no_simd_env: Option<&str>, has_avx2: bool, has_sse2: bool) -> Self {
        let forced_off = no_simd_env.is_some_and(|v| !v.is_empty() && v != "0");
        if forced_off {
            KernelPath::Scalar
        } else if has_avx2 {
            KernelPath::Avx2
        } else if has_sse2 {
            KernelPath::Sse2
        } else {
            KernelPath::Scalar
        }
    }

    /// The process-wide dispatched path: detected once, cached, and
    /// reported through `sper-obs` (one `spacc.kernel_dispatch` event at
    /// Info level plus the `kernel_dispatch` gauge) so a trace always
    /// records which kernel produced the run.
    pub fn active() -> Self {
        static ACTIVE: OnceLock<KernelPath> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let env = std::env::var("SPER_NO_SIMD").ok();
            #[cfg(target_arch = "x86_64")]
            let path = KernelPath::select(
                env.as_deref(),
                std::arch::is_x86_feature_detected!("avx2"),
                std::arch::is_x86_feature_detected!("sse2"),
            );
            #[cfg(not(target_arch = "x86_64"))]
            let path = KernelPath::select(env.as_deref(), false, false);
            sper_obs::event!(
                sper_obs::Level::Info,
                "spacc.kernel_dispatch",
                path = path.name(),
            );
            sper_obs::metrics::global()
                .gauge("kernel_dispatch")
                .set(path.code());
            path
        })
    }

    /// Accumulates one block's `contribution` into `acc` for every id of
    /// `ids`, pushing first-touched ids onto `touched` (in `ids` order)
    /// and recording `bid` as their least-common-block witness.
    ///
    /// `ids` must be strictly increasing (block members are), so lanes
    /// never alias; every id must be `< acc.len()`.
    #[inline]
    pub(crate) fn accumulate(
        self,
        ids: &[u32],
        contribution: f64,
        bid: u32,
        acc: &mut [f64],
        lcb: &mut [u32],
        touched: &mut Vec<u32>,
    ) {
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => {
                // SAFETY: `active()`/the caller only selects Avx2 when the
                // CPU reports the feature; `debug_assert`s and the
                // BlockMembers contract bound every id by `acc.len()`.
                unsafe { accumulate_avx2(ids, contribution, bid, acc, lcb, touched) }
            }
            #[cfg(target_arch = "x86_64")]
            KernelPath::Sse2 => {
                // SAFETY: SSE2 is unconditionally available on x86_64.
                unsafe { accumulate_sse2(ids, contribution, bid, acc, lcb, touched) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            KernelPath::Avx2 | KernelPath::Sse2 => {
                accumulate_scalar(ids, contribution, bid, acc, lcb, touched)
            }
            KernelPath::Scalar => accumulate_scalar(ids, contribution, bid, acc, lcb, touched),
        }
    }
}

impl KernelPath {
    /// Computes JS weights for one neighborhood: `js[k]`/`accs[k]` are the
    /// drained (ascending) neighbors and accumulated shared-block counts of
    /// profile `i`, `ti = term[i]`, and `term` maps every profile to its
    /// block-list length. `out` is cleared and refilled with one weight per
    /// neighbor, each bit-identical to
    /// [`crate::weights::FinalizeTable::weight`].
    pub(crate) fn js_weights(
        self,
        ti: f64,
        term: &[f64],
        js: &[u32],
        accs: &[f64],
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(js.len(), accs.len());
        out.clear();
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => {
                // SAFETY: Avx2 is only selected when the CPU reports the
                // feature; every neighbor id indexes `term` in-bounds (ids
                // are profile ids and `term` has one entry per profile).
                unsafe { js_weights_avx2(ti, term, js, accs, out) }
            }
            _ => js_weights_scalar(ti, term, js, accs, out),
        }
    }

    /// Computes ECBS weights for one neighborhood — same contract as
    /// [`Self::js_weights`] with `term` holding the per-profile
    /// `ln(|B|/|B_p|)` factors.
    pub(crate) fn ecbs_weights(
        self,
        ti: f64,
        term: &[f64],
        js: &[u32],
        accs: &[f64],
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(js.len(), accs.len());
        out.clear();
        match self {
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => {
                // SAFETY: same preconditions as the JS kernel above.
                unsafe { ecbs_weights_avx2(ti, term, js, accs, out) }
            }
            _ => ecbs_weights_scalar(ti, term, js, accs, out),
        }
    }
}

/// Zeroes the touched slots of `acc` — the reset hot loop. Chunked with a
/// 4-wide unroll for store-port ILP; there is no vector form because the
/// stores are a scatter, which x86_64 lacks below AVX-512 (the dense
/// alternative — zeroing whole cache lines via the drain bitmap — lives in
/// `WeightAccumulator::drain_ascending`, which fuses emission and reset).
pub(crate) fn clear_touched(touched: &[u32], acc: &mut [f64]) {
    let mut chunks = touched.chunks_exact(4);
    for c in &mut chunks {
        acc[c[0] as usize] = 0.0;
        acc[c[1] as usize] = 0.0;
        acc[c[2] as usize] = 0.0;
        acc[c[3] as usize] = 0.0;
    }
    for &j in chunks.remainder() {
        acc[j as usize] = 0.0;
    }
}

/// Scalar JS finalization — the reference the AVX2 variant must match bit
/// for bit: `union = (ti + term[j]) − acc`, weight `acc/union` clamped to
/// `0.0` when the union is non-positive.
fn js_weights_scalar(ti: f64, term: &[f64], js: &[u32], accs: &[f64], out: &mut Vec<f64>) {
    for (&j, &acc) in js.iter().zip(accs) {
        let union = ti + term[j as usize] - acc;
        out.push(if union <= 0.0 { 0.0 } else { acc / union });
    }
}

/// Scalar ECBS finalization — reference semantics `(acc · ti) · term[j]`.
fn ecbs_weights_scalar(ti: f64, term: &[f64], js: &[u32], accs: &[f64], out: &mut Vec<f64>) {
    for (&j, &acc) in js.iter().zip(accs) {
        out.push(acc * ti * term[j as usize]);
    }
}

/// AVX2 JS finalization: gathers 4 endpoint terms per iteration, forms the
/// union and quotient with packed `f64` ops in the scalar path's exact
/// association order (`(ti + tj) − acc`, then `acc / union`), and blends
/// `0.0` into non-positive-union lanes with a packed `>` compare — the
/// same lanes the scalar `union <= 0.0` test zeroes (negative zero
/// compares equal, and the terms/accumulations are finite by
/// construction, so no NaN reaches the compare).
///
/// # Safety
///
/// Caller must guarantee the CPU supports AVX2 and every id of `js` is
/// `< term.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn js_weights_avx2(ti: f64, term: &[f64], js: &[u32], accs: &[f64], out: &mut Vec<f64>) {
    use std::arch::x86_64::*;
    let tiv = _mm256_set1_pd(ti);
    let zero = _mm256_setzero_pd();
    let mut staged = [0f64; 4];
    let mut k = 0;
    while k + 4 <= js.len() {
        // SAFETY: `k + 4 <= js.len()` leaves 16 readable bytes of ids and
        // 32 of accumulations; unaligned loads have no alignment demand.
        let idx = unsafe { _mm_loadu_si128(js.as_ptr().add(k) as *const __m128i) };
        // SAFETY: every id is < term.len() (caller contract); scale 8.
        let tj = unsafe { _mm256_i32gather_pd(term.as_ptr(), idx, 8) };
        // SAFETY: in-bounds per the loop guard.
        let acc = unsafe { _mm256_loadu_pd(accs.as_ptr().add(k)) };
        let union_ = _mm256_sub_pd(_mm256_add_pd(tiv, tj), acc);
        let quotient = _mm256_div_pd(acc, union_);
        // Lane is kept iff union > 0.0 — the complement of the scalar
        // `union <= 0.0 → 0.0` clamp. Division by a clamped lane is
        // discarded by the blend; no FP exception escapes (Rust runs with
        // exceptions masked).
        let keep = _mm256_cmp_pd::<_CMP_GT_OQ>(union_, zero);
        // SAFETY: `staged` is 32 writable bytes.
        unsafe { _mm256_storeu_pd(staged.as_mut_ptr(), _mm256_blendv_pd(zero, quotient, keep)) };
        out.extend_from_slice(&staged);
        k += 4;
    }
    js_weights_scalar(ti, term, &js[k..], &accs[k..], out);
}

/// AVX2 ECBS finalization: gathers 4 endpoint terms and applies the two
/// packed multiplies in the scalar association order (`(acc · ti) · tj`) —
/// `vmulpd` is exact per-lane IEEE, so the product bits equal the scalar
/// path's.
///
/// # Safety
///
/// Caller must guarantee the CPU supports AVX2 and every id of `js` is
/// `< term.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ecbs_weights_avx2(ti: f64, term: &[f64], js: &[u32], accs: &[f64], out: &mut Vec<f64>) {
    use std::arch::x86_64::*;
    let tiv = _mm256_set1_pd(ti);
    let mut staged = [0f64; 4];
    let mut k = 0;
    while k + 4 <= js.len() {
        // SAFETY: `k + 4 <= js.len()` leaves 16 readable bytes of ids and
        // 32 of accumulations.
        let idx = unsafe { _mm_loadu_si128(js.as_ptr().add(k) as *const __m128i) };
        // SAFETY: every id is < term.len() (caller contract); scale 8.
        let tj = unsafe { _mm256_i32gather_pd(term.as_ptr(), idx, 8) };
        // SAFETY: in-bounds per the loop guard.
        let acc = unsafe { _mm256_loadu_pd(accs.as_ptr().add(k)) };
        let w = _mm256_mul_pd(_mm256_mul_pd(acc, tiv), tj);
        // SAFETY: `staged` is 32 writable bytes.
        unsafe { _mm256_storeu_pd(staged.as_mut_ptr(), w) };
        out.extend_from_slice(&staged);
        k += 4;
    }
    ecbs_weights_scalar(ti, term, &js[k..], &accs[k..], out);
}

/// The chunked scalar accumulate: the reference semantics every SIMD
/// variant must reproduce bit for bit, and the only path off x86_64.
pub(crate) fn accumulate_scalar(
    ids: &[u32],
    contribution: f64,
    bid: u32,
    acc: &mut [f64],
    lcb: &mut [u32],
    touched: &mut Vec<u32>,
) {
    for &j in ids {
        let slot = &mut acc[j as usize];
        if *slot == 0.0 {
            touched.push(j);
            lcb[j as usize] = bid;
        }
        *slot += contribution;
    }
}

/// SSE2 variant: ids are pulled 4 at a time with one unaligned 128-bit
/// load; the `f64` read-modify-writes stay scalar (SSE2 has neither
/// gather nor scatter), so this is the chunked-scalar loop with vector id
/// staging — measurably identical output, and the path that keeps the
/// dispatch total on pre-AVX2 x86_64.
///
/// # Safety
///
/// Caller must guarantee every id in `ids` is `< acc.len()` (the
/// [`crate::spacc::BlockMembers`] contract).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn accumulate_sse2(
    ids: &[u32],
    contribution: f64,
    bid: u32,
    acc: &mut [f64],
    lcb: &mut [u32],
    touched: &mut Vec<u32>,
) {
    use std::arch::x86_64::*;
    let mut chunks = ids.chunks_exact(4);
    let mut staged = [0u32; 4];
    for chunk in &mut chunks {
        // SAFETY: `chunks_exact(4)` guarantees 16 readable bytes; movdqu
        // has no alignment requirement.
        let lanes = unsafe { _mm_loadu_si128(chunk.as_ptr() as *const __m128i) };
        // SAFETY: `staged` is 16 writable bytes.
        unsafe { _mm_storeu_si128(staged.as_mut_ptr() as *mut __m128i, lanes) };
        for &j in &staged {
            let slot = &mut acc[j as usize];
            if *slot == 0.0 {
                touched.push(j);
                lcb[j as usize] = bid;
            }
            *slot += contribution;
        }
    }
    accumulate_scalar(chunks.remainder(), contribution, bid, acc, lcb, touched);
}

/// AVX2 variant: 4 neighbor slots are gathered per iteration
/// (`vgatherdpd`), first touches are detected branchlessly with a packed
/// compare against zero, the broadcast contribution is added across all
/// lanes, and the results are scattered back with scalar stores (AVX2 has
/// no scatter). First-touch bookkeeping walks the 4-bit movemask in lane
/// order, preserving the scalar path's touched-list order exactly.
///
/// # Safety
///
/// Caller must guarantee the CPU supports AVX2 and every id in `ids` is
/// `< acc.len()` (the [`crate::spacc::BlockMembers`] contract).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(
    ids: &[u32],
    contribution: f64,
    bid: u32,
    acc: &mut [f64],
    lcb: &mut [u32],
    touched: &mut Vec<u32>,
) {
    use std::arch::x86_64::*;
    let base = acc.as_mut_ptr();
    let contrib = _mm256_set1_pd(contribution);
    let zero = _mm256_setzero_pd();
    let mut chunks = ids.chunks_exact(4);
    let mut sums = [0f64; 4];
    for chunk in &mut chunks {
        // SAFETY: `chunks_exact(4)` guarantees 16 readable bytes of ids.
        let idx = unsafe { _mm_loadu_si128(chunk.as_ptr() as *const __m128i) };
        // SAFETY: every id is < acc.len() (caller contract), so all four
        // gathered addresses are in-bounds; scale 8 = size_of::<f64>().
        let slots = unsafe { _mm256_i32gather_pd(base as *const f64, idx, 8) };
        // Lane k is all-ones iff acc[ids[k]] == 0.0 — the first touch.
        let first_touch = _mm256_cmp_pd::<_CMP_EQ_OQ>(slots, zero);
        let mut fresh = _mm256_movemask_pd(first_touch) as u32;
        _mm256_storeu_pd(sums.as_mut_ptr(), _mm256_add_pd(slots, contrib));
        // Scalar scatter: lanes hold distinct ids (strictly increasing
        // block members), so the 4 stores never alias the gather above.
        for (lane, &sum) in sums.iter().enumerate() {
            // SAFETY: in-bounds per the caller contract (id < acc.len(),
            // and lcb has the same length as acc).
            let j = unsafe { *chunk.get_unchecked(lane) };
            unsafe { *base.add(j as usize) = sum };
            if fresh & 1 != 0 {
                touched.push(j);
                // SAFETY: same bound as the acc store.
                unsafe { *lcb.as_mut_ptr().add(j as usize) = bid };
            }
            fresh >>= 1;
        }
    }
    accumulate_scalar(chunks.remainder(), contribution, bid, acc, lcb, touched);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_path(
        path: KernelPath,
        blocks: &[(&[u32], f64, u32)],
        n: usize,
    ) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
        let mut acc = vec![0.0; n];
        let mut lcb = vec![0u32; n];
        let mut touched = Vec::new();
        for &(ids, c, bid) in blocks {
            path.accumulate(ids, c, bid, &mut acc, &mut lcb, &mut touched);
        }
        (acc, lcb, touched)
    }

    #[test]
    fn paths_agree_on_a_mixed_sweep() {
        // 11 ids exercises full chunks plus a 3-lane tail.
        let b1: Vec<u32> = vec![1, 2, 3, 5, 8, 9, 10, 12, 13, 17, 19];
        let b2: Vec<u32> = vec![2, 3, 9, 13, 19];
        let blocks: Vec<(&[u32], f64, u32)> = vec![(&b1, 0.25, 7), (&b2, 0.5, 9)];
        let reference = run_path(KernelPath::Scalar, &blocks, 24);
        let mut paths = vec![];
        #[cfg(target_arch = "x86_64")]
        {
            paths.push(KernelPath::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                paths.push(KernelPath::Avx2);
            }
        }
        for path in paths {
            let got = run_path(path, &blocks, 24);
            assert_eq!(got.0, reference.0, "{path:?} acc");
            assert_eq!(got.1, reference.1, "{path:?} lcb");
            assert_eq!(got.2, reference.2, "{path:?} touched order");
        }
    }

    #[test]
    fn dispatch_policy() {
        // SPER_NO_SIMD forces scalar regardless of features; "0"/"" do not.
        assert_eq!(
            KernelPath::select(Some("1"), true, true),
            KernelPath::Scalar
        );
        assert_eq!(
            KernelPath::select(Some("yes"), true, true),
            KernelPath::Scalar
        );
        assert_eq!(KernelPath::select(Some("0"), true, true), KernelPath::Avx2);
        assert_eq!(KernelPath::select(Some(""), true, true), KernelPath::Avx2);
        assert_eq!(KernelPath::select(None, true, true), KernelPath::Avx2);
        assert_eq!(KernelPath::select(None, false, true), KernelPath::Sse2);
        assert_eq!(KernelPath::select(None, false, false), KernelPath::Scalar);
    }

    #[test]
    fn names_and_codes_are_stable() {
        assert_eq!(KernelPath::Avx2.name(), "avx2");
        assert_eq!(KernelPath::Sse2.name(), "sse2");
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Scalar.code(), 0);
        assert_eq!(KernelPath::Sse2.code(), 1);
        assert_eq!(KernelPath::Avx2.code(), 2);
    }

    #[test]
    fn active_is_cached_and_consistent() {
        assert_eq!(KernelPath::active(), KernelPath::active());
    }

    #[test]
    fn clear_touched_zeroes_exactly_the_touched_slots() {
        let mut acc = vec![1.5; 32];
        // 6 ids: one full chunk plus a 2-id tail.
        let touched = [0u32, 3, 7, 12, 21, 31];
        clear_touched(&touched, &mut acc);
        for (j, &v) in acc.iter().enumerate() {
            let expect = if touched.contains(&(j as u32)) {
                0.0
            } else {
                1.5
            };
            assert_eq!(v, expect, "slot {j}");
        }
    }

    #[test]
    fn finalize_kernels_agree_with_scalar() {
        // Terms and accumulations chosen to hit the degenerate-union clamp
        // (js[2]: union = 1.0 + 1.0 - 2.0 = 0.0) and a full chunk + tail.
        let term: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let js: Vec<u32> = vec![0, 1, 1, 4, 5, 6];
        let accs: Vec<f64> = vec![1.0, 0.5, 2.0, 3.0, 2.5, 1.5];
        let ti = 1.0;
        for (name, run) in [
            (
                "js",
                KernelPath::js_weights
                    as fn(KernelPath, f64, &[f64], &[u32], &[f64], &mut Vec<f64>),
            ),
            ("ecbs", KernelPath::ecbs_weights),
        ] {
            let mut reference = Vec::new();
            run(KernelPath::Scalar, ti, &term, &js, &accs, &mut reference);
            assert_eq!(reference.len(), js.len());
            let mut paths = vec![KernelPath::Sse2];
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                paths.push(KernelPath::Avx2);
            }
            for path in paths {
                let mut got = Vec::new();
                run(path, ti, &term, &js, &accs, &mut got);
                let bits = |v: &[f64]| v.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&got), bits(&reference), "{name} via {path:?}");
            }
        }
        // The clamp actually fired for the degenerate union.
        let mut w = Vec::new();
        KernelPath::Scalar.js_weights(ti, &term, &js, &accs, &mut w);
        assert_eq!(w[2], 0.0);
    }
}
