//! The string-keyed reference implementations that the interned columnar
//! core replaced.
//!
//! Kept (not dead code) for two purposes:
//!
//! 1. **Equivalence testing** — the property tests in
//!    `tests/interned_equivalence.rs` assert that the interned/CSR pipeline
//!    is observationally identical to these seed semantics: same blocks,
//!    same edge weights, same Neighbor List.
//! 2. **Benchmarking** — the criterion group `interning` and the
//!    `bench_interning` / `bench_weighting` harnesses measure the interned
//!    and sparse-accumulator paths against these baselines, giving the repo
//!    a tracked perf trajectory (`BENCH_interning.json`,
//!    `BENCH_weighting.json`).
//!
//! Nothing in the production pipeline calls into this module.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sper_model::{ErKind, Pair, ProfileCollection, ProfileId, SourceId};
use sper_text::{FxHashSet, Tokenizer};
use std::collections::HashMap;

use crate::block::BlockCollection;
use crate::profile_index::ProfileIndex;
use crate::weights::WeightingScheme;

/// A string-keyed block: the pre-interning representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringBlock {
    /// The blocking key, owned.
    pub key: String,
    /// Members, `P1` partition first, each partition ascending.
    pub members: Vec<ProfileId>,
    /// `|b ∩ P1|`.
    pub n_first: u32,
}

impl StringBlock {
    fn new(key: String, members: Vec<(ProfileId, SourceId)>) -> Self {
        let mut firsts: Vec<ProfileId> = Vec::new();
        let mut seconds: Vec<ProfileId> = Vec::new();
        for (p, s) in members {
            if s == SourceId::FIRST {
                firsts.push(p);
            } else {
                seconds.push(p);
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        seconds.sort_unstable();
        seconds.dedup();
        let n_first = firsts.len() as u32;
        firsts.extend(seconds);
        Self {
            key,
            members: firsts,
            n_first,
        }
    }

    /// `‖b‖` under `kind`.
    pub fn cardinality(&self, kind: ErKind) -> u64 {
        crate::block::cardinality_of(kind, self.members.len(), self.n_first)
    }
}

/// The seed's Token Blocking: `HashMap<String, Vec<members>>` with one
/// owned `String` per token per profile, output sorted by key.
pub fn string_token_blocking(profiles: &ProfileCollection) -> Vec<StringBlock> {
    let tokenizer = Tokenizer::default();
    let mut index: HashMap<String, Vec<(ProfileId, SourceId)>> = HashMap::new();
    let mut tokens: Vec<String> = Vec::new();
    for p in profiles.iter() {
        tokens.clear();
        for attr in &p.attributes {
            tokenizer.tokenize_into(&attr.value, &mut tokens);
        }
        tokens.sort_unstable();
        tokens.dedup();
        for tok in &tokens {
            index.entry(tok.clone()).or_default().push((p.id, p.source));
        }
    }
    let kind = profiles.kind();
    let mut blocks: Vec<StringBlock> = index
        .into_iter()
        .map(|(key, members)| StringBlock::new(key, members))
        .filter(|b| b.cardinality(kind) > 0)
        .collect();
    blocks.sort_by(|a, b| a.key.cmp(&b.key));
    blocks
}

/// The seed's per-profile block lists over string-keyed blocks (block id =
/// position in the key-sorted `blocks` slice), for reference weighting.
pub fn string_block_lists(blocks: &[StringBlock], n_profiles: usize) -> Vec<Vec<u32>> {
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_profiles];
    for (bid, block) in blocks.iter().enumerate() {
        for &p in &block.members {
            lists[p.index()].push(bid as u32);
        }
    }
    lists
}

/// Reference edge weight computed naively from string-keyed block lists
/// (set intersection, no merge fusion) — the semantics every fast path
/// must reproduce bit-for-bit.
pub fn string_weight(
    blocks: &[StringBlock],
    lists: &[Vec<u32>],
    kind: ErKind,
    i: ProfileId,
    j: ProfileId,
    scheme: WeightingScheme,
) -> f64 {
    let (a, b) = (&lists[i.index()], &lists[j.index()]);
    let shared: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
    let acc: f64 = shared
        .iter()
        .map(|&bid| scheme.per_block(blocks[bid as usize].cardinality(kind)))
        .sum();
    scheme.finalize(acc, a.len(), b.len(), blocks.len())
}

/// The pre-kernel edge-list builder: visit every comparison of every
/// block, dedup repeats through a hashed `seen` set, and merge-intersect
/// the two profiles' block lists per new pair (`O(|B_i| + |B_j|)` each).
///
/// This was `BlockingGraph::build` until the sparse-accumulator kernel
/// ([`crate::spacc`]) replaced it; it is kept as the order-and-weight
/// reference the kernel is property-tested against, and as the baseline of
/// the `bench_weighting` harness.
pub fn legacy_graph_edges(blocks: &BlockCollection, scheme: WeightingScheme) -> Vec<(Pair, f64)> {
    let index = ProfileIndex::build(blocks);
    let kind = blocks.kind();
    let mut seen: FxHashSet<Pair> = FxHashSet::default();
    let mut edges: Vec<(Pair, f64)> = Vec::new();
    for block in blocks.iter() {
        for pair in block.comparisons(kind) {
            if seen.insert(pair) {
                let w = index.weight(pair.first, pair.second, scheme);
                edges.push((pair, w));
            }
        }
    }
    edges
}

/// The seed's Neighbor List build: string placements, stable string sort,
/// one RNG threaded through the equal-key runs. Returns the list and (for
/// inspection) the key of every position.
pub fn string_neighbor_list(
    profiles: &ProfileCollection,
    seed: u64,
) -> (Vec<ProfileId>, Vec<String>) {
    let tokenizer = Tokenizer::default();
    let mut placements: Vec<(String, ProfileId)> = Vec::new();
    for p in profiles.iter() {
        let mut toks = p.tokens(&tokenizer);
        toks.sort_unstable();
        toks.dedup();
        for t in toks {
            placements.push((t, p.id));
        }
    }
    placements.sort_by(|a, b| a.0.cmp(&b.0));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut start = 0;
    while start < placements.len() {
        let mut end = start + 1;
        while end < placements.len() && placements[end].0 == placements[start].0 {
            end += 1;
        }
        if end - start > 1 {
            placements[start..end].shuffle(&mut rng);
        }
        start = end;
    }
    let nl = placements.iter().map(|&(_, p)| p).collect();
    let keys = placements.into_iter().map(|(k, _)| k).collect();
    (nl, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;

    #[test]
    fn legacy_fig3_blocks() {
        let blocks = string_token_blocking(&fig3_profiles());
        let keys: Vec<&str> = blocks.iter().map(|b| b.key.as_str()).collect();
        assert_eq!(keys, vec!["carl", "ml", "ny", "tailor", "teacher", "white"]);
    }

    #[test]
    fn legacy_neighbor_list_is_sorted() {
        let (nl, keys) = string_neighbor_list(&fig3_profiles(), 7);
        assert_eq!(nl.len(), 24);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
