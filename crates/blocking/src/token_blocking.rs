//! Schema-agnostic Standard Blocking, a.k.a. Token Blocking (§3, \[7\], \[18\]).
//!
//! Creates one block per distinct attribute-value token that stems from at
//! least two profiles (Dirty ER) or from both sources (Clean-clean ER) —
//! disregarding attribute names entirely, which is what makes the approach
//! schema-agnostic.

use crate::block::{Block, BlockCollection};
use sper_model::{ProfileCollection, ProfileId, SourceId};
use sper_text::{Tokenizer, TokenizerConfig};
use std::collections::HashMap;

/// Token Blocking builder.
#[derive(Debug, Clone, Default)]
pub struct TokenBlocking {
    tokenizer: Tokenizer,
}

impl TokenBlocking {
    /// Uses a custom tokenizer configuration.
    pub fn with_config(config: TokenizerConfig) -> Self {
        Self {
            tokenizer: Tokenizer::new(config),
        }
    }

    /// Builds the block collection for `profiles`.
    ///
    /// Blocks that cannot yield a valid comparison are dropped: singleton
    /// blocks in Dirty ER, single-source blocks in Clean-clean ER.
    pub fn build(&self, profiles: &ProfileCollection) -> BlockCollection {
        let mut index: HashMap<String, Vec<(ProfileId, SourceId)>> = HashMap::new();
        let mut tokens: Vec<String> = Vec::new();
        for p in profiles.iter() {
            tokens.clear();
            for attr in &p.attributes {
                self.tokenizer.tokenize_into(&attr.value, &mut tokens);
            }
            // A profile enters each token block once, regardless of how many
            // attributes repeat the token.
            tokens.sort_unstable();
            tokens.dedup();
            for tok in &tokens {
                index.entry(tok.clone()).or_default().push((p.id, p.source));
            }
        }

        let kind = profiles.kind();
        let mut blocks: Vec<Block> = index
            .into_iter()
            .map(|(key, members)| Block::new(key, members))
            .filter(|b| b.cardinality(kind) > 0)
            .collect();
        // HashMap iteration order is unspecified; fix a deterministic order.
        blocks.sort_by(|a, b| a.key.cmp(&b.key));
        BlockCollection::new(kind, profiles.len(), blocks)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use sper_model::ProfileCollectionBuilder;

    pub(crate) use crate::fixtures::fig3_profiles;

    #[test]
    fn fig3_token_blocks() {
        let coll = fig3_profiles();
        let blocks = TokenBlocking::default().build(&coll);
        let find = |key: &str| {
            blocks
                .iter()
                .find(|b| b.key == key)
                .unwrap_or_else(|| panic!("missing block {key}"))
        };
        // Fig. 3(b): carl → {p1,p2}; ny → {p1,p2,p3}; tailor → {p1,p2,p3,p6};
        // ml → {p4,p5}; teacher → {p4,p5}; white → all six.
        assert_eq!(find("carl").size(), 2);
        assert_eq!(find("ny").size(), 3);
        assert_eq!(find("tailor").size(), 4);
        assert_eq!(find("ml").size(), 2);
        assert_eq!(find("teacher").size(), 2);
        assert_eq!(find("white").size(), 6);
        // Singleton tokens (carl_white, ellen, emma, hellen, karl_white,
        // wi) are dropped; exactly the six blocks of Fig. 3(b) remain.
        let mut keys: Vec<_> = blocks.iter().map(|b| b.key.as_str()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["carl", "ml", "ny", "tailor", "teacher", "white"]);
    }

    #[test]
    fn profile_enters_block_once() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("a", "white white white")]);
        b.add_profile([("b", "white")]);
        let blocks = TokenBlocking::default().build(&b.build());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.get(crate::BlockId(0)).size(), 2);
    }

    #[test]
    fn clean_clean_requires_both_sources() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("n", "alpha shared")]);
        b.add_profile([("n", "alpha other")]);
        b.start_second_source();
        b.add_profile([("n", "shared thing")]);
        let coll = b.build();
        let blocks = TokenBlocking::default().build(&coll);
        // "alpha" appears only in P1 → no block; "shared" spans sources.
        assert!(!blocks.iter().any(|b| b.key == "alpha"));
        assert!(blocks.iter().any(|b| b.key == "shared"));
    }

    #[test]
    fn deterministic_order() {
        let coll = fig3_profiles();
        let b1 = TokenBlocking::default().build(&coll);
        let b2 = TokenBlocking::default().build(&coll);
        let keys1: Vec<_> = b1.iter().map(|b| b.key.clone()).collect();
        let keys2: Vec<_> = b2.iter().map(|b| b.key.clone()).collect();
        assert_eq!(keys1, keys2);
    }

    #[test]
    fn empty_collection() {
        let coll = ProfileCollectionBuilder::dirty().build();
        let blocks = TokenBlocking::default().build(&coll);
        assert!(blocks.is_empty());
    }
}
