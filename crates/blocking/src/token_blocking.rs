//! Schema-agnostic Standard Blocking, a.k.a. Token Blocking (§3, \[7\], \[18\]).
//!
//! Creates one block per distinct attribute-value token that stems from at
//! least two profiles (Dirty ER) or from both sources (Clean-clean ER) —
//! disregarding attribute names entirely, which is what makes the approach
//! schema-agnostic.
//!
//! The build is fully interned: tokens go straight from the normalization
//! buffer into [`TokenId`]s (no per-token `String`), per-profile dedup is a
//! `u32` sort, and the token → members index is a flat `Vec` indexed by id
//! instead of a string-keyed hash map. Output order (lexicographic by key)
//! and contents are identical to the historical string-keyed build.

use crate::block::{Block, BlockCollection};
use sper_model::{ProfileCollection, ProfileId};
use sper_text::{TokenId, TokenInterner, Tokenizer, TokenizerConfig};
use std::sync::Arc;

/// Token Blocking builder.
#[derive(Debug, Clone, Default)]
pub struct TokenBlocking {
    tokenizer: Tokenizer,
}

impl TokenBlocking {
    /// Uses a custom tokenizer configuration.
    pub fn with_config(config: TokenizerConfig) -> Self {
        Self {
            tokenizer: Tokenizer::new(config),
        }
    }

    /// Builds the block collection for `profiles` with a fresh interner.
    ///
    /// Blocks that cannot yield a valid comparison are dropped: singleton
    /// blocks in Dirty ER, single-source blocks in Clean-clean ER.
    pub fn build(&self, profiles: &ProfileCollection) -> BlockCollection {
        self.build_with_interner(profiles, TokenInterner::shared())
    }

    /// Like [`Self::build`] with an existing (possibly shared) interner —
    /// ids already interned elsewhere are reused, new tokens append.
    pub fn build_with_interner(
        &self,
        profiles: &ProfileCollection,
        interner: Arc<TokenInterner>,
    ) -> BlockCollection {
        let mut span = sper_obs::span!("blocking.token_build", profiles = profiles.len());
        // token id → member profile ids, flat-indexed; grown as the
        // vocabulary grows. Profiles are visited in id order with all P1
        // profiles before P2 (the ProfileCollection invariant), so every
        // bucket is born deduplicated, ascending and source-partitioned.
        let mut index: Vec<Vec<ProfileId>> = Vec::new();
        let mut ids: Vec<TokenId> = Vec::new();
        for p in profiles.iter() {
            ids.clear();
            for attr in &p.attributes {
                self.tokenizer
                    .tokenize_ids_into(&attr.value, &interner, &mut ids);
            }
            // A profile enters each token block once, regardless of how many
            // attributes repeat the token. Dense ids make the dedup free:
            // all of this profile's pushes happen now, so a repeated token's
            // bucket already ends with this profile — no sort needed.
            if index.len() < interner.len() {
                index.resize_with(interner.len(), Vec::new);
            }
            for &tok in &ids {
                let bucket = &mut index[tok.index()];
                if bucket.last() != Some(&p.id) {
                    bucket.push(p.id);
                }
            }
        }

        let kind = profiles.kind();
        // First id of `P2`; every member below it belongs to `P1`.
        let boundary = ProfileId(profiles.len_first() as u32);
        let blocks: Vec<Block> = index
            .into_iter()
            .enumerate()
            .filter(|(_, members)| !members.is_empty())
            .map(|(id, members)| {
                let n_first = members.partition_point(|&p| p < boundary) as u32;
                Block::from_partitioned(TokenId(id as u32), members, n_first)
            })
            .filter(|b| b.cardinality(kind) > 0)
            .collect();
        let mut coll = BlockCollection::new(kind, profiles.len(), interner, blocks);
        // Deterministic lexicographic order, independent of interning order.
        coll.sort_by_key_str();
        span.record("blocks", coll.len());
        coll
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use sper_model::ProfileCollectionBuilder;

    pub(crate) use crate::fixtures::fig3_profiles;

    #[test]
    fn fig3_token_blocks() {
        let coll = fig3_profiles();
        let blocks = TokenBlocking::default().build(&coll);
        let find = |key: &str| {
            blocks
                .iter()
                .find(|b| &*b.key_str() == key)
                .unwrap_or_else(|| panic!("missing block {key}"))
        };
        // Fig. 3(b): carl → {p1,p2}; ny → {p1,p2,p3}; tailor → {p1,p2,p3,p6};
        // ml → {p4,p5}; teacher → {p4,p5}; white → all six.
        assert_eq!(find("carl").size(), 2);
        assert_eq!(find("ny").size(), 3);
        assert_eq!(find("tailor").size(), 4);
        assert_eq!(find("ml").size(), 2);
        assert_eq!(find("teacher").size(), 2);
        assert_eq!(find("white").size(), 6);
        // Singleton tokens (carl_white, ellen, emma, hellen, karl_white,
        // wi) are dropped; exactly the six blocks of Fig. 3(b) remain.
        let mut keys: Vec<String> = blocks.iter().map(|b| b.key_str().to_string()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["carl", "ml", "ny", "tailor", "teacher", "white"]);
    }

    #[test]
    fn profile_enters_block_once() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("a", "white white white")]);
        b.add_profile([("b", "white")]);
        let blocks = TokenBlocking::default().build(&b.build());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.get(crate::BlockId(0)).size(), 2);
    }

    #[test]
    fn clean_clean_requires_both_sources() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("n", "alpha shared")]);
        b.add_profile([("n", "alpha other")]);
        b.start_second_source();
        b.add_profile([("n", "shared thing")]);
        let coll = b.build();
        let blocks = TokenBlocking::default().build(&coll);
        // "alpha" appears only in P1 → no block; "shared" spans sources.
        assert!(!blocks.iter().any(|b| &*b.key_str() == "alpha"));
        assert!(blocks.iter().any(|b| &*b.key_str() == "shared"));
    }

    #[test]
    fn deterministic_order() {
        let coll = fig3_profiles();
        let b1 = TokenBlocking::default().build(&coll);
        let b2 = TokenBlocking::default().build(&coll);
        let keys1: Vec<String> = b1.iter().map(|b| b.key_str().to_string()).collect();
        let keys2: Vec<String> = b2.iter().map(|b| b.key_str().to_string()).collect();
        assert_eq!(keys1, keys2);
        // Blocks come out in lexicographic key order.
        let mut sorted = keys1.clone();
        sorted.sort_unstable();
        assert_eq!(keys1, sorted);
    }

    #[test]
    fn shared_interner_reuses_ids() {
        let coll = fig3_profiles();
        let interner = TokenInterner::shared();
        let b1 = TokenBlocking::default().build_with_interner(&coll, Arc::clone(&interner));
        let b2 = TokenBlocking::default().build_with_interner(&coll, Arc::clone(&interner));
        // Same vocabulary interned once; key ids stable across builds.
        let k1: Vec<_> = b1.iter().map(|b| b.key).collect();
        let k2: Vec<_> = b2.iter().map(|b| b.key).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn empty_collection() {
        let coll = ProfileCollectionBuilder::dirty().build();
        let blocks = TokenBlocking::default().build(&coll);
        assert!(blocks.is_empty());
    }
}
