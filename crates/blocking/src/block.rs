//! Blocks and block collections (§3 notation: `|b|`, `‖b‖`, `|B|`, `‖B‖`),
//! in the interned columnar representation.
//!
//! Keys are dense [`TokenId`]s (see [`sper_text::TokenInterner`]); a
//! [`BlockCollection`] stores its blocks in **CSR form** (compressed sparse
//! row): one packed member array plus per-block offsets, instead of one
//! heap allocation per block. [`Block`] remains as the *owned, growable*
//! building unit used by the streaming ingest path and the suffix forest;
//! collections pack those into CSR on construction.

use sper_model::{ErKind, Pair, ProfileId, SourceId};
use sper_text::{TokenId, TokenInterner};
use std::sync::Arc;

/// Identifier of a block inside a [`BlockCollection`]. After block
/// scheduling (sorting by cardinality), the id equals the processing
/// position — the property the LeCoBI condition relies on (§5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Checked CSR offset: the packed arrays index with `u32`; past 4 G
/// entries the representation must fail loudly, not wrap into silent
/// corruption.
#[inline]
pub(crate) fn csr_offset(len: usize) -> u32 {
    u32::try_from(len).expect("CSR array exceeds u32::MAX entries")
}

/// Per-row counts → CSR offsets (exclusive prefix sums), overflow-checked.
/// The shared first half of every counting-scatter CSR build in this crate
/// (profile index, graph adjacency); scatter with a clone of the result as
/// the per-row cursor.
pub(crate) fn prefix_offsets(counts: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    offsets.push(0u32);
    let mut acc = 0u64;
    for &c in counts {
        acc += u64::from(c);
        offsets.push(csr_offset(acc as usize));
    }
    offsets
}

/// Computes `‖b‖` from a member count and the `P1` partition size.
#[inline]
pub(crate) fn cardinality_of(kind: ErKind, size: usize, n_first: u32) -> u64 {
    match kind {
        ErKind::Dirty => {
            let n = size as u64;
            n * n.saturating_sub(1) / 2
        }
        ErKind::CleanClean => {
            let n1 = u64::from(n_first);
            let n2 = size as u64 - n1;
            n1 * n2
        }
    }
}

/// Appends a member slice's valid comparisons to `out`.
fn push_comparisons(out: &mut Vec<Pair>, kind: ErKind, members: &[ProfileId], n_first: u32) {
    match kind {
        ErKind::Dirty => {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    out.push(Pair::new(a, b));
                }
            }
        }
        ErKind::CleanClean => {
            let (firsts, seconds) = members.split_at(n_first as usize);
            for &a in firsts {
                for &b in seconds {
                    out.push(Pair::new(a, b));
                }
            }
        }
    }
}

/// An owned block: the set of profiles indexed under one blocking key.
///
/// This is the *building* representation — the streaming substrates grow
/// blocks member by member, the suffix forest owns one per node. Query-side
/// consumers see [`BlockRef`] views into a CSR [`BlockCollection`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The interned blocking key (attribute-value token, suffix, …).
    pub key: TokenId,
    /// Member profiles, sorted ascending by id.
    profiles: Vec<ProfileId>,
    /// How many members belong to `SourceId::FIRST` (needed for the
    /// Clean-clean cardinality `|b ∩ P1| · |b ∩ P2|`). The members are
    /// stored with all `P1` profiles before all `P2` profiles.
    n_first: u32,
}

impl Block {
    /// Builds a block from `(profile, source)` members. Members are
    /// deduplicated and sorted with `P1` profiles first, each group in
    /// ascending id order.
    pub fn new(key: TokenId, members: Vec<(ProfileId, SourceId)>) -> Self {
        let mut firsts: Vec<ProfileId> = Vec::new();
        let mut seconds: Vec<ProfileId> = Vec::new();
        for (p, s) in members {
            if s == SourceId::FIRST {
                firsts.push(p);
            } else {
                seconds.push(p);
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        seconds.sort_unstable();
        seconds.dedup();
        let n_first = firsts.len() as u32;
        firsts.extend(seconds);
        Self {
            key,
            profiles: firsts,
            n_first,
        }
    }

    /// Builds a block from members that are **already** deduplicated,
    /// ascending within each source partition, with all `P1` members
    /// before any `P2` member — the invariant bucket construction over a
    /// [`ProfileCollection`](sper_model::ProfileCollection)'s id order produces naturally (its P1
    /// profiles precede its P2 profiles). Checked in debug builds.
    pub fn from_partitioned(key: TokenId, profiles: Vec<ProfileId>, n_first: u32) -> Self {
        debug_assert!(n_first as usize <= profiles.len());
        debug_assert!(profiles[..n_first as usize].windows(2).all(|w| w[0] < w[1]));
        debug_assert!(profiles[n_first as usize..].windows(2).all(|w| w[0] < w[1]));
        Self {
            key,
            profiles,
            n_first,
        }
    }

    /// Builds a Dirty-ER block (all members from the single source).
    pub fn new_dirty(key: TokenId, mut members: Vec<ProfileId>) -> Self {
        members.sort_unstable();
        members.dedup();
        let n_first = members.len() as u32;
        Self {
            key,
            profiles: members,
            n_first,
        }
    }

    /// Appends one member to a live block — the streaming ingest path
    /// (`sper-stream`), where profiles arrive in ascending id order and all
    /// `P1` profiles precede all `P2` profiles (the [`ProfileCollection`](sper_model::ProfileCollection)
    /// id-density invariant). Duplicate ids are ignored.
    ///
    /// # Panics
    ///
    /// Panics when the id order or source layout would be violated.
    pub fn push_member(&mut self, p: ProfileId, source: SourceId) {
        if source == SourceId::FIRST {
            assert!(
                self.profiles.len() == self.n_first as usize,
                "P1 members must be added before any P2 member"
            );
            match self.first_source().last() {
                Some(&last) if last == p => return,
                Some(&last) => assert!(last < p, "members must arrive in ascending id order"),
                None => {}
            }
            self.profiles.insert(self.n_first as usize, p);
            self.n_first += 1;
        } else {
            match self.second_source().last() {
                Some(&last) if last == p => return,
                Some(&last) => assert!(last < p, "members must arrive in ascending id order"),
                None => {}
            }
            self.profiles.push(p);
        }
    }

    /// Block size `|b|`: the number of profiles it contains.
    #[inline]
    pub fn size(&self) -> usize {
        self.profiles.len()
    }

    /// Members, `P1` profiles first.
    #[inline]
    pub fn profiles(&self) -> &[ProfileId] {
        &self.profiles
    }

    /// Members belonging to `P1`.
    pub fn first_source(&self) -> &[ProfileId] {
        &self.profiles[..self.n_first as usize]
    }

    /// Members belonging to `P2` (empty in Dirty ER).
    pub fn second_source(&self) -> &[ProfileId] {
        &self.profiles[self.n_first as usize..]
    }

    /// Block cardinality `‖b‖`: the number of comparisons the block yields —
    /// `C(|b|, 2)` for Dirty ER, `|b∩P1|·|b∩P2|` for Clean-clean ER
    /// (comparisons are only meaningful across sources).
    pub fn cardinality(&self, kind: ErKind) -> u64 {
        cardinality_of(kind, self.profiles.len(), self.n_first)
    }

    /// Iterates the block's valid comparisons: all unordered pairs for
    /// Dirty ER, cross-source pairs for Clean-clean ER.
    pub fn comparisons(&self, kind: ErKind) -> Vec<Pair> {
        let mut out = Vec::with_capacity(self.cardinality(kind) as usize);
        push_comparisons(&mut out, kind, &self.profiles, self.n_first);
        out
    }
}

/// A borrowed view of one block inside a CSR [`BlockCollection`].
#[derive(Debug, Clone, Copy)]
pub struct BlockRef<'a> {
    /// The interned blocking key.
    pub key: TokenId,
    interner: &'a TokenInterner,
    members: &'a [ProfileId],
    n_first: u32,
}

impl<'a> BlockRef<'a> {
    /// The key's string, resolved through the collection's interner.
    pub fn key_str(&self) -> Arc<str> {
        self.interner.resolve(self.key)
    }

    /// Block size `|b|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Members, `P1` profiles first.
    #[inline]
    pub fn profiles(&self) -> &'a [ProfileId] {
        self.members
    }

    /// Members belonging to `P1`.
    #[inline]
    pub fn first_source(&self) -> &'a [ProfileId] {
        &self.members[..self.n_first as usize]
    }

    /// Members belonging to `P2` (empty in Dirty ER).
    #[inline]
    pub fn second_source(&self) -> &'a [ProfileId] {
        &self.members[self.n_first as usize..]
    }

    /// Block cardinality `‖b‖`.
    pub fn cardinality(&self, kind: ErKind) -> u64 {
        cardinality_of(kind, self.members.len(), self.n_first)
    }

    /// The block's valid comparisons (see [`Block::comparisons`]).
    pub fn comparisons(&self, kind: ErKind) -> Vec<Pair> {
        let mut out = Vec::with_capacity(self.cardinality(kind) as usize);
        push_comparisons(&mut out, kind, self.members, self.n_first);
        out
    }

    /// Clones the view into an owned [`Block`].
    pub fn to_block(&self) -> Block {
        Block {
            key: self.key,
            profiles: self.members.to_vec(),
            n_first: self.n_first,
        }
    }
}

/// A set of blocks in CSR form, together with the task kind, profile count
/// and the token interner that resolves the keys.
///
/// Layout (`|B|` blocks, `Σ|b|` total memberships):
///
/// ```text
/// keys:     [TokenId; |B|]        block key, by block id
/// offsets:  [u32; |B| + 1]        members of block i = members[offsets[i]..offsets[i+1]]
/// members:  [ProfileId; Σ|b|]     packed, P1 partition first within each block
/// n_firsts: [u32; |B|]            |b ∩ P1| per block
/// ```
///
/// One contiguous member array instead of `|B|` separate `Vec`s: iteration
/// and cardinality math are sequential scans, clones are three `memcpy`s,
/// and reordering (block scheduling) is a gather pass.
///
/// ```
/// use sper_blocking::TokenBlocking;
/// use sper_model::ProfileCollectionBuilder;
///
/// let mut b = ProfileCollectionBuilder::dirty();
/// b.add_profile([("name", "carl white")]);
/// b.add_profile([("name", "karl white")]);
/// let blocks = TokenBlocking::default().build(&b.build());
/// // "carl"/"karl" are singletons (no comparison → dropped); the shared
/// // token "white" blocks both profiles together.
/// assert_eq!(blocks.len(), 1);
/// assert_eq!(blocks.total_comparisons(), 1);
/// let white = blocks.iter().next().unwrap();
/// assert_eq!(&*white.key_str(), "white");
/// assert_eq!(white.size(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BlockCollection {
    kind: ErKind,
    n_profiles: usize,
    interner: Arc<TokenInterner>,
    keys: Vec<TokenId>,
    offsets: Vec<u32>,
    members: Vec<ProfileId>,
    n_firsts: Vec<u32>,
}

impl BlockCollection {
    /// Packs owned blocks into CSR form, preserving their order.
    pub fn new(
        kind: ErKind,
        n_profiles: usize,
        interner: Arc<TokenInterner>,
        blocks: Vec<Block>,
    ) -> Self {
        let total: usize = blocks.iter().map(Block::size).sum();
        let mut keys = Vec::with_capacity(blocks.len());
        let mut offsets = Vec::with_capacity(blocks.len() + 1);
        let mut members = Vec::with_capacity(total);
        let mut n_firsts = Vec::with_capacity(blocks.len());
        offsets.push(0u32);
        for b in blocks {
            keys.push(b.key);
            n_firsts.push(b.n_first);
            members.extend_from_slice(&b.profiles);
            offsets.push(csr_offset(members.len()));
        }
        Self {
            kind,
            n_profiles,
            interner,
            keys,
            offsets,
            members,
            n_firsts,
        }
    }

    /// Packs borrowed blocks into CSR form, preserving order — the
    /// zero-intermediate-copy path for snapshots that keep their owned
    /// blocks (`sper-stream`).
    pub fn from_borrowed<'a>(
        kind: ErKind,
        n_profiles: usize,
        interner: Arc<TokenInterner>,
        blocks: impl Iterator<Item = &'a Block> + Clone,
    ) -> Self {
        let total: usize = blocks.clone().map(Block::size).sum();
        let count = blocks.clone().count();
        let mut keys = Vec::with_capacity(count);
        let mut offsets = Vec::with_capacity(count + 1);
        let mut members = Vec::with_capacity(total);
        let mut n_firsts = Vec::with_capacity(count);
        offsets.push(0u32);
        for b in blocks {
            keys.push(b.key);
            n_firsts.push(b.n_first);
            members.extend_from_slice(&b.profiles);
            offsets.push(csr_offset(members.len()));
        }
        Self {
            kind,
            n_profiles,
            interner,
            keys,
            offsets,
            members,
            n_firsts,
        }
    }

    /// An empty collection with a fresh interner.
    pub fn empty(kind: ErKind, n_profiles: usize) -> Self {
        Self::new(kind, n_profiles, TokenInterner::shared(), Vec::new())
    }

    /// The task kind the blocks were built for.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Number of profiles in the underlying collection.
    pub fn n_profiles(&self) -> usize {
        self.n_profiles
    }

    /// The interner resolving this collection's keys.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// `|B|`: the number of blocks.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total memberships `Σ|b|` (the packed member-array length).
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// The members of block `i`, `P1` partition first.
    #[inline]
    fn members_of(&self, i: usize) -> &[ProfileId] {
        &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The block with the given id.
    #[inline]
    pub fn get(&self, id: BlockId) -> BlockRef<'_> {
        let i = id.index();
        BlockRef {
            key: self.keys[i],
            interner: &self.interner,
            members: self.members_of(i),
            n_first: self.n_firsts[i],
        }
    }

    /// The interned key of a block.
    #[inline]
    pub fn key(&self, id: BlockId) -> TokenId {
        self.keys[id.index()]
    }

    /// The key string of a block, resolved through the interner.
    pub fn key_str(&self, id: BlockId) -> Arc<str> {
        self.interner.resolve(self.keys[id.index()])
    }

    /// `‖b‖` of block `id` under the collection's kind.
    #[inline]
    pub fn cardinality(&self, id: BlockId) -> u64 {
        let i = id.index();
        cardinality_of(
            self.kind,
            (self.offsets[i + 1] - self.offsets[i]) as usize,
            self.n_firsts[i],
        )
    }

    /// Iterates the blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = BlockRef<'_>> {
        (0..self.len()).map(move |i| self.get(BlockId(i as u32)))
    }

    /// Consumes the collection, materializing owned blocks (id order).
    pub fn into_blocks(self) -> Vec<Block> {
        (0..self.len())
            .map(|i| Block {
                key: self.keys[i],
                profiles: self.members_of(i).to_vec(),
                n_first: self.n_firsts[i],
            })
            .collect()
    }

    /// `‖B‖`: the aggregate cardinality (total comparisons, with repeats
    /// across blocks counted multiply).
    pub fn total_comparisons(&self) -> u64 {
        (0..self.len())
            .map(|i| self.cardinality(BlockId(i as u32)))
            .sum()
    }

    /// Average block size `|b̄|`.
    pub fn avg_block_size(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.members.len() as f64 / self.len() as f64
    }

    /// Rebuilds the CSR arrays in the order given by `order` (a permutation
    /// of block indices) — an `O(Σ|b|)` gather.
    fn permute(&mut self, order: &[u32]) {
        let mut keys = Vec::with_capacity(order.len());
        let mut offsets = Vec::with_capacity(order.len() + 1);
        let mut members = Vec::with_capacity(self.members.len());
        let mut n_firsts = Vec::with_capacity(order.len());
        offsets.push(0u32);
        for &i in order {
            let i = i as usize;
            keys.push(self.keys[i]);
            n_firsts.push(self.n_firsts[i]);
            members.extend_from_slice(self.members_of(i));
            offsets.push(csr_offset(members.len()));
        }
        self.keys = keys;
        self.offsets = offsets;
        self.members = members;
        self.n_firsts = n_firsts;
    }

    /// Sorts blocks in non-decreasing cardinality — Block Scheduling
    /// (§5.2.1, Algorithm 3 line 2). Ties keep their previous relative
    /// order so results stay deterministic.
    pub fn sort_by_cardinality(&mut self) {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by_key(|&i| self.cardinality(BlockId(i)));
        self.permute(&order);
    }

    /// Sorts blocks lexicographically by resolved key string — the
    /// deterministic output order of Token Blocking. Each key is resolved
    /// once; only this collection's keys are compared (the interner's full
    /// vocabulary may be much larger).
    pub fn sort_by_key_str(&mut self) {
        let strings: Vec<Arc<str>> = self
            .keys
            .iter()
            .map(|&k| self.interner.resolve(k))
            .collect();
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| strings[a as usize].cmp(&strings[b as usize]));
        self.permute(&order);
    }

    /// Keeps only the blocks satisfying `pred`, preserving order — an
    /// in-place CSR compaction.
    pub fn retain(&mut self, mut pred: impl FnMut(BlockRef<'_>) -> bool) {
        let order: Vec<u32> = (0..self.len() as u32)
            .filter(|&i| pred(self.get(BlockId(i))))
            .collect();
        if order.len() != self.len() {
            self.permute(&order);
        }
    }

    /// Drops blocks that yield no valid comparison (singletons; single-
    /// source blocks in Clean-clean ER).
    pub fn retain_comparable(&mut self) {
        let kind = self.kind;
        self.retain(|b| b.cardinality(kind) > 0);
    }

    /// Borrowed views of the raw CSR arrays, in layout order — the
    /// persistence boundary (`sper-store`) serializes exactly these.
    pub fn raw_parts(&self) -> BlockCsrParts<'_> {
        BlockCsrParts {
            kind: self.kind,
            n_profiles: self.n_profiles,
            keys: &self.keys,
            offsets: &self.offsets,
            members: &self.members,
            n_firsts: &self.n_firsts,
        }
    }

    /// Reassembles a collection from raw CSR arrays — the inverse of
    /// [`raw_parts`](Self::raw_parts). Callers (the persistence layer)
    /// must validate untrusted input first; invariants are only
    /// debug-asserted here.
    pub fn from_raw_parts(
        kind: ErKind,
        n_profiles: usize,
        interner: Arc<TokenInterner>,
        keys: Vec<TokenId>,
        offsets: Vec<u32>,
        members: Vec<ProfileId>,
        n_firsts: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), keys.len() + 1);
        debug_assert_eq!(n_firsts.len(), keys.len());
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(members.len() as u32));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            kind,
            n_profiles,
            interner,
            keys,
            offsets,
            members,
            n_firsts,
        }
    }
}

/// Borrowed raw CSR arrays of a [`BlockCollection`] (see
/// [`BlockCollection::raw_parts`]).
#[derive(Debug, Clone, Copy)]
pub struct BlockCsrParts<'a> {
    /// The task kind.
    pub kind: ErKind,
    /// Number of profiles in the underlying collection.
    pub n_profiles: usize,
    /// Block key per block id.
    pub keys: &'a [TokenId],
    /// CSR offsets into `members` (`|B| + 1` entries).
    pub offsets: &'a [u32],
    /// Packed members, `P1` partition first within each block.
    pub members: &'a [ProfileId],
    /// `|b ∩ P1|` per block id.
    pub n_firsts: &'a [u32],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    fn coll(
        kind: ErKind,
        n: usize,
        it: &Arc<TokenInterner>,
        blocks: Vec<Block>,
    ) -> BlockCollection {
        BlockCollection::new(kind, n, Arc::clone(it), blocks)
    }

    #[test]
    fn dirty_cardinality_is_binomial() {
        let it = TokenInterner::shared();
        // Fig. 3b: |b_tailor| = 4 → ‖b_tailor‖ = C(4,2) = 6.
        let b = Block::new_dirty(it.intern("tailor"), vec![pid(0), pid(1), pid(2), pid(5)]);
        assert_eq!(b.size(), 4);
        assert_eq!(b.cardinality(ErKind::Dirty), 6);
        assert_eq!(b.comparisons(ErKind::Dirty).len(), 6);
    }

    #[test]
    fn clean_clean_cardinality_is_cross_product() {
        let it = TokenInterner::shared();
        let b = Block::new(
            it.intern("white"),
            vec![
                (pid(0), SourceId::FIRST),
                (pid(1), SourceId::FIRST),
                (pid(7), SourceId::SECOND),
            ],
        );
        assert_eq!(b.cardinality(ErKind::CleanClean), 2);
        let cmps = b.comparisons(ErKind::CleanClean);
        assert_eq!(cmps.len(), 2);
        assert!(cmps.contains(&Pair::new(pid(0), pid(7))));
        assert!(cmps.contains(&Pair::new(pid(1), pid(7))));
    }

    #[test]
    fn members_deduplicated_and_sorted() {
        let it = TokenInterner::shared();
        let b = Block::new_dirty(it.intern("k"), vec![pid(3), pid(1), pid(3)]);
        assert_eq!(b.profiles(), &[pid(1), pid(3)]);
    }

    #[test]
    fn single_source_block_yields_nothing_in_clean_clean() {
        let it = TokenInterner::shared();
        let b = Block::new(
            it.intern("k"),
            vec![(pid(0), SourceId::FIRST), (pid(1), SourceId::FIRST)],
        );
        assert_eq!(b.cardinality(ErKind::CleanClean), 0);
        assert!(b.comparisons(ErKind::CleanClean).is_empty());
    }

    #[test]
    fn collection_stats() {
        let it = TokenInterner::shared();
        let blocks = vec![
            Block::new_dirty(it.intern("a"), vec![pid(0), pid(1)]),
            Block::new_dirty(it.intern("b"), vec![pid(0), pid(1), pid(2)]),
        ];
        let coll = coll(ErKind::Dirty, 3, &it, blocks);
        assert_eq!(coll.len(), 2);
        assert_eq!(coll.total_comparisons(), 1 + 3);
        assert_eq!(coll.total_members(), 5);
        assert!((coll.avg_block_size() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scheduling_sorts_by_cardinality() {
        let it = TokenInterner::shared();
        let blocks = vec![
            Block::new_dirty(it.intern("big"), vec![pid(0), pid(1), pid(2), pid(3)]),
            Block::new_dirty(it.intern("small"), vec![pid(0), pid(1)]),
        ];
        let mut coll = coll(ErKind::Dirty, 4, &it, blocks);
        coll.sort_by_cardinality();
        assert_eq!(&*coll.key_str(BlockId(0)), "small");
        assert_eq!(&*coll.key_str(BlockId(1)), "big");
    }

    #[test]
    fn key_sort_orders_by_string_not_id() {
        let it = TokenInterner::shared();
        // Intern in reverse-alphabetical order: ids disagree with strings.
        let blocks = vec![
            Block::new_dirty(it.intern("zeta"), vec![pid(0), pid(1)]),
            Block::new_dirty(it.intern("alpha"), vec![pid(0), pid(1)]),
        ];
        let mut coll = coll(ErKind::Dirty, 2, &it, blocks);
        coll.sort_by_key_str();
        assert_eq!(&*coll.key_str(BlockId(0)), "alpha");
        assert_eq!(&*coll.key_str(BlockId(1)), "zeta");
    }

    #[test]
    fn push_member_matches_batch_construction() {
        let it = TokenInterner::shared();
        let k = it.intern("k");
        let mut streamed = Block::new_dirty(k, vec![]);
        for i in [1u32, 3, 3, 7] {
            streamed.push_member(pid(i), SourceId::FIRST);
        }
        assert_eq!(streamed, Block::new_dirty(k, vec![pid(1), pid(3), pid(7)]));

        let mut cc = Block::new(k, vec![]);
        cc.push_member(pid(0), SourceId::FIRST);
        cc.push_member(pid(2), SourceId::SECOND);
        cc.push_member(pid(5), SourceId::SECOND);
        let batch = Block::new(
            k,
            vec![
                (pid(0), SourceId::FIRST),
                (pid(2), SourceId::SECOND),
                (pid(5), SourceId::SECOND),
            ],
        );
        assert_eq!(cc, batch);
        assert_eq!(cc.cardinality(ErKind::CleanClean), 2);
    }

    #[test]
    #[should_panic(expected = "ascending id order")]
    fn push_member_rejects_out_of_order_ids() {
        let it = TokenInterner::shared();
        let mut b = Block::new_dirty(it.intern("k"), vec![pid(5)]);
        b.push_member(pid(2), SourceId::FIRST);
    }

    #[test]
    fn retain_comparable_drops_empty() {
        let it = TokenInterner::shared();
        let blocks = vec![
            Block::new_dirty(it.intern("single"), vec![pid(0)]),
            Block::new_dirty(it.intern("pair"), vec![pid(0), pid(1)]),
        ];
        let mut coll = coll(ErKind::Dirty, 2, &it, blocks);
        coll.retain_comparable();
        assert_eq!(coll.len(), 1);
        assert_eq!(&*coll.key_str(BlockId(0)), "pair");
        // CSR offsets compacted along with the blocks.
        assert_eq!(coll.total_members(), 2);
    }

    #[test]
    fn csr_round_trips_through_owned_blocks() {
        let it = TokenInterner::shared();
        let blocks = vec![
            Block::new_dirty(it.intern("a"), vec![pid(0), pid(2)]),
            Block::new_dirty(it.intern("b"), vec![pid(1), pid(2), pid(3)]),
        ];
        let coll = coll(ErKind::Dirty, 4, &it, blocks.clone());
        assert_eq!(coll.clone().into_blocks(), blocks);
        for (r, b) in coll.iter().zip(&blocks) {
            assert_eq!(r.to_block(), *b);
        }
    }
}
