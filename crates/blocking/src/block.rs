//! Blocks and block collections (§3 notation: `|b|`, `‖b‖`, `|B|`, `‖B‖`).

use sper_model::{ErKind, Pair, ProfileId, SourceId};

/// Identifier of a block inside a [`BlockCollection`]. After block
/// scheduling (sorting by cardinality), the id equals the processing
/// position — the property the LeCoBI condition relies on (§5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A block: the set of profiles indexed under one blocking key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The blocking key (attribute-value token, suffix, …).
    pub key: String,
    /// Member profiles, sorted ascending by id.
    profiles: Vec<ProfileId>,
    /// How many members belong to `SourceId::FIRST` (needed for the
    /// Clean-clean cardinality `|b ∩ P1| · |b ∩ P2|`). The members are
    /// stored with all `P1` profiles before all `P2` profiles.
    n_first: u32,
}

impl Block {
    /// Builds a block from `(profile, source)` members. Members are
    /// deduplicated and sorted with `P1` profiles first, each group in
    /// ascending id order.
    pub fn new(key: impl Into<String>, members: Vec<(ProfileId, SourceId)>) -> Self {
        let mut firsts: Vec<ProfileId> = Vec::new();
        let mut seconds: Vec<ProfileId> = Vec::new();
        for (p, s) in members {
            if s == SourceId::FIRST {
                firsts.push(p);
            } else {
                seconds.push(p);
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        seconds.sort_unstable();
        seconds.dedup();
        let n_first = firsts.len() as u32;
        firsts.extend(seconds);
        Self {
            key: key.into(),
            profiles: firsts,
            n_first,
        }
    }

    /// Builds a Dirty-ER block (all members from the single source).
    pub fn new_dirty(key: impl Into<String>, mut members: Vec<ProfileId>) -> Self {
        members.sort_unstable();
        members.dedup();
        let n_first = members.len() as u32;
        Self {
            key: key.into(),
            profiles: members,
            n_first,
        }
    }

    /// Appends one member to a live block — the streaming ingest path
    /// (`sper-stream`), where profiles arrive in ascending id order and all
    /// `P1` profiles precede all `P2` profiles (the [`ProfileCollection`]
    /// id-density invariant). Duplicate ids are ignored.
    ///
    /// # Panics
    ///
    /// Panics when the id order or source layout would be violated.
    pub fn push_member(&mut self, p: ProfileId, source: SourceId) {
        if source == SourceId::FIRST {
            assert!(
                self.profiles.len() == self.n_first as usize,
                "P1 members must be added before any P2 member"
            );
            match self.first_source().last() {
                Some(&last) if last == p => return,
                Some(&last) => assert!(last < p, "members must arrive in ascending id order"),
                None => {}
            }
            self.profiles.insert(self.n_first as usize, p);
            self.n_first += 1;
        } else {
            match self.second_source().last() {
                Some(&last) if last == p => return,
                Some(&last) => assert!(last < p, "members must arrive in ascending id order"),
                None => {}
            }
            self.profiles.push(p);
        }
    }

    /// Block size `|b|`: the number of profiles it contains.
    #[inline]
    pub fn size(&self) -> usize {
        self.profiles.len()
    }

    /// Members, `P1` profiles first.
    #[inline]
    pub fn profiles(&self) -> &[ProfileId] {
        &self.profiles
    }

    /// Members belonging to `P1`.
    pub fn first_source(&self) -> &[ProfileId] {
        &self.profiles[..self.n_first as usize]
    }

    /// Members belonging to `P2` (empty in Dirty ER).
    pub fn second_source(&self) -> &[ProfileId] {
        &self.profiles[self.n_first as usize..]
    }

    /// Block cardinality `‖b‖`: the number of comparisons the block yields —
    /// `C(|b|, 2)` for Dirty ER, `|b∩P1|·|b∩P2|` for Clean-clean ER
    /// (comparisons are only meaningful across sources).
    pub fn cardinality(&self, kind: ErKind) -> u64 {
        match kind {
            ErKind::Dirty => {
                let n = self.profiles.len() as u64;
                n * n.saturating_sub(1) / 2
            }
            ErKind::CleanClean => {
                let n1 = u64::from(self.n_first);
                let n2 = self.profiles.len() as u64 - n1;
                n1 * n2
            }
        }
    }

    /// Iterates the block's valid comparisons: all unordered pairs for
    /// Dirty ER, cross-source pairs for Clean-clean ER.
    pub fn comparisons(&self, kind: ErKind) -> Vec<Pair> {
        let mut out = Vec::with_capacity(self.cardinality(kind) as usize);
        match kind {
            ErKind::Dirty => {
                for (i, &a) in self.profiles.iter().enumerate() {
                    for &b in &self.profiles[i + 1..] {
                        out.push(Pair::new(a, b));
                    }
                }
            }
            ErKind::CleanClean => {
                for &a in self.first_source() {
                    for &b in self.second_source() {
                        out.push(Pair::new(a, b));
                    }
                }
            }
        }
        out
    }
}

/// A set of blocks together with the task kind and profile count.
#[derive(Debug, Clone)]
pub struct BlockCollection {
    kind: ErKind,
    n_profiles: usize,
    blocks: Vec<Block>,
}

impl BlockCollection {
    /// Wraps raw blocks.
    pub fn new(kind: ErKind, n_profiles: usize, blocks: Vec<Block>) -> Self {
        Self {
            kind,
            n_profiles,
            blocks,
        }
    }

    /// The task kind the blocks were built for.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Number of profiles in the underlying collection.
    pub fn n_profiles(&self) -> usize {
        self.n_profiles
    }

    /// `|B|`: the number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block with the given id.
    pub fn get(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Iterates the blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Consumes the collection, returning the blocks.
    pub fn into_blocks(self) -> Vec<Block> {
        self.blocks
    }

    /// `‖B‖`: the aggregate cardinality (total comparisons, with repeats
    /// across blocks counted multiply).
    pub fn total_comparisons(&self) -> u64 {
        self.blocks.iter().map(|b| b.cardinality(self.kind)).sum()
    }

    /// Average block size `|b̄|`.
    pub fn avg_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let total: usize = self.blocks.iter().map(Block::size).sum();
        total as f64 / self.blocks.len() as f64
    }

    /// Sorts blocks in non-decreasing cardinality — Block Scheduling
    /// (§5.2.1, Algorithm 3 line 2). Ties keep their previous relative
    /// order so results stay deterministic.
    pub fn sort_by_cardinality(&mut self) {
        let kind = self.kind;
        self.blocks.sort_by_key(|b| b.cardinality(kind));
    }

    /// Drops blocks that yield no valid comparison (singletons; single-
    /// source blocks in Clean-clean ER).
    pub fn retain_comparable(&mut self) {
        let kind = self.kind;
        self.blocks.retain(|b| b.cardinality(kind) > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn dirty_cardinality_is_binomial() {
        // Fig. 3b: |b_tailor| = 4 → ‖b_tailor‖ = C(4,2) = 6.
        let b = Block::new_dirty("tailor", vec![pid(0), pid(1), pid(2), pid(5)]);
        assert_eq!(b.size(), 4);
        assert_eq!(b.cardinality(ErKind::Dirty), 6);
        assert_eq!(b.comparisons(ErKind::Dirty).len(), 6);
    }

    #[test]
    fn clean_clean_cardinality_is_cross_product() {
        let b = Block::new(
            "white",
            vec![
                (pid(0), SourceId::FIRST),
                (pid(1), SourceId::FIRST),
                (pid(7), SourceId::SECOND),
            ],
        );
        assert_eq!(b.cardinality(ErKind::CleanClean), 2);
        let cmps = b.comparisons(ErKind::CleanClean);
        assert_eq!(cmps.len(), 2);
        assert!(cmps.contains(&Pair::new(pid(0), pid(7))));
        assert!(cmps.contains(&Pair::new(pid(1), pid(7))));
    }

    #[test]
    fn members_deduplicated_and_sorted() {
        let b = Block::new_dirty("k", vec![pid(3), pid(1), pid(3)]);
        assert_eq!(b.profiles(), &[pid(1), pid(3)]);
    }

    #[test]
    fn single_source_block_yields_nothing_in_clean_clean() {
        let b = Block::new(
            "k",
            vec![(pid(0), SourceId::FIRST), (pid(1), SourceId::FIRST)],
        );
        assert_eq!(b.cardinality(ErKind::CleanClean), 0);
        assert!(b.comparisons(ErKind::CleanClean).is_empty());
    }

    #[test]
    fn collection_stats() {
        let blocks = vec![
            Block::new_dirty("a", vec![pid(0), pid(1)]),
            Block::new_dirty("b", vec![pid(0), pid(1), pid(2)]),
        ];
        let coll = BlockCollection::new(ErKind::Dirty, 3, blocks);
        assert_eq!(coll.len(), 2);
        assert_eq!(coll.total_comparisons(), 1 + 3);
        assert!((coll.avg_block_size() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scheduling_sorts_by_cardinality() {
        let blocks = vec![
            Block::new_dirty("big", vec![pid(0), pid(1), pid(2), pid(3)]),
            Block::new_dirty("small", vec![pid(0), pid(1)]),
        ];
        let mut coll = BlockCollection::new(ErKind::Dirty, 4, blocks);
        coll.sort_by_cardinality();
        assert_eq!(coll.get(BlockId(0)).key, "small");
        assert_eq!(coll.get(BlockId(1)).key, "big");
    }

    #[test]
    fn push_member_matches_batch_construction() {
        let mut streamed = Block::new_dirty("k", vec![]);
        for i in [1u32, 3, 3, 7] {
            streamed.push_member(pid(i), SourceId::FIRST);
        }
        assert_eq!(
            streamed,
            Block::new_dirty("k", vec![pid(1), pid(3), pid(7)])
        );

        let mut cc = Block::new("k", vec![]);
        cc.push_member(pid(0), SourceId::FIRST);
        cc.push_member(pid(2), SourceId::SECOND);
        cc.push_member(pid(5), SourceId::SECOND);
        let batch = Block::new(
            "k",
            vec![
                (pid(0), SourceId::FIRST),
                (pid(2), SourceId::SECOND),
                (pid(5), SourceId::SECOND),
            ],
        );
        assert_eq!(cc, batch);
        assert_eq!(cc.cardinality(ErKind::CleanClean), 2);
    }

    #[test]
    #[should_panic(expected = "ascending id order")]
    fn push_member_rejects_out_of_order_ids() {
        let mut b = Block::new_dirty("k", vec![pid(5)]);
        b.push_member(pid(2), SourceId::FIRST);
    }

    #[test]
    fn retain_comparable_drops_empty() {
        let blocks = vec![
            Block::new_dirty("single", vec![pid(0)]),
            Block::new_dirty("pair", vec![pid(0), pid(1)]),
        ];
        let mut coll = BlockCollection::new(ErKind::Dirty, 2, blocks);
        coll.retain_comparable();
        assert_eq!(coll.len(), 1);
        assert_eq!(coll.get(BlockId(0)).key, "pair");
    }
}
