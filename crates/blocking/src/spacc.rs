//! The sparse-accumulator weighting kernel: meta-blocking edge weights
//! without a materialized edge list.
//!
//! The batch route to edge weights — materialize every distinct comparison,
//! dedup it through a hash set, and merge-intersect the two profiles' block
//! lists per pair — is exactly the cost the paper argues progressive methods
//! should not pay (§3.2: "materializing and sorting all edges is
//! impractical for large datasets"). This module replaces it with the
//! SpGEMM-style *sparse accumulator* sweep:
//!
//! for each profile `i`, walk its blocks through the Profile-Index CSR and
//! scatter each block's `per_block` contribution into a **dense scratch
//! array** indexed by neighbor id, recording first-touched neighbors in a
//! **touched list**. After the walk, `scratch[j]` holds the full
//! accumulated weight of edge `(i, j)` and the touched list enumerates the
//! non-zero entries, so the reset costs `O(degree(i))` — no `HashMap`, no
//! per-pair `seen` set, no re-hashing, and every edge weight is produced
//! with `O(1)` amortized work per co-occurrence instead of an
//! `O(|B_i| + |B_j|)` merge per pair.
//!
//! Determinism is free: for a pair `(i, j)` the sweep adds the shared
//! blocks' contributions in ascending block-id order — the same order the
//! sorted-list merge of [`ProfileIndex::intersect`] visits them — so the
//! floating-point sums are **bit-identical** to the pairwise path, and the
//! first touch of `j` happens at the pair's *least common block* (the
//! LeCoBI witness, §5.2.1), which the kernel records per neighbor. That
//! least-common-block tag is what lets [`weighted_edge_list`] restore the
//! exact block-major first-occurrence edge order of the legacy builders
//! with one stable counting sort, and consumers that never need a
//! materialized graph (node-centric pruning, PBS block refills, PPS
//! scheduling) drain the scratch directly.
//!
//! The kernel is substrate-agnostic: both the frozen CSR [`ProfileIndex`]
//! and the growable [`IncrementalProfileIndex`] of the streaming ingest
//! path implement [`BlockIndex`], and both [`BlockCollection`] and the
//! live `[Block]` slice of `sper-stream` implement [`BlockMembers`], so
//! batch and incremental epochs run the same sweep.

use crate::block::{Block, BlockCollection, BlockId};
use crate::profile_index::{IncrementalProfileIndex, ProfileIndex};
use crate::simd::KernelPath;
use crate::weights::{FinalizeTable, WeightingScheme};
use sper_model::{ErKind, Pair, ProfileId};

/// Reinterprets a sorted member partition as raw `u32` lanes for the SIMD
/// kernels — free because [`ProfileId`] is `repr(transparent)` over `u32`.
#[inline]
fn raw_ids(partition: &[ProfileId]) -> &[u32] {
    // SAFETY: `ProfileId` is `#[repr(transparent)]` over `u32`, so the two
    // slice types have identical layout, alignment, and validity.
    unsafe { std::slice::from_raw_parts(partition.as_ptr().cast::<u32>(), partition.len()) }
}

/// Read-only view of a profile→blocks inverted index, as the kernel needs
/// it: the sorted block list of a profile, cached block cardinalities, and
/// the total block count for finalization.
pub trait BlockIndex {
    /// `|B_i|`: the ids of the blocks containing `p`, ascending.
    fn blocks_of(&self, p: ProfileId) -> &[u32];
    /// `‖b‖` for a block id.
    fn block_cardinality(&self, b: u32) -> u64;
    /// `|B|`: number of blocks indexed.
    fn total_blocks(&self) -> usize;
}

impl BlockIndex for ProfileIndex {
    #[inline]
    fn blocks_of(&self, p: ProfileId) -> &[u32] {
        ProfileIndex::blocks_of(self, p)
    }

    #[inline]
    fn block_cardinality(&self, b: u32) -> u64 {
        ProfileIndex::cardinality(self, BlockId(b))
    }

    fn total_blocks(&self) -> usize {
        ProfileIndex::total_blocks(self)
    }
}

impl BlockIndex for IncrementalProfileIndex {
    #[inline]
    fn blocks_of(&self, p: ProfileId) -> &[u32] {
        IncrementalProfileIndex::blocks_of(self, p)
    }

    #[inline]
    fn block_cardinality(&self, b: u32) -> u64 {
        IncrementalProfileIndex::cardinality(self, BlockId(b))
    }

    fn total_blocks(&self) -> usize {
        IncrementalProfileIndex::total_blocks(self)
    }
}

/// Read-only view of block membership, as the kernel needs it: the sorted
/// member slice of a block and its `P1` partition size.
pub trait BlockMembers {
    /// Members of block `b`, `P1` partition first, each partition sorted
    /// ascending.
    fn members(&self, b: u32) -> &[ProfileId];
    /// `|b ∩ P1|` for block `b`.
    fn n_first(&self, b: u32) -> u32;
}

impl BlockMembers for BlockCollection {
    #[inline]
    fn members(&self, b: u32) -> &[ProfileId] {
        self.get(BlockId(b)).profiles()
    }

    #[inline]
    fn n_first(&self, b: u32) -> u32 {
        self.get(BlockId(b)).first_source().len() as u32
    }
}

/// The live insertion-order block array of the streaming substrates.
impl BlockMembers for [Block] {
    #[inline]
    fn members(&self, b: u32) -> &[ProfileId] {
        self[b as usize].profiles()
    }

    #[inline]
    fn n_first(&self, b: u32) -> u32 {
        self[b as usize].first_source().len() as u32
    }
}

/// Which neighbors a sweep visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepDir {
    /// Every valid neighbor — node-centric consumers (PPS scheduling,
    /// WNP/CNP pruning) see whole neighborhoods.
    Full,
    /// Only neighbors with a larger profile id — edge-producing consumers
    /// discover each edge exactly once, from its smaller endpoint.
    Forward,
}

/// Cumulative statistics of an accumulator's lifetime, maintained with a
/// handful of plain `u64` adds per *sweep* (never per co-occurrence) so
/// the kernel's inner loop is untouched. Drained by the observability
/// layer at the end of a build or epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Sweeps run (full + forward).
    pub sweeps: u64,
    /// Scratch resets.
    pub resets: u64,
    /// Total neighbors touched across all sweeps (= sum of degrees seen).
    pub touched: u64,
}

impl SweepStats {
    /// The counters accumulated since `earlier` — how work-stealing chunks
    /// report per-chunk statistics from a per-worker scratch that lives
    /// across many chunks.
    pub fn delta_since(self, earlier: SweepStats) -> SweepStats {
        SweepStats {
            sweeps: self.sweeps - earlier.sweeps,
            resets: self.resets - earlier.resets,
            touched: self.touched - earlier.touched,
        }
    }
}

/// The reusable sparse-accumulator scratch: one dense `f64` slot and one
/// least-common-block tag per profile, plus the touched list that makes
/// resets `O(degree)`.
///
/// Allocation happens once per worker; every sweep reuses the arrays. The
/// scratch is **transient by design**: it holds no information that is not
/// a pure function of the substrate it sweeps, so it is deliberately
/// excluded from persistence (`sper-store` rebuilds it on rehydration —
/// see DESIGN.md "Sparse-accumulator weighting").
#[derive(Debug, Clone)]
pub struct WeightAccumulator {
    /// Accumulated per-shared-block contribution, by neighbor id. `0.0`
    /// doubles as the "untouched" sentinel — every scheme's per-block
    /// contribution is strictly positive.
    acc: Vec<f64>,
    /// Least common (first shared) block id, by neighbor id; only valid
    /// for currently-touched neighbors.
    lcb: Vec<u32>,
    /// Ids of neighbors with non-zero accumulation, in discovery order
    /// until [`Self::sort_touched`] is called.
    touched: Vec<u32>,
    /// One bit per profile — the dense drain path of
    /// [`Self::drain_ascending`] marks touched ids here and scans words
    /// ascending instead of sorting the touched list. All-zero between
    /// drains.
    mask: Vec<u64>,
    /// The accumulate-kernel implementation every sweep dispatches to.
    path: KernelPath,
    /// Lifetime sweep/reset counters (see [`SweepStats`]).
    stats: SweepStats,
}

impl WeightAccumulator {
    /// A zeroed accumulator over `n_profiles` profiles, sweeping with the
    /// process-wide dispatched kernel ([`KernelPath::active`]).
    pub fn new(n_profiles: usize) -> Self {
        Self::with_path(n_profiles, KernelPath::active())
    }

    /// A zeroed accumulator pinned to a specific kernel implementation —
    /// the equivalence suites compare paths inside one process with this.
    pub fn with_path(n_profiles: usize, path: KernelPath) -> Self {
        Self {
            acc: vec![0.0; n_profiles],
            lcb: vec![0; n_profiles],
            touched: Vec::new(),
            mask: vec![0; n_profiles.div_ceil(64)],
            path,
            stats: SweepStats::default(),
        }
    }

    /// The kernel implementation this scratch sweeps with.
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// Lifetime sweep statistics of this scratch.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Number of profiles the scratch covers.
    pub fn n_profiles(&self) -> usize {
        self.acc.len()
    }

    /// Grows the scratch to cover `n_profiles` profiles — the streaming
    /// ingest path (`sper-stream`) keeps **one** accumulator alive across
    /// epochs and lets it follow the growing substrate instead of
    /// re-allocating per epoch. Existing entries are untouched; new slots
    /// start untouched.
    pub fn ensure_profiles(&mut self, n_profiles: usize) {
        if n_profiles > self.acc.len() {
            self.acc.resize(n_profiles, 0.0);
            self.lcb.resize(n_profiles, 0);
            self.mask.resize(n_profiles.div_ceil(64), 0);
        }
    }

    // Private kernel core — the two public wrappers (`sweep`,
    // `sweep_forward`) are the real API, so the long parameter list never
    // reaches callers.
    #[allow(clippy::too_many_arguments)]
    fn sweep_impl<M: BlockMembers + ?Sized, I: BlockIndex>(
        &mut self,
        kind: ErKind,
        members: &M,
        index: &I,
        scheme: WeightingScheme,
        i: ProfileId,
        dir: SweepDir,
        checked: Option<&[bool]>,
    ) {
        assert!(
            self.touched.is_empty(),
            "sweep on a non-reset scratch: {} touched entries would corrupt \
             every accumulated weight — call reset() or drain_ascending() \
             between sweeps",
            self.touched.len()
        );
        let path = self.path;
        for &bid in index.blocks_of(i) {
            let contribution = scheme.per_block(index.block_cardinality(bid));
            let mem = members.members(bid);
            let n_first = members.n_first(bid) as usize;
            // Valid co-occurrences: Dirty — everyone else in the block;
            // Clean-clean — the opposite source partition. The forward
            // sweep keeps only ids beyond `i`, exploiting the sorted
            // member partitions (and, for Clean-clean, the collection
            // invariant that every P1 id precedes every P2 id). The
            // co-occurrences come out as up to two `i`-free segments so
            // the kernels below need no per-lane `j == i` test: only the
            // Dirty full sweep has `i` inside its partition, and there it
            // is split out by binary search.
            let (left, right): (&[ProfileId], &[ProfileId]) = match kind {
                ErKind::Dirty => match dir {
                    SweepDir::Full => match mem.binary_search(&i) {
                        Ok(at) => (&mem[..at], &mem[at + 1..]),
                        Err(at) => (&mem[..at], &mem[at..]),
                    },
                    SweepDir::Forward => {
                        let beyond = mem.partition_point(|&p| p <= i);
                        (&mem[beyond..], &[][..])
                    }
                },
                ErKind::CleanClean => {
                    if mem[..n_first].binary_search(&i).is_ok() {
                        (&mem[n_first..], &[][..])
                    } else if dir == SweepDir::Forward {
                        // `i` is a P2 profile: every cross-source partner
                        // has a smaller id.
                        (&[][..], &[][..])
                    } else {
                        (&mem[..n_first], &[][..])
                    }
                }
            };
            if let Some(checked) = checked {
                // The filtered sweep (PPS emission, Alg. 6) stays scalar:
                // the `checked` test makes both the touched pushes and the
                // adds data-dependent per lane.
                for &j in left.iter().chain(right) {
                    if checked[j.index()] {
                        continue;
                    }
                    if self.acc[j.index()] == 0.0 {
                        self.touched.push(j.0);
                        self.lcb[j.index()] = bid;
                    }
                    self.acc[j.index()] += contribution;
                }
            } else {
                path.accumulate(
                    raw_ids(left),
                    contribution,
                    bid,
                    &mut self.acc,
                    &mut self.lcb,
                    &mut self.touched,
                );
                path.accumulate(
                    raw_ids(right),
                    contribution,
                    bid,
                    &mut self.acc,
                    &mut self.lcb,
                    &mut self.touched,
                );
            }
        }
        self.stats.sweeps += 1;
        self.stats.touched += self.touched.len() as u64;
    }

    /// Accumulates the full valid neighborhood of `i`, optionally skipping
    /// already-`checked` profiles (PPS's emission phase, Alg. 6 lines
    /// 10–12). The scratch must be reset (fresh or [`Self::reset`]).
    ///
    /// # Panics
    ///
    /// Panics — in every build profile — when the scratch still holds
    /// touched entries from a previous sweep: accumulating on top of stale
    /// sums silently corrupts every weight, so the contract violation is a
    /// hard error rather than a `debug_assert!` that release builds skip.
    pub fn sweep<M: BlockMembers + ?Sized, I: BlockIndex>(
        &mut self,
        kind: ErKind,
        members: &M,
        index: &I,
        scheme: WeightingScheme,
        i: ProfileId,
        checked: Option<&[bool]>,
    ) {
        self.sweep_impl(kind, members, index, scheme, i, SweepDir::Full, checked);
    }

    /// Accumulates only the neighbors of `i` with a **larger id** — the
    /// edge-discovery sweep: running it for every profile in ascending
    /// order visits each distinct edge exactly once, from its smaller
    /// endpoint, with the same accumulated weight either endpoint would
    /// compute.
    ///
    /// # Panics
    ///
    /// Panics when the scratch is not reset — see [`Self::sweep`].
    pub fn sweep_forward<M: BlockMembers + ?Sized, I: BlockIndex>(
        &mut self,
        kind: ErKind,
        members: &M,
        index: &I,
        scheme: WeightingScheme,
        i: ProfileId,
    ) {
        self.sweep_impl(kind, members, index, scheme, i, SweepDir::Forward, None);
    }

    /// Neighbors touched by the last sweep (discovery order until sorted).
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// True when the last sweep touched nothing (or after a reset).
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Sorts the touched list ascending by neighbor id — the edge-emission
    /// order of the graph builders.
    pub fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }

    /// Sorts the touched list by `(least common block, neighbor id)` — the
    /// order in which a materialized graph's adjacency visits the
    /// neighborhood (edges are stored in block-major first-occurrence
    /// order, and within one block a node's partners appear in ascending id
    /// order). Node-centric consumers that must reproduce the adjacency
    /// float-summation order (WNP's local mean) sort with this.
    pub fn sort_touched_by_adjacency(&mut self) {
        let lcb = &self.lcb;
        self.touched.sort_unstable_by_key(|&j| (lcb[j as usize], j));
    }

    /// The raw accumulated contribution sum of neighbor `j` (zero when
    /// untouched).
    #[inline]
    pub fn raw(&self, j: ProfileId) -> f64 {
        self.acc[j.index()]
    }

    /// The least common block of `(i, j)` found by the last sweep — the
    /// LeCoBI witness. Only meaningful for touched neighbors.
    #[inline]
    pub fn least_common_block(&self, j: ProfileId) -> BlockId {
        debug_assert!(self.acc[j.index()] != 0.0, "lcb of an untouched neighbor");
        BlockId(self.lcb[j.index()])
    }

    /// Finalizes the accumulated sum of neighbor `j` into the edge weight
    /// of `(i, j)` — identical to [`ProfileIndex::weight`] bit for bit.
    #[inline]
    pub fn finalize<I: BlockIndex>(
        &self,
        index: &I,
        scheme: WeightingScheme,
        i: ProfileId,
        j: ProfileId,
    ) -> f64 {
        scheme.finalize(
            self.acc[j.index()],
            index.blocks_of(i).len(),
            index.blocks_of(j).len(),
            index.total_blocks(),
        )
    }

    /// Clears the touched entries — `O(degree)`, leaving the dense arrays
    /// zeroed for the next sweep. The clear runs through the chunked
    /// scatter loop of [`crate::simd`].
    pub fn reset(&mut self) {
        crate::simd::clear_touched(&self.touched, &mut self.acc);
        self.touched.clear();
        self.stats.resets += 1;
    }

    /// Evicts every scratch entry belonging to a retired profile —
    /// accumulated sums, least-common-block tags, touched-list slots, and
    /// drain-mask bits — without disturbing live entries.
    ///
    /// A scratch that outlives a substrate **compaction** (the cross-epoch
    /// `ensure_profiles` pattern of `sper-stream`) would otherwise carry
    /// two kinds of stale state for compacted-away ids: an accumulated sum
    /// a consumer could still [`Self::finalize`] against the *rebuilt*
    /// index, and a `lcb` tag naming a pre-compaction block id that no
    /// longer exists under the renumbered block space. Neither is reachable
    /// through a disciplined sweep→drain cycle, but the scratch is a public
    /// long-lived object — so compaction owners call this to make the
    /// stale entries unobservable instead of relying on every consumer's
    /// discipline. `retired[j] == true` marks profile `j` as
    /// compacted-away; ids beyond the slice are treated as live.
    ///
    /// This does **not** replace [`Self::reset`]: live touched entries
    /// survive, so a purged-but-undrained scratch still refuses new sweeps.
    pub fn purge_retired(&mut self, retired: &[bool]) {
        let n = retired.len().min(self.acc.len());
        for (j, &dead) in retired[..n].iter().enumerate() {
            if dead {
                self.acc[j] = 0.0;
                self.lcb[j] = 0;
                self.mask[j / 64] &= !(1u64 << (j % 64));
            }
        }
        self.touched
            .retain(|&j| !retired.get(j as usize).copied().unwrap_or(false));
    }

    /// Emits every touched neighbor in **ascending id order** — `f(j,
    /// accumulated, least_common_block)` — and resets the scratch, fused
    /// into one pass. This replaces the `sort_touched` → iterate →
    /// `reset` sequence on the edge-emission hot path.
    ///
    /// The ordering strategy is adaptive:
    ///
    /// * **dense** neighborhoods (the overwhelmingly common case: the
    ///   touched count rivals the profile count / 64) set one bit per
    ///   neighbor in a reusable per-scratch bitmap and scan its words
    ///   ascending with `trailing_zeros` — `O(degree + |P|/64)`, no sort,
    ///   and the `acc` clear rides the same cache lines the scan reads;
    /// * **sparse** neighborhoods fall back to the unstable sort the old
    ///   path used — `O(degree · log degree)` but without scanning a
    ///   bitmap that is mostly zeros.
    ///
    /// Both strategies visit exactly the touched ids in exactly ascending
    /// order, so the emission sequence is independent of the cutover.
    pub fn drain_ascending(&mut self, mut f: impl FnMut(u32, f64, u32)) {
        let words = self.acc.len().div_ceil(64);
        if self.touched.len() >= words / 8 {
            let (touched, mask) = (&self.touched, &mut self.mask);
            debug_assert!(mask.len() >= words);
            for &j in touched {
                mask[(j / 64) as usize] |= 1u64 << (j % 64);
            }
            for w in 0..words {
                let mut bits = self.mask[w];
                if bits == 0 {
                    continue;
                }
                self.mask[w] = 0;
                while bits != 0 {
                    let j = (w as u32) * 64 + bits.trailing_zeros();
                    bits &= bits - 1;
                    let sum = self.acc[j as usize];
                    self.acc[j as usize] = 0.0;
                    f(j, sum, self.lcb[j as usize]);
                }
            }
        } else {
            self.touched.sort_unstable();
            for t in 0..self.touched.len() {
                let j = self.touched[t];
                let sum = self.acc[j as usize];
                self.acc[j as usize] = 0.0;
                f(j, sum, self.lcb[j as usize]);
            }
        }
        self.touched.clear();
        self.stats.resets += 1;
    }
}

/// Streams every distinct weighted comparison of `blocks` to `emit` —
/// **zero materialization**: the only allocation alive is the reusable
/// scratch, so peak memory is `O(|P|)` regardless of how many edges the
/// collection entails.
///
/// Edges arrive in per-profile discovery order (ascending smaller
/// endpoint, then ascending larger endpoint), each tagged with its least
/// common block. Consumers that aggregate, prune, or top-k per node do not
/// care about the legacy block-major order; those that need it
/// (materialized-graph parity) use [`weighted_edge_list`], which restores
/// it with one counting pass over an edge buffer it must allocate anyway.
pub fn for_each_weighted_edge(
    blocks: &BlockCollection,
    index: &ProfileIndex,
    scheme: WeightingScheme,
    mut emit: impl FnMut(Pair, f64, BlockId),
) {
    let n = blocks.n_profiles();
    let kind = blocks.kind();
    let table = FinalizeTable::build(index, scheme, n);
    let mut acc = WeightAccumulator::new(n);
    for i in 0..n {
        let i = ProfileId(i as u32);
        acc.sweep_forward(kind, blocks, index, scheme, i);
        acc.drain_ascending(|j, sum, lcb| {
            emit(
                Pair::new(i, ProfileId(j)),
                table.weight(i.0, j, sum),
                BlockId(lcb),
            );
        });
    }
}

/// The sparse-accumulator replacement of the legacy edge-list builder:
/// produces every distinct weighted comparison of `blocks` in the exact
/// edge order of the seed seen-set builder (block-major first occurrence,
/// within a block in comparison-enumeration order), fanning the
/// per-profile sweeps out over work-stealing chunks of `par` workers.
///
/// The builder is a **two-pass counting scatter** — it never materializes
/// per-shard edge buffers (the old single-pass route pushed every edge
/// into a shard `Vec`, re-read it to histogram the least-common-block
/// tags, and re-read it again to scatter; three full passes over hundreds
/// of megabytes at scale):
///
/// 1. **Count** — every chunk forward-sweeps its profiles and histograms
///    the touched least-common-block tags (`O(|B|)` integers per chunk,
///    kilobytes). Combining the per-chunk histograms in chunk order gives
///    every `(chunk, block)` cell a private, precomputed destination range
///    in the output.
/// 2. **Scatter** — every chunk re-sweeps (sweeps are the cheap part of
///    the kernel), drains each neighborhood in ascending order, finalizes
///    the weights through the dispatched SIMD table kernel, and writes
///    each edge **directly into its final slot**.
///
/// Order and determinism: the destination ranges follow (block, chunk,
/// within-chunk discovery) order, and within one chunk edges arrive in
/// `(i, j)`-lexicographic order — together that is exactly the stable
/// counting sort by least common block the legacy builder's output order
/// demands, reproduced bit for bit at any worker count. Work-stealing only
/// changes *which thread* executes a chunk, never the chunk boundaries or
/// any destination index.
pub fn weighted_edge_list(
    blocks: &BlockCollection,
    index: &ProfileIndex,
    scheme: WeightingScheme,
    par: crate::Parallelism,
) -> Vec<(Pair, f64)> {
    let mut span = sper_obs::span!("blocking.weighted_edge_list", workers = par.get());
    let n = blocks.n_profiles();
    let kind = blocks.kind();
    let n_blocks = index.total_blocks();
    let table = FinalizeTable::build(index, scheme, n);

    // Pass 1: per-chunk least-common-block histograms.
    let histograms: Vec<(Vec<u32>, SweepStats)> = par.steal_chunks(
        n,
        crate::parallel::STEAL_MIN_CHUNK,
        || WeightAccumulator::new(n),
        |acc, range, _chunk| {
            let before = acc.stats();
            let mut counts = vec![0u32; n_blocks];
            for i in range {
                let i = ProfileId(i as u32);
                acc.sweep_forward(kind, blocks, index, scheme, i);
                for &j in acc.touched() {
                    counts[acc.least_common_block(ProfileId(j)).0 as usize] += 1;
                }
                acc.reset();
            }
            (counts, acc.stats().delta_since(before))
        },
    );

    // Destination ranges: block-major, then chunk order, then within-chunk
    // discovery order — the cursor table of chunk `c` starts where the
    // global block offset plus all earlier chunks' counts end.
    let mut totals = vec![0u32; n_blocks];
    for (counts, _) in &histograms {
        for (t, &c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
    }
    let offsets = crate::block::prefix_offsets(&totals);
    let total = offsets[n_blocks] as usize;
    let mut running: Vec<u32> = offsets[..n_blocks].to_vec();
    let cursors: Vec<Vec<u32>> = histograms
        .iter()
        .map(|(counts, _)| {
            let snapshot = running.clone();
            for (r, &c) in running.iter_mut().zip(counts) {
                *r += c;
            }
            snapshot
        })
        .collect();

    // Pass 2: re-sweep and scatter straight into the final buffer. The
    // chunk layout is a pure function of `(n, crate::parallel::STEAL_MIN_CHUNK, par)`, so
    // pass 2 revisits exactly the profile ranges pass 1 counted.
    let mut out: Vec<(Pair, f64)> = Vec::with_capacity(total);
    struct OutPtr(*mut (Pair, f64));
    // SAFETY: the raw pointer is only used for disjoint writes — every
    // (chunk, block) cell owns the private index range
    // [cursors[chunk][block], cursors[chunk][block] + counts) computed
    // above, and chunks only advance their own cursors.
    unsafe impl Sync for OutPtr {}
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;
    let scatter_stats: Vec<SweepStats> = par.steal_chunks(
        n,
        crate::parallel::STEAL_MIN_CHUNK,
        || {
            (
                WeightAccumulator::new(n),
                Vec::<u32>::new(),
                Vec::<f64>::new(),
                Vec::<u32>::new(),
                Vec::<f64>::new(),
            )
        },
        |(acc, jbuf, sumbuf, lcbbuf, wbuf), range, chunk| {
            let before = acc.stats();
            let path = acc.path();
            let mut cursor = cursors[chunk].clone();
            for i in range {
                let i = ProfileId(i as u32);
                acc.sweep_forward(kind, blocks, index, scheme, i);
                jbuf.clear();
                sumbuf.clear();
                lcbbuf.clear();
                acc.drain_ascending(|j, sum, lcb| {
                    jbuf.push(j);
                    sumbuf.push(sum);
                    lcbbuf.push(lcb);
                });
                table.weights_into(path, i.0, jbuf, sumbuf, wbuf);
                for ((&j, &lcb), &w) in jbuf.iter().zip(lcbbuf.iter()).zip(wbuf.iter()) {
                    let at = &mut cursor[lcb as usize];
                    // SAFETY: `*at` lies inside this (chunk, block) cell's
                    // private range — pass 2 re-sweeps the exact profile
                    // range pass 1 histogrammed, so the cell emits exactly
                    // its counted number of edges; all cells partition
                    // `0..total`, every slot is written exactly once, and
                    // the scope join below sequences the writes before
                    // `set_len`.
                    unsafe {
                        out_ref
                            .0
                            .add(*at as usize)
                            .write((Pair::new(i, ProfileId(j)), w));
                    }
                    *at += 1;
                }
            }
            acc.stats().delta_since(before)
        },
    );
    debug_assert_eq!(scatter_stats.len(), cursors.len());
    // SAFETY: pass 2 initialized every slot of `0..total` exactly once
    // (see the scatter-write justification above), and `(Pair, f64)` is
    // `Copy` with no drop obligations.
    unsafe {
        out.set_len(total);
    }

    if sper_obs::trace::enabled(sper_obs::Level::Debug) {
        let mut stats = SweepStats::default();
        for s in histograms
            .iter()
            .map(|(_, s)| s)
            .chain(scatter_stats.iter())
        {
            stats.sweeps += s.sweeps;
            stats.resets += s.resets;
            stats.touched += s.touched;
        }
        sper_obs::event!(
            sper_obs::Level::Debug,
            "spacc.sweep_stats",
            sweeps = stats.sweeps,
            resets = stats.resets,
            touched = stats.touched,
        );
    }

    span.record("edges", out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;
    use crate::token_blocking::TokenBlocking;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    fn fig3_setup() -> (BlockCollection, ProfileIndex) {
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        (blocks, index)
    }

    #[test]
    fn sweep_weights_match_pairwise_merge() {
        let (blocks, index) = fig3_setup();
        let kind = blocks.kind();
        let mut acc = WeightAccumulator::new(blocks.n_profiles());
        for scheme in WeightingScheme::ALL {
            for i in 0..blocks.n_profiles() as u32 {
                let i = pid(i);
                acc.sweep(kind, &blocks, &index, scheme, i, None);
                for t in 0..acc.touched().len() {
                    let j = pid(acc.touched()[t]);
                    let sweep_w = acc.finalize(&index, scheme, i, j);
                    let merge_w = index.weight(i, j, scheme);
                    assert_eq!(
                        sweep_w.to_bits(),
                        merge_w.to_bits(),
                        "scheme {scheme}, pair ({i:?}, {j:?})"
                    );
                }
                acc.reset();
            }
        }
    }

    #[test]
    fn lcb_matches_intersect_witness() {
        let (blocks, index) = fig3_setup();
        let kind = blocks.kind();
        let mut acc = WeightAccumulator::new(blocks.n_profiles());
        for i in 0..blocks.n_profiles() as u32 {
            let i = pid(i);
            acc.sweep(kind, &blocks, &index, WeightingScheme::Arcs, i, None);
            for t in 0..acc.touched().len() {
                let j = pid(acc.touched()[t]);
                let expected = index.intersect(i, j).least_common.unwrap();
                assert_eq!(acc.least_common_block(j), expected);
            }
            acc.reset();
        }
    }

    #[test]
    fn forward_sweep_sees_only_larger_ids() {
        let (blocks, index) = fig3_setup();
        let kind = blocks.kind();
        let mut acc = WeightAccumulator::new(blocks.n_profiles());
        for i in 0..blocks.n_profiles() as u32 {
            let i = pid(i);
            acc.sweep_forward(kind, &blocks, &index, WeightingScheme::Cbs, i);
            for &j in acc.touched() {
                assert!(j > i.0, "forward sweep of {i:?} touched {j}");
                // Forward and full sweeps agree on the shared neighbors.
                assert_eq!(
                    acc.raw(pid(j)),
                    index.weight(i, pid(j), WeightingScheme::Cbs)
                );
            }
            acc.reset();
        }
    }

    #[test]
    fn reset_clears_scratch() {
        let (blocks, index) = fig3_setup();
        let mut acc = WeightAccumulator::new(blocks.n_profiles());
        acc.sweep(
            blocks.kind(),
            &blocks,
            &index,
            WeightingScheme::Arcs,
            pid(0),
            None,
        );
        assert!(!acc.is_empty());
        acc.reset();
        assert!(acc.is_empty());
        for j in 0..acc.n_profiles() as u32 {
            assert_eq!(acc.raw(pid(j)), 0.0);
        }
    }

    #[test]
    fn purge_retired_evicts_only_dead_entries() {
        let (blocks, index) = fig3_setup();
        let kind = blocks.kind();
        let mut acc = WeightAccumulator::new(blocks.n_profiles());
        acc.sweep(kind, &blocks, &index, WeightingScheme::Arcs, pid(0), None);
        assert!(acc.touched().contains(&1));
        // Profile 1 is compacted away while the scratch still carries its
        // accumulated sum and LCB tag from the pre-compaction sweep.
        let mut retired = vec![false; blocks.n_profiles()];
        retired[1] = true;
        let live_before: Vec<u32> = acc.touched().iter().copied().filter(|&j| j != 1).collect();
        acc.purge_retired(&retired);
        assert!(!acc.touched().contains(&1));
        assert_eq!(acc.raw(pid(1)), 0.0);
        // Live entries are untouched by the purge...
        assert_eq!(acc.touched(), live_before.as_slice());
        for &j in &live_before {
            assert_eq!(
                acc.raw(pid(j)).to_bits(),
                index
                    .weight(pid(0), pid(j), WeightingScheme::Arcs)
                    .to_bits()
            );
        }
        // ...and a drain sees only live neighbors (in ascending order, as
        // always) and restores the all-zero scratch invariant, so the
        // next sweep is accepted.
        let mut drained = Vec::new();
        acc.drain_ascending(|j, _, _| drained.push(j));
        let mut live_sorted = live_before.clone();
        live_sorted.sort_unstable();
        assert_eq!(drained, live_sorted);
        for j in 0..acc.n_profiles() as u32 {
            assert_eq!(acc.raw(pid(j)), 0.0);
        }
        acc.sweep(kind, &blocks, &index, WeightingScheme::Arcs, pid(2), None);
        acc.reset();
    }

    #[test]
    fn checked_filter_suppresses_neighbors() {
        let (blocks, index) = fig3_setup();
        let mut checked = vec![false; blocks.n_profiles()];
        checked[1] = true;
        let mut acc = WeightAccumulator::new(blocks.n_profiles());
        acc.sweep(
            blocks.kind(),
            &blocks,
            &index,
            WeightingScheme::Arcs,
            pid(0),
            Some(&checked),
        );
        assert!(!acc.touched().contains(&1));
        acc.reset();
    }

    #[test]
    fn edge_list_covers_all_distinct_comparisons() {
        let (blocks, index) = fig3_setup();
        let edges = weighted_edge_list(
            &blocks,
            &index,
            WeightingScheme::Arcs,
            crate::Parallelism::SEQUENTIAL,
        );
        // Fig. 3: complete graph over 6 nodes.
        assert_eq!(edges.len(), 15);
        // The zero-materialization stream covers the same edge set with the
        // same weights (different order: discovery vs block-major).
        let mut streamed = Vec::new();
        for_each_weighted_edge(&blocks, &index, WeightingScheme::Arcs, |p, w, lcb| {
            assert_eq!(index.intersect(p.first, p.second).least_common, Some(lcb));
            streamed.push((p, w));
        });
        let sort = |mut v: Vec<(Pair, f64)>| {
            v.sort_by_key(|e| e.0);
            v
        };
        assert_eq!(sort(streamed), sort(edges.clone()));
    }

    #[test]
    fn incremental_index_runs_the_same_kernel() {
        // The growable streaming index and the live block array drive the
        // sweep to the same weights as the frozen CSR pair.
        let (blocks, index) = fig3_setup();
        let kind = blocks.kind();
        let mut inc = IncrementalProfileIndex::new_empty(blocks.n_profiles());
        for block in blocks.iter() {
            inc.push_block(block.profiles(), block.cardinality(kind));
        }
        let owned: Vec<Block> = blocks.clone().into_blocks();
        let mut a = WeightAccumulator::new(blocks.n_profiles());
        let mut b = WeightAccumulator::new(blocks.n_profiles());
        for i in 0..blocks.n_profiles() as u32 {
            let i = pid(i);
            a.sweep(kind, &blocks, &index, WeightingScheme::Js, i, None);
            b.sweep(kind, owned.as_slice(), &inc, WeightingScheme::Js, i, None);
            assert_eq!(a.touched(), b.touched());
            for &j in a.touched() {
                assert_eq!(
                    a.finalize(&index, WeightingScheme::Js, i, pid(j)).to_bits(),
                    b.finalize(&inc, WeightingScheme::Js, i, pid(j)).to_bits()
                );
            }
            a.reset();
            b.reset();
        }
    }
}
