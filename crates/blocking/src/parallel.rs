//! Shared-memory parallelization of the blocking substrates — the paper's
//! future-work direction (§8: "massive parallelization of our approach
//! based on existing methods for parallelizing Sorted Neighborhood \[31,32\]
//! and Meta-blocking \[33\]"), realized here as a MapReduce-shaped
//! multi-threaded implementation on crossbeam scoped threads.
//!
//! Both entry points are *observationally identical* to their sequential
//! counterparts (property-tested below): parallelism changes wall-clock
//! time, never results.
//!
//! Sharding is by `TokenId % shards` over the shared concurrent
//! [`TokenInterner`] — fully deterministic partitioning, with none of the
//! platform/release instability of `DefaultHasher` (whose SipHash keys are
//! explicitly not guaranteed stable), and no re-hashing of token text.
//!
//! Note on scale: since the interned columnar refactor, the *sequential*
//! Token Blocking build is fast enough that this MapReduce-shaped version
//! only wins on collections large enough to amortize per-worker caches and
//! the merge (the `ext_parallel` bench shows break-even around the
//! bench-twin sizes). It earns its keep as the result-identity testbed for
//! the sharding direction (distributed/out-of-core blocking) the ROADMAP
//! names, where partitioned token streams are mandatory, not optional.

use crate::block::{Block, BlockCollection};
use crate::graph::BlockingGraph;
use crate::profile_index::ProfileIndex;
use crate::weights::WeightingScheme;
use sper_model::{Pair, ProfileCollection, ProfileId, SourceId};
use sper_text::{FxHashMap, TokenId, TokenInterner, Tokenizer};
use std::sync::Arc;

/// Parallel Token Blocking: the *map* phase tokenizes disjoint profile
/// ranges through the shared interner and partitions `(token, profile)`
/// emissions by `TokenId % shards`; the *reduce* phase builds each shard's
/// blocks independently. Produces the exact same [`BlockCollection`] as
/// [`TokenBlocking`](crate::token_blocking::TokenBlocking) (blocks sorted
/// by key string).
///
/// # Panics
///
/// Panics when `threads == 0`.
pub fn parallel_token_blocking(profiles: &ProfileCollection, threads: usize) -> BlockCollection {
    assert!(threads > 0, "need at least one thread");
    let n = profiles.len();
    let interner = TokenInterner::shared();
    if n == 0 {
        return BlockCollection::new(profiles.kind(), 0, interner, Vec::new());
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let all: &[sper_model::Profile] = profiles.profiles();

    // Map phase: per-worker, per-shard emission buffers. Workers intern
    // concurrently; id *assignment order* is nondeterministic across runs,
    // but nothing downstream observes it — output is ordered by key string.
    let mut emissions: Vec<Vec<Vec<(TokenId, ProfileId, SourceId)>>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = all
            .chunks(chunk)
            .map(|profiles_chunk| {
                let interner = Arc::clone(&interner);
                scope.spawn(move |_| {
                    let tokenizer = Tokenizer::default();
                    let mut shards: Vec<Vec<(TokenId, ProfileId, SourceId)>> =
                        vec![Vec::new(); threads];
                    let mut ids: Vec<TokenId> = Vec::new();
                    // Worker-local token → id cache: the shared interner's
                    // lock is touched once per distinct token per worker,
                    // not once per occurrence — Zipfian token traffic makes
                    // the contention otherwise swamp the map phase.
                    let mut cache: FxHashMap<Box<str>, TokenId> = FxHashMap::default();
                    for p in profiles_chunk {
                        ids.clear();
                        for attr in &p.attributes {
                            tokenizer.for_each_token(&attr.value, |tok| {
                                let id = match cache.get(tok) {
                                    Some(&id) => id,
                                    None => {
                                        let id = interner.intern(tok);
                                        cache.insert(Box::from(tok), id);
                                        id
                                    }
                                };
                                ids.push(id);
                            });
                        }
                        ids.sort_unstable();
                        ids.dedup();
                        for &tok in &ids {
                            shards[tok.index() % threads].push((tok, p.id, p.source));
                        }
                    }
                    shards
                })
            })
            .collect();
        emissions = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("map phase panicked");

    // Reduce phase: shard s merges the s-th buffer of every worker.
    let mut shard_blocks: Vec<Vec<Block>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let emissions = &emissions;
        let kind = profiles.kind();
        let handles: Vec<_> = (0..threads)
            .map(|s| {
                scope.spawn(move |_| {
                    let mut index: FxHashMap<TokenId, Vec<(ProfileId, SourceId)>> =
                        FxHashMap::default();
                    for worker in emissions {
                        for &(tok, pid, src) in &worker[s] {
                            index.entry(tok).or_default().push((pid, src));
                        }
                    }
                    index
                        .into_iter()
                        .map(|(key, members)| Block::new(key, members))
                        .filter(|b| b.cardinality(kind) > 0)
                        .collect::<Vec<Block>>()
                })
            })
            .collect();
        shard_blocks = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("reduce phase panicked");

    let blocks: Vec<Block> = shard_blocks.into_iter().flatten().collect();
    let mut coll = BlockCollection::new(profiles.kind(), n, interner, blocks);
    coll.sort_by_key_str();
    coll
}

/// Parallel Meta-blocking edge weighting: materializes the blocking graph
/// with the distinct-pair discovery done sequentially (cheap) and the
/// weight computation — the dominant cost — fanned out over `threads`.
/// Identical to [`BlockingGraph::build`].
///
/// # Panics
///
/// Panics when `threads == 0`.
pub fn parallel_blocking_graph(
    blocks: &BlockCollection,
    scheme: WeightingScheme,
    threads: usize,
) -> BlockingGraph {
    assert!(threads > 0, "need at least one thread");
    let index = ProfileIndex::build(blocks);
    let kind = blocks.kind();

    // Discover distinct pairs (deterministic order).
    let mut seen: sper_text::FxHashSet<Pair> = sper_text::FxHashSet::default();
    let mut pairs: Vec<Pair> = Vec::new();
    for block in blocks.iter() {
        for pair in block.comparisons(kind) {
            if seen.insert(pair) {
                pairs.push(pair);
            }
        }
    }

    // Weight in parallel chunks.
    let chunk = pairs.len().div_ceil(threads).max(1);
    let mut weights: Vec<Vec<f64>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let index = &index;
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|chunk_pairs| {
                scope.spawn(move |_| {
                    chunk_pairs
                        .iter()
                        .map(|p| index.weight(p.first, p.second, scheme))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        weights = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("weighting phase panicked");

    let weighted: Vec<(Pair, f64)> = pairs
        .into_iter()
        .zip(weights.into_iter().flatten())
        .collect();
    BlockingGraph::from_edges(blocks.n_profiles(), weighted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;
    use crate::token_blocking::TokenBlocking;
    use sper_model::ProfileCollectionBuilder;

    fn medium_collection() -> ProfileCollection {
        // Deterministic mid-sized dirty collection with duplicates.
        let mut b = ProfileCollectionBuilder::dirty();
        for i in 0..300u32 {
            let base = i % 120; // thirds are duplicates
            b.add_profile([
                ("name", format!("alpha{} beta{}", base, base % 17)),
                ("city", format!("city{}", base % 9)),
            ]);
        }
        b.build()
    }

    fn keys_and_sizes(blocks: &BlockCollection) -> Vec<(String, Vec<ProfileId>)> {
        blocks
            .iter()
            .map(|b| (b.key_str().to_string(), b.profiles().to_vec()))
            .collect()
    }

    #[test]
    fn parallel_blocking_equals_sequential() {
        let coll = medium_collection();
        let sequential = TokenBlocking::default().build(&coll);
        for threads in [1, 2, 4, 7] {
            let parallel = parallel_token_blocking(&coll, threads);
            assert_eq!(
                keys_and_sizes(&parallel),
                keys_and_sizes(&sequential),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_blocking_on_fig3() {
        let coll = fig3_profiles();
        let parallel = parallel_token_blocking(&coll, 3);
        let mut keys: Vec<String> = parallel.iter().map(|b| b.key_str().to_string()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["carl", "ml", "ny", "tailor", "teacher", "white"]);
    }

    #[test]
    fn parallel_graph_equals_sequential() {
        let coll = medium_collection();
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let sequential = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
        let parallel = parallel_blocking_graph(&blocks, WeightingScheme::Arcs, 4);
        assert_eq!(parallel.num_edges(), sequential.num_edges());
        for (pair, w) in sequential.edges() {
            let pw = parallel
                .weight_of(pair.first, pair.second)
                .expect("edge missing in parallel graph");
            assert!((pw - w).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_collection() {
        let coll = ProfileCollectionBuilder::dirty().build();
        let blocks = parallel_token_blocking(&coll, 4);
        assert!(blocks.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        parallel_token_blocking(&fig3_profiles(), 0);
    }
}
