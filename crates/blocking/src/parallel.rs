//! Shared-memory parallelization of the blocking substrates — the paper's
//! future-work direction (§8: "massive parallelization of our approach
//! based on existing methods for parallelizing Sorted Neighborhood \[31,32\]
//! and Meta-blocking \[33\]"), realized as deterministic sharded execution
//! on crossbeam scoped threads.
//!
//! Every entry point is **bit-identical** to its sequential counterpart
//! (property-tested here and in `tests/parallel_equivalence.rs`):
//! parallelism changes wall-clock time, never results. Three ingredients
//! make that possible:
//!
//! 1. **Deterministic shard layout.** Work is split either by
//!    `TokenId % shards` (token emissions) or by contiguous ranges of the
//!    profile/placement arrays — both are pure functions of the input,
//!    with none of the platform/release instability of `DefaultHasher`
//!    (whose SipHash keys are explicitly not guaranteed stable).
//! 2. **Independent per-shard dedup.** Edge weighting discovers each edge
//!    exactly once, from its smaller endpoint, inside that endpoint's
//!    profile-range shard (the sparse-accumulator sweep of
//!    [`crate::spacc`]) — no cross-shard `seen` set, no merge-order
//!    sensitivity.
//! 3. **Order-restoring merges.** Shard outputs are concatenated in shard
//!    order (ranges), re-sorted by key string (token blocking), or
//!    counting-sorted by the recorded least-common-block tag (edge
//!    weighting), so the merged result reproduces the sequential
//!    iteration order exactly.
//!
//! Thread counts are validated at the API boundary: every parallel entry
//! point takes a raw `usize` and returns [`ZeroThreads`] instead of
//! panicking when it is zero. Use [`Parallelism`] to carry a validated
//! count through configuration layers.

use crate::block::{Block, BlockCollection};
use crate::graph::BlockingGraph;
use crate::profile_index::ProfileIndex;
use crate::weights::WeightingScheme;
use sper_model::{ProfileCollection, ProfileId, SourceId};
use sper_text::{FxHashMap, TokenId, TokenInterner, Tokenizer};
use std::num::NonZeroUsize;
use std::sync::Arc;

/// Below this work-item count the parallel engines run inline on the
/// calling thread: an OS-thread spawn/join costs tens of microseconds,
/// which dwarfs the sort/sweep/weighting of a small batch. Correctness is
/// unaffected either way (the parallel paths are bit-identical); this is
/// purely the spawn-overhead break-even guard, shared by every layer of
/// the engine (blocking substrates and the `sper-core` emission lists).
pub const MIN_PARALLEL_BATCH: usize = 2048;

/// The typed error of the parallel entry points: zero worker threads were
/// requested. (Seed versions of this API `assert!`ed instead; a zero
/// thread count is a configuration mistake, not a programming bug, so it
/// is reported as a value.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZeroThreads;

impl std::fmt::Display for ZeroThreads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("parallel execution needs at least one worker thread")
    }
}

impl std::error::Error for ZeroThreads {}

/// A validated worker-thread count for the parallel engine.
///
/// Construction is the only place a thread count can be zero, so every
/// consumer past [`Parallelism::new`] works with a guaranteed-positive
/// count — the engine never has to re-check.
///
/// ```
/// use sper_blocking::Parallelism;
///
/// assert_eq!(Parallelism::new(4).unwrap().get(), 4);
/// assert!(Parallelism::new(0).is_err());
/// assert!(Parallelism::SEQUENTIAL.is_sequential());
/// assert!(Parallelism::available().get() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// One worker: the sequential engine.
    pub const SEQUENTIAL: Parallelism = Parallelism(NonZeroUsize::MIN);

    /// Validates a worker-thread count.
    pub fn new(threads: usize) -> Result<Self, ZeroThreads> {
        NonZeroUsize::new(threads).map(Self).ok_or(ZeroThreads)
    }

    /// The machine's available parallelism (≥ 1; falls back to 1 when the
    /// runtime cannot report it). The CLI default for `--threads`.
    pub fn available() -> Self {
        Self(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The validated thread count.
    #[inline]
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// True for a single worker (the engine takes the sequential paths).
    #[inline]
    pub fn is_sequential(self) -> bool {
        self.get() == 1
    }

    /// Caps the worker count at `items` (spawning more workers than work
    /// items only adds join overhead) while staying ≥ 1.
    #[inline]
    pub fn capped(self, items: usize) -> Parallelism {
        Parallelism(NonZeroUsize::new(self.get().min(items)).unwrap_or(NonZeroUsize::MIN))
    }

    /// The spawn break-even guard: collapses to [`Self::SEQUENTIAL`] when
    /// `items` is below [`MIN_PARALLEL_BATCH`] (the fan-out would cost more
    /// than the work it distributes), and otherwise caps the requested
    /// count at the machine's [available parallelism](Self::available) —
    /// on an oversubscribed host, extra workers only add contention and
    /// join overhead without any speedup (results are bit-identical at
    /// every count, so this is purely a wall-clock guard).
    pub fn break_even(self, items: usize) -> Parallelism {
        if items < MIN_PARALLEL_BATCH {
            Self::SEQUENTIAL
        } else {
            self.capped(Self::available().get())
        }
    }

    /// Splits `0..len` into one contiguous range per worker and runs `f`
    /// on each concurrently (scoped threads — `f` may borrow), returning
    /// the results **in range order**. With one effective worker, `f` runs
    /// inline on the calling thread — no spawn.
    ///
    /// This is the shared fan-out shape of the whole parallel engine:
    /// deterministic ranges in, order-preserving concatenation out. Sites
    /// that need per-worker `&mut` scratch keep their own scopes.
    pub fn map_ranges<T, F>(self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
    {
        let workers = self.capped(len.max(1)).get();
        if workers == 1 {
            return vec![f(0..len)];
        }
        let chunk = len.div_ceil(workers);
        let f = &f;
        let mut results: Vec<T> = Vec::with_capacity(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    // Both bounds clamp to `len`: when `chunk` overshoots
                    // (workers does not divide len), trailing workers get
                    // an empty `len..len` range, never a backwards one —
                    // callers slice with these ranges.
                    let start = (k * chunk).min(len);
                    let end = ((k + 1) * chunk).min(len);
                    scope.spawn(move |_| f(start..end))
                })
                .collect();
            results.extend(handles.into_iter().map(|h| h.join().unwrap()));
        })
        .expect("parallel range map panicked");
        results
    }

    /// Splits `0..len` into fine-grained chunks (about
    /// [`STEAL_OVERSUBSCRIPTION`] per worker, never smaller than
    /// `min_chunk` items) and lets the workers **steal** them from a
    /// shared lock-free queue: each worker claims the next unclaimed chunk
    /// with one atomic `fetch_add`, runs `f(&mut scratch, range, chunk)`,
    /// and moves on — a straggler chunk delays only its own worker while
    /// the rest drain the queue, unlike the fixed per-worker ranges of
    /// [`Self::map_ranges`], where the slowest range sets the join time.
    ///
    /// Determinism: stealing reorders *execution*, never *output*. Chunk
    /// boundaries are a pure function of `(len, workers, min_chunk)`, each
    /// chunk's result is written into its own slot, and the returned `Vec`
    /// is in chunk order — so as long as `f` is a pure function of its
    /// range (the contract of every call site, property-tested by the
    /// emission-equivalence suites), the concatenated output is identical
    /// at every worker count and under every steal interleaving.
    ///
    /// `init` builds one per-worker scratch, reused across all chunks the
    /// worker claims (the spacc sweeps reuse one `O(|P|)` accumulator per
    /// worker instead of one per range). With one effective worker,
    /// everything runs inline on the calling thread — no spawn, one
    /// chunk.
    ///
    /// Every fan-out records per-worker busy time: into the global
    /// metrics registry (`parallel.worker_busy_us` histogram,
    /// `parallel.fanout_workers` gauge) when metrics are enabled, and
    /// always into the slot [`take_last_fanout_stats`] reads. With
    /// `Debug`-level tracing on, each worker additionally closes one
    /// `parallel.worker` span (worker index, chunks claimed, busy µs) —
    /// the per-worker utilization lanes of the Chrome-trace export.
    pub fn steal_chunks<S, T, FI, F>(self, len: usize, min_chunk: usize, init: FI, f: F) -> Vec<T>
    where
        T: Send,
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, std::ops::Range<usize>, usize) -> T + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Instant;

        let workers = self.capped(len.max(1)).get();
        let chunk = len
            .div_ceil(workers * STEAL_OVERSUBSCRIPTION)
            .max(min_chunk.max(1));
        let n_chunks = len.div_ceil(chunk).max(1);
        let workers = workers.min(n_chunks);
        let wall_start = Instant::now();

        if workers == 1 {
            let mut scratch = init();
            let mut results = Vec::with_capacity(n_chunks);
            let mut span = sper_obs::trace::SpanGuard::enter(
                sper_obs::trace::Level::Debug,
                "parallel.worker",
                || vec![("worker", sper_obs::FieldValue::from(0u64))],
            );
            let busy_start = Instant::now();
            for c in 0..n_chunks {
                let range = (c * chunk).min(len)..((c + 1) * chunk).min(len);
                results.push(f(&mut scratch, range, c));
            }
            let busy = busy_start.elapsed();
            span.record("chunks", n_chunks);
            span.record("busy_us", busy.as_micros() as u64);
            drop(span);
            record_fanout(
                wall_start.elapsed(),
                vec![WorkerStats {
                    worker: 0,
                    busy,
                    chunks: n_chunks,
                }],
            );
            return results;
        }

        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<(Vec<(usize, T)>, WorkerStats)> = Vec::with_capacity(workers);
        crossbeam::thread::scope(|scope| {
            let (next, f, init) = (&next, &f, &init);
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move |_| {
                        let mut scratch = init();
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut claimed = 0usize;
                        // A per-worker timeline span: closed right after
                        // the steal loop, it puts each worker's busy
                        // window on its own lane in a Chrome-trace view.
                        let mut span = sper_obs::trace::SpanGuard::enter(
                            sper_obs::trace::Level::Debug,
                            "parallel.worker",
                            || vec![("worker", sper_obs::FieldValue::from(w as u64))],
                        );
                        let busy_start = Instant::now();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let range = (c * chunk).min(len)..((c + 1) * chunk).min(len);
                            out.push((c, f(&mut scratch, range, c)));
                            claimed += 1;
                        }
                        let busy = busy_start.elapsed();
                        span.record("chunks", claimed);
                        span.record("busy_us", busy.as_micros() as u64);
                        drop(span);
                        let stats = WorkerStats {
                            worker: w,
                            busy,
                            chunks: claimed,
                        };
                        (out, stats)
                    })
                })
                .collect();
            per_worker.extend(handles.into_iter().map(|h| h.join().unwrap()));
        })
        .expect("work-stealing fan-out panicked");

        // Per-chunk output slots restore chunk order regardless of which
        // worker executed which chunk.
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        let mut stats = Vec::with_capacity(workers);
        for (results, worker_stats) in per_worker {
            for (c, result) in results {
                debug_assert!(slots[c].is_none(), "chunk {c} claimed twice");
                slots[c] = Some(result);
            }
            stats.push(worker_stats);
        }
        record_fanout(wall_start.elapsed(), stats);
        slots
            .into_iter()
            .map(|s| s.expect("every chunk claimed exactly once"))
            .collect()
    }
}

/// Publishes one fan-out's execution profile to the metrics registry and
/// the [`take_last_fanout_stats`] slot.
fn record_fanout(wall: std::time::Duration, workers: Vec<WorkerStats>) {
    if sper_obs::metrics::enabled() {
        let registry = sper_obs::metrics::global();
        registry
            .gauge("parallel.fanout_workers")
            .set(workers.len() as i64);
        for w in &workers {
            sper_obs::observe!("parallel.worker_busy_us", w.busy.as_micros() as f64);
        }
        let _ = registry;
    }
    *LAST_FANOUT.lock().expect("fan-out stats poisoned") = Some(FanoutStats { wall, workers });
}

/// Chunks per worker the work-stealing plan aims for: enough slack for
/// stealing to even out skewed ranges (one giant block landing in one
/// shard), few enough that per-chunk bookkeeping stays negligible.
pub const STEAL_OVERSUBSCRIPTION: usize = 8;

/// Default minimum items per work-stealing chunk for per-profile sweeps —
/// small enough that a handful of heavy neighborhoods cannot serialize a
/// whole fixed range, large enough that claim overhead stays invisible.
pub const STEAL_MIN_CHUNK: usize = 256;

/// Per-worker execution record of one work-stealing fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within the fan-out (`0..workers`).
    pub worker: usize,
    /// Time the worker spent inside chunk bodies.
    pub busy: std::time::Duration,
    /// Chunks the worker claimed.
    pub chunks: usize,
}

/// One work-stealing fan-out's execution profile: wall-clock of the whole
/// fan-out plus every worker's busy time — what the bench harnesses turn
/// into per-thread utilization curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutStats {
    /// Wall-clock of the fan-out (spawn to last join).
    pub wall: std::time::Duration,
    /// Per-worker busy time and chunk counts, by worker index.
    pub workers: Vec<WorkerStats>,
}

impl FanoutStats {
    /// Per-worker utilization (`busy / wall`), by worker index — 1.0 is a
    /// fully busy worker, values near 0 are join/imbalance overhead.
    pub fn utilization(&self) -> Vec<f64> {
        let wall = self.wall.as_secs_f64();
        self.workers
            .iter()
            .map(|w| {
                if wall > 0.0 {
                    (w.busy.as_secs_f64() / wall).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// The most recent [`Parallelism::steal_chunks`] fan-out profile, for
/// bench introspection (last-writer-wins across concurrent fan-outs).
static LAST_FANOUT: std::sync::Mutex<Option<FanoutStats>> = std::sync::Mutex::new(None);

/// Takes the execution profile of the most recent work-stealing fan-out,
/// if any fan-out ran since the last take. The bench harnesses call this
/// right after a timed build to record per-thread utilization; it is
/// diagnostic state only — results never depend on it.
pub fn take_last_fanout_stats() -> Option<FanoutStats> {
    LAST_FANOUT.lock().expect("fan-out stats poisoned").take()
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::SEQUENTIAL`] — opting *in* to threads is
    /// explicit, so libraries embedding the engine never surprise their
    /// host with a thread pool.
    fn default() -> Self {
        Self::SEQUENTIAL
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

impl TryFrom<usize> for Parallelism {
    type Error = ZeroThreads;

    fn try_from(threads: usize) -> Result<Self, ZeroThreads> {
        Self::new(threads)
    }
}

/// Parallel Token Blocking: the *map* phase tokenizes disjoint profile
/// ranges through the shared interner and partitions `(token, profile)`
/// emissions by `TokenId % shards`; the *reduce* phase builds each shard's
/// blocks independently. Produces the exact same [`BlockCollection`] as
/// [`TokenBlocking`](crate::token_blocking::TokenBlocking) (blocks sorted
/// by key string).
///
/// # Errors
///
/// Returns [`ZeroThreads`] when `threads == 0`.
pub fn parallel_token_blocking(
    profiles: &ProfileCollection,
    threads: usize,
) -> Result<BlockCollection, ZeroThreads> {
    let par = Parallelism::new(threads)?;
    let n = profiles.len();
    let interner = TokenInterner::shared();
    if n == 0 {
        return Ok(BlockCollection::new(
            profiles.kind(),
            0,
            interner,
            Vec::new(),
        ));
    }
    let threads = par.capped(n).get();
    let chunk = n.div_ceil(threads);
    let all: &[sper_model::Profile] = profiles.profiles();

    // Map phase: per-worker, per-shard emission buffers. Workers intern
    // concurrently; id *assignment order* is nondeterministic across runs,
    // but nothing downstream observes it — output is ordered by key string.
    let mut emissions: Vec<Vec<Vec<(TokenId, ProfileId, SourceId)>>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = all
            .chunks(chunk)
            .map(|profiles_chunk| {
                let interner = Arc::clone(&interner);
                scope.spawn(move |_| {
                    let tokenizer = Tokenizer::default();
                    let mut shards: Vec<Vec<(TokenId, ProfileId, SourceId)>> =
                        vec![Vec::new(); threads];
                    let mut ids: Vec<TokenId> = Vec::new();
                    // Worker-local token → id cache: the shared interner's
                    // lock is touched once per distinct token per worker,
                    // not once per occurrence — Zipfian token traffic makes
                    // the contention otherwise swamp the map phase.
                    let mut cache: FxHashMap<Box<str>, TokenId> = FxHashMap::default();
                    for p in profiles_chunk {
                        ids.clear();
                        for attr in &p.attributes {
                            tokenizer.for_each_token(&attr.value, |tok| {
                                let id = match cache.get(tok) {
                                    Some(&id) => id,
                                    None => {
                                        let id = interner.intern(tok);
                                        cache.insert(Box::from(tok), id);
                                        id
                                    }
                                };
                                ids.push(id);
                            });
                        }
                        ids.sort_unstable();
                        ids.dedup();
                        for &tok in &ids {
                            shards[tok.index() % threads].push((tok, p.id, p.source));
                        }
                    }
                    shards
                })
            })
            .collect();
        emissions = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("map phase panicked");

    // Reduce phase: shard s merges the s-th buffer of every worker.
    let mut shard_blocks: Vec<Vec<Block>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let emissions = &emissions;
        let kind = profiles.kind();
        let handles: Vec<_> = (0..threads)
            .map(|s| {
                scope.spawn(move |_| {
                    let mut index: FxHashMap<TokenId, Vec<(ProfileId, SourceId)>> =
                        FxHashMap::default();
                    for worker in emissions {
                        for &(tok, pid, src) in &worker[s] {
                            index.entry(tok).or_default().push((pid, src));
                        }
                    }
                    index
                        .into_iter()
                        .map(|(key, members)| Block::new(key, members))
                        .filter(|b| b.cardinality(kind) > 0)
                        .collect::<Vec<Block>>()
                })
            })
            .collect();
        shard_blocks = handles.into_iter().map(|h| h.join().unwrap()).collect();
    })
    .expect("reduce phase panicked");

    let blocks: Vec<Block> = shard_blocks.into_iter().flatten().collect();
    let mut coll = BlockCollection::new(profiles.kind(), n, interner, blocks);
    coll.sort_by_key_str();
    Ok(coll)
}

/// Parallel Meta-blocking edge weighting: the sparse-accumulator kernel
/// ([`crate::spacc`]) sharded over contiguous **profile** ranges.
///
/// Each worker runs forward neighborhood sweeps over its range with its
/// own reusable scratch — no cross-shard `seen` set, no per-pair merge
/// intersections — and tags every discovered edge with its least common
/// block (the LeCoBI witness, §5.2.1). A stable counting sort by that tag
/// then restores the block-major first-occurrence order, so the resulting
/// graph is **bit-identical** to [`BlockingGraph::build`], including the
/// internal edge order (not merely set-equal), at every worker count.
///
/// This is the engine behind the progressive methods' parallel weighting:
/// the dominant cost of meta-blocking fans out `threads`-wide while the
/// emission order stays pinned.
///
/// # Errors
///
/// Returns [`ZeroThreads`] when `threads == 0`.
pub fn parallel_blocking_graph(
    blocks: &BlockCollection,
    scheme: WeightingScheme,
    threads: usize,
) -> Result<BlockingGraph, ZeroThreads> {
    // The break-even guard routes small workloads and oversubscribed
    // hosts to the sequential sweep — results are bit-identical either
    // way, so only wall clock is at stake. The gate unit is the
    // comparison volume ‖B‖ (what the sweeps actually distribute), not
    // the profile count: a small dense collection can still carry
    // millions of co-occurrences.
    let par = Parallelism::new(threads)?
        .break_even(blocks.total_comparisons().min(usize::MAX as u64) as usize);
    if blocks.is_empty() {
        return Ok(BlockingGraph::from_edges(blocks.n_profiles(), Vec::new()));
    }
    let index = ProfileIndex::build(blocks);
    let edges = crate::spacc::weighted_edge_list(blocks, &index, scheme, par);
    Ok(BlockingGraph::from_edges(blocks.n_profiles(), edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;
    use crate::token_blocking::TokenBlocking;
    use sper_model::{Pair, ProfileCollectionBuilder};

    fn medium_collection() -> ProfileCollection {
        // Deterministic mid-sized dirty collection with duplicates.
        let mut b = ProfileCollectionBuilder::dirty();
        for i in 0..300u32 {
            let base = i % 120; // thirds are duplicates
            b.add_profile([
                ("name", format!("alpha{} beta{}", base, base % 17)),
                ("city", format!("city{}", base % 9)),
            ]);
        }
        b.build()
    }

    fn keys_and_sizes(blocks: &BlockCollection) -> Vec<(String, Vec<ProfileId>)> {
        blocks
            .iter()
            .map(|b| (b.key_str().to_string(), b.profiles().to_vec()))
            .collect()
    }

    #[test]
    fn parallelism_boundary() {
        assert!(Parallelism::new(0).is_err());
        assert_eq!(Parallelism::new(3).unwrap().get(), 3);
        assert_eq!(Parallelism::default(), Parallelism::SEQUENTIAL);
        assert_eq!(Parallelism::new(8).unwrap().capped(2).get(), 2);
        assert_eq!(Parallelism::new(2).unwrap().capped(0).get(), 1);
        assert_eq!(Parallelism::try_from(5).unwrap().to_string(), "5");
        assert_eq!(
            ZeroThreads.to_string(),
            "parallel execution needs at least one worker thread"
        );
    }

    #[test]
    fn map_ranges_covers_exactly_once_for_awkward_worker_counts() {
        // Regression: with chunk = div_ceil(len, workers), trailing workers
        // can overshoot len (e.g. len 2069, 47 workers → chunk 45, worker
        // 46 would start at 2070). Ranges must stay well-formed (never
        // backwards — callers slice with them) and partition 0..len.
        for (len, workers) in [(2069usize, 47usize), (5, 4), (1, 8), (0, 3), (2049, 64)] {
            let ranges = Parallelism::new(workers)
                .unwrap()
                .map_ranges(len, |range| range);
            let mut covered = 0;
            let mut next = 0;
            for r in &ranges {
                assert!(r.start <= r.end, "backwards range {r:?} at len {len}");
                assert!(r.end <= len);
                if !r.is_empty() {
                    assert_eq!(r.start, next, "gap/overlap at len {len}");
                    next = r.end;
                }
                covered += r.len();
            }
            assert_eq!(covered, len, "len {len}, workers {workers}");
        }
    }

    #[test]
    fn parallel_blocking_equals_sequential() {
        let coll = medium_collection();
        let sequential = TokenBlocking::default().build(&coll);
        for threads in [1, 2, 4, 7] {
            let parallel = parallel_token_blocking(&coll, threads).unwrap();
            assert_eq!(
                keys_and_sizes(&parallel),
                keys_and_sizes(&sequential),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_blocking_on_fig3() {
        let coll = fig3_profiles();
        let parallel = parallel_token_blocking(&coll, 3).unwrap();
        let mut keys: Vec<String> = parallel.iter().map(|b| b.key_str().to_string()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["carl", "ml", "ny", "tailor", "teacher", "white"]);
    }

    #[test]
    fn parallel_graph_is_bit_identical_to_sequential() {
        let coll = medium_collection();
        let mut blocks = TokenBlocking::default().build(&coll);
        blocks.sort_by_cardinality();
        let sequential = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
        for threads in [1, 2, 4, 7] {
            let parallel = parallel_blocking_graph(&blocks, WeightingScheme::Arcs, threads)
                .expect("threads > 0");
            // Not merely the same edge *set*: the same edge *sequence* —
            // the internal order every downstream consumer observes.
            let seq_edges: Vec<(Pair, f64)> = sequential.edges().collect();
            let par_edges: Vec<(Pair, f64)> = parallel.edges().collect();
            assert_eq!(par_edges.len(), seq_edges.len(), "threads = {threads}");
            for (a, b) in par_edges.iter().zip(&seq_edges) {
                assert_eq!(a.0, b.0, "edge order diverged at threads = {threads}");
                assert!((a.1 - b.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_graph_without_cardinality_sort() {
        // LeCoBI sharding must agree with the seen-set dedup in *any*
        // block order, not just the scheduled one.
        let coll = medium_collection();
        let blocks = TokenBlocking::default().build(&coll); // key order
        let sequential = BlockingGraph::build(&blocks, WeightingScheme::Cbs);
        let parallel = parallel_blocking_graph(&blocks, WeightingScheme::Cbs, 4).unwrap();
        let seq_edges: Vec<(Pair, f64)> = sequential.edges().collect();
        let par_edges: Vec<(Pair, f64)> = parallel.edges().collect();
        assert_eq!(seq_edges, par_edges);
    }

    #[test]
    fn empty_collection() {
        let coll = ProfileCollectionBuilder::dirty().build();
        let blocks = parallel_token_blocking(&coll, 4).unwrap();
        assert!(blocks.is_empty());
        let graph = parallel_blocking_graph(&blocks, WeightingScheme::Arcs, 4).unwrap();
        assert_eq!(graph.num_edges(), 0);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let err = parallel_token_blocking(&fig3_profiles(), 0).unwrap_err();
        assert_eq!(err, ZeroThreads);
        let blocks = TokenBlocking::default().build(&fig3_profiles());
        assert_eq!(
            parallel_blocking_graph(&blocks, WeightingScheme::Arcs, 0).unwrap_err(),
            ZeroThreads
        );
    }
}
