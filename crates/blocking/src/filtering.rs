//! Block Filtering (§7 workflow step 3, \[12\]).
//!
//! Retains every profile in a fraction (paper default 80 %) of its most
//! important — i.e., smallest-cardinality — blocks, then rebuilds the block
//! collection. This cheaply removes the least informative co-occurrences
//! before the blocking graph is formed.

use crate::block::{Block, BlockCollection};
use sper_model::{ProfileId, SourceId};

/// Block Filtering operator.
#[derive(Debug, Clone, Copy)]
pub struct BlockFilter {
    ratio: f64,
}

impl BlockFilter {
    /// Creates a filter keeping each profile in `round(ratio · |B_i|)` of
    /// its smallest blocks (at least one).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio ≤ 1`.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        Self { ratio }
    }

    /// The paper's default (0.8).
    pub fn paper_default() -> Self {
        Self::new(0.8)
    }

    /// Number of blocks a profile contained in `n_blocks` blocks keeps.
    pub fn keep_count(&self, n_blocks: usize) -> usize {
        if n_blocks == 0 {
            return 0;
        }
        (((self.ratio * n_blocks as f64).round()) as usize).clamp(1, n_blocks)
    }

    /// Applies filtering and rebuilds the collection (dropping blocks that
    /// no longer yield valid comparisons). Operates directly on the CSR
    /// views; only the surviving memberships are rebuilt.
    pub fn filter(&self, blocks: BlockCollection) -> BlockCollection {
        let kind = blocks.kind();
        let n_profiles = blocks.n_profiles();

        // Rank blocks by cardinality ascending; rank index = importance.
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        let cards: Vec<u64> = blocks.iter().map(|b| b.cardinality(kind)).collect();
        order.sort_by_key(|&i| cards[i]);
        let mut rank = vec![0u32; blocks.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r as u32;
        }

        // Per profile: list of (rank, block index) memberships.
        let mut memberships: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_profiles];
        for (bi, b) in blocks.iter().enumerate() {
            for &p in b.profiles() {
                memberships[p.index()].push((rank[bi], bi as u32));
            }
        }

        // Decide which (profile, block) memberships survive.
        let mut keep: Vec<Vec<ProfileId>> = vec![Vec::new(); blocks.len()];
        for (p, mem) in memberships.iter_mut().enumerate() {
            mem.sort_unstable();
            let k = self.keep_count(mem.len());
            for &(_, bi) in mem.iter().take(k) {
                keep[bi as usize].push(ProfileId(p as u32));
            }
        }

        // Rebuild surviving blocks, preserving source partitioning.
        let mut rebuilt = Vec::with_capacity(blocks.len());
        for (bi, b) in blocks.iter().enumerate() {
            let members = &keep[bi];
            if members.len() < 2 {
                continue;
            }
            let with_sources: Vec<(ProfileId, SourceId)> = members
                .iter()
                .map(|&p| {
                    let src = if b.first_source().binary_search(&p).is_ok() {
                        SourceId::FIRST
                    } else {
                        SourceId::SECOND
                    };
                    (p, src)
                })
                .collect();
            let nb = Block::new(b.key, with_sources);
            if nb.cardinality(kind) > 0 {
                rebuilt.push(nb);
            }
        }
        let interner = std::sync::Arc::clone(blocks.interner());
        BlockCollection::new(kind, n_profiles, interner, rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::{ErKind, ProfileId};
    use sper_text::TokenInterner;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn keep_count_rounding() {
        let f = BlockFilter::paper_default();
        assert_eq!(f.keep_count(0), 0);
        assert_eq!(f.keep_count(1), 1);
        assert_eq!(f.keep_count(5), 4);
        assert_eq!(f.keep_count(10), 8);
        assert_eq!(BlockFilter::new(1.0).keep_count(7), 7);
    }

    #[test]
    fn drops_profile_from_largest_blocks() {
        let it = TokenInterner::shared();
        // p0 is in 5 blocks; with ratio 0.8 it keeps the 4 smallest, so it
        // must leave the biggest block ("huge").
        let mut blocks = vec![
            Block::new_dirty(it.intern("huge"), (0..6).map(pid).collect()),
            Block::new_dirty(it.intern("b1"), vec![pid(0), pid(1)]),
            Block::new_dirty(it.intern("b2"), vec![pid(0), pid(2)]),
            Block::new_dirty(it.intern("b3"), vec![pid(0), pid(3)]),
            Block::new_dirty(it.intern("b4"), vec![pid(0), pid(4)]),
        ];
        // Give the other profiles enough memberships that they also keep
        // their small blocks.
        blocks.push(Block::new_dirty(it.intern("b5"), vec![pid(1), pid(2)]));
        let coll = BlockCollection::new(ErKind::Dirty, 6, it, blocks);
        let filtered = BlockFilter::paper_default().filter(coll);
        // The block may also have degenerated and been dropped entirely.
        if let Some(b) = filtered.iter().find(|b| &*b.key_str() == "huge") {
            assert!(!b.profiles().contains(&pid(0)));
        }
        // The small blocks survive intact.
        assert!(filtered.iter().any(|b| &*b.key_str() == "b1"));
    }

    #[test]
    fn single_membership_always_kept() {
        let it = TokenInterner::shared();
        let blocks = vec![Block::new_dirty(it.intern("only"), vec![pid(0), pid(1)])];
        let coll = BlockCollection::new(ErKind::Dirty, 2, it, blocks);
        let filtered = BlockFilter::paper_default().filter(coll);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.get(crate::BlockId(0)).size(), 2);
    }

    #[test]
    fn clean_clean_sources_preserved() {
        let it = TokenInterner::shared();
        let blocks = vec![Block::new(
            it.intern("k"),
            vec![(pid(0), SourceId::FIRST), (pid(5), SourceId::SECOND)],
        )];
        let coll = BlockCollection::new(ErKind::CleanClean, 6, it, blocks);
        let filtered = BlockFilter::paper_default().filter(coll);
        assert_eq!(filtered.len(), 1);
        let b = filtered.get(crate::BlockId(0));
        assert_eq!(b.first_source(), &[pid(0)]);
        assert_eq!(b.second_source(), &[pid(5)]);
        assert_eq!(b.cardinality(ErKind::CleanClean), 1);
    }

    #[test]
    fn filtering_never_increases_comparisons() {
        let it = TokenInterner::shared();
        let blocks = vec![
            Block::new_dirty(it.intern("a"), (0..5).map(pid).collect()),
            Block::new_dirty(it.intern("b"), (2..8).map(pid).collect()),
            Block::new_dirty(it.intern("c"), vec![pid(0), pid(7)]),
        ];
        let coll = BlockCollection::new(ErKind::Dirty, 8, it, blocks);
        let before = coll.total_comparisons();
        let filtered = BlockFilter::paper_default().filter(coll);
        assert!(filtered.total_comparisons() <= before);
    }
}
