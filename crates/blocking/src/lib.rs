#![deny(missing_docs)]
//! # sper-blocking
//!
//! The blocking substrates of schema-agnostic progressive ER:
//!
//! * [`token_blocking`] — schema-agnostic Standard (Token) Blocking \[18\]:
//!   one block per attribute-value token (§3, §7 workflow step 1).
//! * [`purging`] — Block Purging: drop stop-word blocks covering more than
//!   10 % of the profiles (§7 workflow step 2).
//! * [`filtering`] — Block Filtering: retain each profile in its 80 %
//!   smallest blocks (§7 workflow step 3).
//! * [`graph`] + [`weights`] — the Blocking Graph of Meta-blocking \[12\] with
//!   the ARCS / CBS / JS / ECBS edge-weighting schemes (§3.2).
//! * [`profile_index`] — the Profile Index of §5.2.1: profile → sorted block
//!   ids, supporting the LeCoBI repeated-comparison test and one-pass edge
//!   weighting.
//! * [`neighbor_list`] — the schema-agnostic Neighbor List and Position
//!   Index of §3.2/§5.1.
//! * [`suffix_forest`] — the suffix forest of Suffix Arrays Blocking,
//!   scheduled leaves-first for SA-PSAB (§4.2).
//! * [`spacc`] — the sparse-accumulator weighting kernel: per-profile
//!   neighborhood sweeps over a dense reusable scratch with a touched-list
//!   reset, producing every meta-blocking edge weight without a
//!   materialized edge list or per-pair merge intersections.
//! * [`parallel`] — multi-threaded Token Blocking and edge weighting (the
//!   §8 future-work direction), result-identical to the sequential paths.

pub mod block;
pub mod filtering;
pub mod fixtures;
pub mod graph;
pub mod legacy;
pub mod metablocking;
pub mod neighbor_list;
pub mod parallel;
pub mod profile_index;
pub mod purging;
pub mod simd;
pub mod spacc;
pub mod suffix_forest;
pub mod token_blocking;
pub mod weights;

pub use block::{Block, BlockCollection, BlockCsrParts, BlockId, BlockRef};
pub use filtering::BlockFilter;
pub use graph::BlockingGraph;
pub use metablocking::{par_prune, par_prune_blocks, prune, prune_blocks, PruningScheme};
pub use neighbor_list::{NeighborList, PositionIndex};
pub use parallel::{
    parallel_blocking_graph, parallel_token_blocking, take_last_fanout_stats, FanoutStats,
    Parallelism, WorkerStats, ZeroThreads, MIN_PARALLEL_BATCH, STEAL_MIN_CHUNK,
    STEAL_OVERSUBSCRIPTION,
};
pub use profile_index::{IncrementalProfileIndex, IntersectStats, ProfileIndex};
pub use purging::BlockPurger;
pub use simd::KernelPath;
pub use spacc::{BlockIndex, BlockMembers, WeightAccumulator};
pub use suffix_forest::{SuffixForest, SuffixNode};
pub use token_blocking::TokenBlocking;
// The string ↔ id boundary of the columnar core, re-exported so consumers
// of block collections don't need a direct sper-text dependency.
pub use sper_text::{TokenId, TokenInterner};
pub use weights::{FinalizeTable, WeightingScheme};

use sper_model::ProfileCollection;

/// The Token Blocking Workflow of §7: Token Blocking → Block Purging →
/// Block Filtering, with the paper's default parameters (purge blocks
/// covering > 10 % of profiles; keep each profile in 80 % of its smallest
/// blocks). This produces the redundancy-positive block collection consumed
/// by the equality-based progressive methods (PBS, PPS).
#[derive(Debug, Clone)]
pub struct TokenBlockingWorkflow {
    /// Block Purging size ratio (paper default 0.1).
    pub purge_ratio: f64,
    /// Block Filtering retain ratio (paper default 0.8).
    pub filter_ratio: f64,
}

impl Default for TokenBlockingWorkflow {
    fn default() -> Self {
        Self {
            purge_ratio: 0.1,
            filter_ratio: 0.8,
        }
    }
}

impl TokenBlockingWorkflow {
    /// Runs the three-step workflow on `profiles`.
    pub fn run(&self, profiles: &ProfileCollection) -> BlockCollection {
        let blocks = TokenBlocking::default().build(profiles);
        let blocks = BlockPurger::new(self.purge_ratio).purge(blocks);
        BlockFilter::new(self.filter_ratio).filter(blocks)
    }
}

#[cfg(test)]
mod workflow_tests {
    use super::*;
    use sper_model::ProfileCollectionBuilder;

    #[test]
    fn workflow_produces_blocks() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("name", "carl white ny tailor")]);
        b.add_profile([("name", "karl white ny tailor")]);
        b.add_profile([("name", "hellen white ml teacher")]);
        let coll = b.build();
        let blocks = TokenBlockingWorkflow::default().run(&coll);
        assert!(!blocks.is_empty());
        // every kept block has at least one comparison
        for blk in blocks.iter() {
            assert!(blk.cardinality(blocks.kind()) > 0);
        }
    }
}
