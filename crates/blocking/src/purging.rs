//! Block Purging (§7 workflow step 2, \[12\]).
//!
//! Discards over-large blocks that correspond to stop words: any block whose
//! size exceeds `ratio · |P|` (paper default 10 %) carries so little
//! discriminative information that its comparisons are mostly noise. For
//! RDF data this is what removes the URI-prefix blocks (`http`, `org`, …).

use crate::block::BlockCollection;

/// Block Purging operator.
#[derive(Debug, Clone, Copy)]
pub struct BlockPurger {
    ratio: f64,
}

impl BlockPurger {
    /// Creates a purger keeping only blocks with `size ≤ ratio · |P|`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio ≤ 1`.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        Self { ratio }
    }

    /// The paper's default (0.1).
    pub fn paper_default() -> Self {
        Self::new(0.1)
    }

    /// The size threshold for a collection of `n_profiles` profiles.
    /// Always at least 2, so tiny collections are not purged to nothing.
    pub fn max_block_size(&self, n_profiles: usize) -> usize {
        ((self.ratio * n_profiles as f64).floor() as usize).max(2)
    }

    /// Applies purging, preserving block order — an in-place CSR
    /// compaction, no block is rebuilt.
    pub fn purge(&self, mut blocks: BlockCollection) -> BlockCollection {
        let max = self.max_block_size(blocks.n_profiles());
        blocks.retain(|b| b.size() <= max);
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use sper_model::{ErKind, ProfileId};
    use sper_text::TokenInterner;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn purges_stop_word_blocks() {
        let it = TokenInterner::shared();
        // 20 profiles; ratio 0.1 → threshold max(2, 2) = 2.
        let blocks = vec![
            Block::new_dirty(it.intern("rare"), vec![pid(0), pid(1)]),
            Block::new_dirty(it.intern("the"), (0..15).map(pid).collect()),
        ];
        let coll = BlockCollection::new(ErKind::Dirty, 20, it, blocks);
        let purged = BlockPurger::paper_default().purge(coll);
        assert_eq!(purged.len(), 1);
        assert_eq!(&*purged.key_str(crate::BlockId(0)), "rare");
    }

    #[test]
    fn threshold_floor_is_two() {
        // With 5 profiles and ratio 0.1, 0.5 floors to 0 — but pairs must
        // survive, so the effective threshold is 2.
        let p = BlockPurger::paper_default();
        assert_eq!(p.max_block_size(5), 2);
        assert_eq!(p.max_block_size(1000), 100);
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let it = TokenInterner::shared();
        let blocks = vec![Block::new_dirty(it.intern("k"), (0..10).map(pid).collect())];
        let coll = BlockCollection::new(ErKind::Dirty, 10, it, blocks);
        let purged = BlockPurger::new(1.0).purge(coll);
        assert_eq!(purged.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_panics() {
        BlockPurger::new(0.0);
    }
}
