//! Block Purging (§7 workflow step 2, \[12\]).
//!
//! Discards over-large blocks that correspond to stop words: any block whose
//! size exceeds `ratio · |P|` (paper default 10 %) carries so little
//! discriminative information that its comparisons are mostly noise. For
//! RDF data this is what removes the URI-prefix blocks (`http`, `org`, …).

use crate::block::BlockCollection;

/// Block Purging operator.
#[derive(Debug, Clone, Copy)]
pub struct BlockPurger {
    ratio: f64,
}

impl BlockPurger {
    /// Creates a purger keeping only blocks with `size ≤ ratio · |P|`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio ≤ 1`.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        Self { ratio }
    }

    /// The paper's default (0.1).
    pub fn paper_default() -> Self {
        Self::new(0.1)
    }

    /// The size threshold for a collection of `n_profiles` profiles.
    /// Always at least 2, so tiny collections are not purged to nothing.
    pub fn max_block_size(&self, n_profiles: usize) -> usize {
        ((self.ratio * n_profiles as f64).floor() as usize).max(2)
    }

    /// Applies purging, preserving block order.
    pub fn purge(&self, blocks: BlockCollection) -> BlockCollection {
        let kind = blocks.kind();
        let n = blocks.n_profiles();
        let max = self.max_block_size(n);
        let kept: Vec<_> = blocks
            .into_blocks()
            .into_iter()
            .filter(|b| b.size() <= max)
            .collect();
        BlockCollection::new(kind, n, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use sper_model::{ErKind, ProfileId};

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    #[test]
    fn purges_stop_word_blocks() {
        // 20 profiles; ratio 0.1 → threshold max(2, 2) = 2.
        let blocks = vec![
            Block::new_dirty("rare", vec![pid(0), pid(1)]),
            Block::new_dirty("the", (0..15).map(pid).collect()),
        ];
        let coll = BlockCollection::new(ErKind::Dirty, 20, blocks);
        let purged = BlockPurger::paper_default().purge(coll);
        assert_eq!(purged.len(), 1);
        assert_eq!(purged.get(crate::BlockId(0)).key, "rare");
    }

    #[test]
    fn threshold_floor_is_two() {
        // With 5 profiles and ratio 0.1, 0.5 floors to 0 — but pairs must
        // survive, so the effective threshold is 2.
        let p = BlockPurger::paper_default();
        assert_eq!(p.max_block_size(5), 2);
        assert_eq!(p.max_block_size(1000), 100);
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let blocks = vec![Block::new_dirty("k", (0..10).map(pid).collect())];
        let coll = BlockCollection::new(ErKind::Dirty, 10, blocks);
        let purged = BlockPurger::new(1.0).purge(coll);
        assert_eq!(purged.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_panics() {
        BlockPurger::new(0.0);
    }
}
