//! Meta-blocking edge-weighting schemes (§3.2, \[12\], \[20\]).
//!
//! All schemes infer the matching likelihood of a pair exclusively from the
//! blocks the two profiles share:
//!
//! * **ARCS** — Aggregate Reciprocal Comparisons: `Σ 1/‖b_k‖` over shared
//!   blocks; smaller (more distinctive) blocks contribute more. The paper's
//!   default (§7 workflow step 4).
//! * **CBS** — Common Blocks: `|B_i ∩ B_j|`.
//! * **JS** — Jaccard of block lists: `|B_i ∩ B_j| / |B_i ∪ B_j|`.
//! * **ECBS** — Enhanced CBS: `CBS · ln(|B|/|B_i|) · ln(|B|/|B_j|)`.
//!
//! Every scheme decomposes into a *per-shared-block contribution* plus a
//! *finalization*, so both the pairwise path (Profile-Index intersection,
//! used by PBS) and the accumulation path (neighborhood sweep, used by PPS)
//! produce identical weights.

/// An edge-weighting scheme of the blocking graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightingScheme {
    /// Aggregate Reciprocal Comparisons Scheme (paper default).
    #[default]
    Arcs,
    /// Common Blocks Scheme.
    Cbs,
    /// Jaccard Scheme over block lists.
    Js,
    /// Enhanced Common Blocks Scheme.
    Ecbs,
}

impl WeightingScheme {
    /// All schemes, for ablation sweeps.
    pub const ALL: [WeightingScheme; 4] = [
        WeightingScheme::Arcs,
        WeightingScheme::Cbs,
        WeightingScheme::Js,
        WeightingScheme::Ecbs,
    ];

    /// Stable wire code of the scheme — the persistence format
    /// (`sper-store`) stores this byte; codes are append-only and never
    /// reassigned.
    pub fn code(self) -> u8 {
        match self {
            WeightingScheme::Arcs => 0,
            WeightingScheme::Cbs => 1,
            WeightingScheme::Js => 2,
            WeightingScheme::Ecbs => 3,
        }
    }

    /// The scheme with the given wire code, if any.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.code() == code)
    }

    /// Contribution of one shared block with the given cardinality `‖b‖`.
    ///
    /// ARCS adds the reciprocal cardinality; all counting-based schemes add
    /// 1 (their accumulated value is the CBS count, refined in
    /// [`Self::finalize`]).
    #[inline]
    pub fn per_block(self, block_cardinality: u64) -> f64 {
        match self {
            WeightingScheme::Arcs => 1.0 / block_cardinality.max(1) as f64,
            _ => 1.0,
        }
    }

    /// Finalizes an accumulated per-block sum into the edge weight.
    ///
    /// * `acc` — the sum of [`Self::per_block`] contributions;
    /// * `n_blocks_i`, `n_blocks_j` — `|B_i|`, `|B_j|` (block-list lengths);
    /// * `total_blocks` — `|B|`.
    #[inline]
    pub fn finalize(
        self,
        acc: f64,
        n_blocks_i: usize,
        n_blocks_j: usize,
        total_blocks: usize,
    ) -> f64 {
        match self {
            WeightingScheme::Arcs | WeightingScheme::Cbs => acc,
            WeightingScheme::Js => {
                let union = n_blocks_i as f64 + n_blocks_j as f64 - acc;
                if union <= 0.0 {
                    0.0
                } else {
                    acc / union
                }
            }
            WeightingScheme::Ecbs => {
                let total = total_blocks.max(1) as f64;
                let li = (total / n_blocks_i.max(1) as f64).ln();
                let lj = (total / n_blocks_j.max(1) as f64).ln();
                acc * li * lj
            }
        }
    }

    /// Short name used in reports (`ARCS`, `CBS`, `JS`, `ECBS`).
    pub fn name(self) -> &'static str {
        match self {
            WeightingScheme::Arcs => "ARCS",
            WeightingScheme::Cbs => "CBS",
            WeightingScheme::Js => "JS",
            WeightingScheme::Ecbs => "ECBS",
        }
    }
}

impl std::fmt::Display for WeightingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Precomputed per-profile finalization terms of one scheme over one
/// substrate — the edge-emission fast path of the spacc kernel.
///
/// [`WeightingScheme::finalize`] recomputes per-endpoint terms for every
/// edge: JS re-derives both block-list lengths, ECBS additionally takes
/// **two logarithms per edge**. Over tens of millions of edges those
/// dominate the weighting hot loop, yet each term depends only on one
/// endpoint — `|P|` values in total. This table hoists them:
///
/// * **ARCS/CBS** — finalization is the identity; the table stores nothing.
/// * **JS** — `term[p] = |B_p| as f64`; the weight is
///   `acc / (term[i] + term[j] - acc)`.
/// * **ECBS** — `term[p] = ln(|B| / max(|B_p|, 1))`; the weight is
///   `acc * term[i] * term[j]`.
///
/// Every arithmetic step reproduces [`WeightingScheme::finalize`]'s exact
/// expression over the exact same inputs (`usize → f64` conversions are
/// exact for any realistic block count, and the multiply/divide order is
/// unchanged), so table-based weights are **bit-identical** to the
/// per-edge path — pinned by `tests/simd_equivalence.rs`.
#[derive(Debug, Clone)]
pub struct FinalizeTable {
    scheme: WeightingScheme,
    /// Per-profile endpoint term (empty for ARCS/CBS).
    term: Vec<f64>,
}

impl FinalizeTable {
    /// Builds the table for `scheme` over the profiles of `index`.
    pub fn build<I: crate::spacc::BlockIndex + ?Sized>(
        index: &I,
        scheme: WeightingScheme,
        n_profiles: usize,
    ) -> Self {
        let term = match scheme {
            WeightingScheme::Arcs | WeightingScheme::Cbs => Vec::new(),
            WeightingScheme::Js => (0..n_profiles)
                .map(|p| index.blocks_of(sper_model::ProfileId(p as u32)).len() as f64)
                .collect(),
            WeightingScheme::Ecbs => {
                let total = index.total_blocks().max(1) as f64;
                (0..n_profiles)
                    .map(|p| {
                        let len = index.blocks_of(sper_model::ProfileId(p as u32)).len();
                        (total / len.max(1) as f64).ln()
                    })
                    .collect()
            }
        };
        Self { scheme, term }
    }

    /// The scheme this table finalizes for.
    pub fn scheme(&self) -> WeightingScheme {
        self.scheme
    }

    /// Finalizes the accumulated per-block sum `acc` of the edge `(i, j)`
    /// — bit-identical to [`WeightingScheme::finalize`] with the
    /// endpoints' block-list lengths.
    #[inline]
    pub fn weight(&self, i: u32, j: u32, acc: f64) -> f64 {
        match self.scheme {
            WeightingScheme::Arcs | WeightingScheme::Cbs => acc,
            WeightingScheme::Js => {
                let union = self.term[i as usize] + self.term[j as usize] - acc;
                if union <= 0.0 {
                    0.0
                } else {
                    acc / union
                }
            }
            WeightingScheme::Ecbs => acc * self.term[i as usize] * self.term[j as usize],
        }
    }

    /// Finalizes one whole drained neighborhood at once: `js`/`accs` are
    /// profile `i`'s neighbors and accumulated sums (parallel slices), and
    /// `out` is cleared and refilled with one weight per neighbor —
    /// bit-identical to calling [`Self::weight`] per edge, but the
    /// counting schemes' copy and the JS/ECBS arithmetic run chunked
    /// through the dispatched kernel (`path`), 4 lanes per iteration on
    /// AVX2 hosts.
    pub fn weights_into(
        &self,
        path: crate::simd::KernelPath,
        i: u32,
        js: &[u32],
        accs: &[f64],
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(js.len(), accs.len());
        match self.scheme {
            WeightingScheme::Arcs | WeightingScheme::Cbs => {
                out.clear();
                out.extend_from_slice(accs);
            }
            WeightingScheme::Js => {
                path.js_weights(self.term[i as usize], &self.term, js, accs, out)
            }
            WeightingScheme::Ecbs => {
                path.ecbs_weights(self.term[i as usize], &self.term, js, accs, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_per_block_is_reciprocal() {
        assert_eq!(WeightingScheme::Arcs.per_block(4), 0.25);
        assert_eq!(WeightingScheme::Arcs.per_block(1), 1.0);
        // Degenerate zero-cardinality blocks must not divide by zero.
        assert_eq!(WeightingScheme::Arcs.per_block(0), 1.0);
    }

    #[test]
    fn counting_schemes_accumulate_ones() {
        for s in [
            WeightingScheme::Cbs,
            WeightingScheme::Js,
            WeightingScheme::Ecbs,
        ] {
            assert_eq!(s.per_block(99), 1.0);
        }
    }

    #[test]
    fn js_is_jaccard() {
        // 2 shared, |Bi| = 4, |Bj| = 3 → 2 / (4 + 3 − 2) = 0.4.
        let w = WeightingScheme::Js.finalize(2.0, 4, 3, 100);
        assert!((w - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ecbs_scales_cbs_by_idf() {
        let w = WeightingScheme::Ecbs.finalize(2.0, 10, 10, 100);
        let expected = 2.0 * (10.0f64).ln() * (10.0f64).ln();
        assert!((w - expected).abs() < 1e-12);
    }

    #[test]
    fn arcs_finalize_is_identity() {
        assert_eq!(WeightingScheme::Arcs.finalize(1.57, 5, 6, 7), 1.57);
    }

    #[test]
    fn js_handles_degenerate_inputs() {
        assert_eq!(WeightingScheme::Js.finalize(0.0, 0, 0, 10), 0.0);
    }

    #[test]
    fn names_roundtrip() {
        for s in WeightingScheme::ALL {
            assert_eq!(format!("{s}"), s.name());
        }
    }

    #[test]
    fn weights_into_matches_per_edge_weight() {
        use crate::fixtures::fig3_profiles;
        use crate::profile_index::ProfileIndex;
        use crate::simd::KernelPath;
        use crate::token_blocking::TokenBlocking;
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        let js: Vec<u32> = (0..n as u32).collect();
        let accs: Vec<f64> = (0..n).map(|k| 1.0 + k as f64 * 0.5).collect();
        let mut out = Vec::new();
        for scheme in WeightingScheme::ALL {
            let table = FinalizeTable::build(&index, scheme, n);
            for i in 0..n as u32 {
                table.weights_into(KernelPath::active(), i, &js, &accs, &mut out);
                assert_eq!(out.len(), js.len());
                for (k, &j) in js.iter().enumerate() {
                    assert_eq!(
                        out[k].to_bits(),
                        table.weight(i, j, accs[k]).to_bits(),
                        "{scheme} ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn finalize_table_is_bit_identical_to_finalize() {
        use crate::fixtures::fig3_profiles;
        use crate::profile_index::ProfileIndex;
        use crate::token_blocking::TokenBlocking;
        use sper_model::ProfileId;
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        let index = ProfileIndex::build(&blocks);
        let n = blocks.n_profiles();
        for scheme in WeightingScheme::ALL {
            let table = FinalizeTable::build(&index, scheme, n);
            assert_eq!(table.scheme(), scheme);
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    for acc in [0.5, 1.0, 2.0, 3.25] {
                        let li = index.blocks_of(ProfileId(i)).len();
                        let lj = index.blocks_of(ProfileId(j)).len();
                        let reference = scheme.finalize(acc, li, lj, index.total_blocks());
                        assert_eq!(
                            table.weight(i, j, acc).to_bits(),
                            reference.to_bits(),
                            "{scheme} ({i}, {j}) acc {acc}"
                        );
                    }
                }
            }
        }
    }
}
