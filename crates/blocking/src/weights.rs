//! Meta-blocking edge-weighting schemes (§3.2, \[12\], \[20\]).
//!
//! All schemes infer the matching likelihood of a pair exclusively from the
//! blocks the two profiles share:
//!
//! * **ARCS** — Aggregate Reciprocal Comparisons: `Σ 1/‖b_k‖` over shared
//!   blocks; smaller (more distinctive) blocks contribute more. The paper's
//!   default (§7 workflow step 4).
//! * **CBS** — Common Blocks: `|B_i ∩ B_j|`.
//! * **JS** — Jaccard of block lists: `|B_i ∩ B_j| / |B_i ∪ B_j|`.
//! * **ECBS** — Enhanced CBS: `CBS · ln(|B|/|B_i|) · ln(|B|/|B_j|)`.
//!
//! Every scheme decomposes into a *per-shared-block contribution* plus a
//! *finalization*, so both the pairwise path (Profile-Index intersection,
//! used by PBS) and the accumulation path (neighborhood sweep, used by PPS)
//! produce identical weights.

/// An edge-weighting scheme of the blocking graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightingScheme {
    /// Aggregate Reciprocal Comparisons Scheme (paper default).
    #[default]
    Arcs,
    /// Common Blocks Scheme.
    Cbs,
    /// Jaccard Scheme over block lists.
    Js,
    /// Enhanced Common Blocks Scheme.
    Ecbs,
}

impl WeightingScheme {
    /// All schemes, for ablation sweeps.
    pub const ALL: [WeightingScheme; 4] = [
        WeightingScheme::Arcs,
        WeightingScheme::Cbs,
        WeightingScheme::Js,
        WeightingScheme::Ecbs,
    ];

    /// Stable wire code of the scheme — the persistence format
    /// (`sper-store`) stores this byte; codes are append-only and never
    /// reassigned.
    pub fn code(self) -> u8 {
        match self {
            WeightingScheme::Arcs => 0,
            WeightingScheme::Cbs => 1,
            WeightingScheme::Js => 2,
            WeightingScheme::Ecbs => 3,
        }
    }

    /// The scheme with the given wire code, if any.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.code() == code)
    }

    /// Contribution of one shared block with the given cardinality `‖b‖`.
    ///
    /// ARCS adds the reciprocal cardinality; all counting-based schemes add
    /// 1 (their accumulated value is the CBS count, refined in
    /// [`Self::finalize`]).
    #[inline]
    pub fn per_block(self, block_cardinality: u64) -> f64 {
        match self {
            WeightingScheme::Arcs => 1.0 / block_cardinality.max(1) as f64,
            _ => 1.0,
        }
    }

    /// Finalizes an accumulated per-block sum into the edge weight.
    ///
    /// * `acc` — the sum of [`Self::per_block`] contributions;
    /// * `n_blocks_i`, `n_blocks_j` — `|B_i|`, `|B_j|` (block-list lengths);
    /// * `total_blocks` — `|B|`.
    #[inline]
    pub fn finalize(
        self,
        acc: f64,
        n_blocks_i: usize,
        n_blocks_j: usize,
        total_blocks: usize,
    ) -> f64 {
        match self {
            WeightingScheme::Arcs | WeightingScheme::Cbs => acc,
            WeightingScheme::Js => {
                let union = n_blocks_i as f64 + n_blocks_j as f64 - acc;
                if union <= 0.0 {
                    0.0
                } else {
                    acc / union
                }
            }
            WeightingScheme::Ecbs => {
                let total = total_blocks.max(1) as f64;
                let li = (total / n_blocks_i.max(1) as f64).ln();
                let lj = (total / n_blocks_j.max(1) as f64).ln();
                acc * li * lj
            }
        }
    }

    /// Short name used in reports (`ARCS`, `CBS`, `JS`, `ECBS`).
    pub fn name(self) -> &'static str {
        match self {
            WeightingScheme::Arcs => "ARCS",
            WeightingScheme::Cbs => "CBS",
            WeightingScheme::Js => "JS",
            WeightingScheme::Ecbs => "ECBS",
        }
    }
}

impl std::fmt::Display for WeightingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_per_block_is_reciprocal() {
        assert_eq!(WeightingScheme::Arcs.per_block(4), 0.25);
        assert_eq!(WeightingScheme::Arcs.per_block(1), 1.0);
        // Degenerate zero-cardinality blocks must not divide by zero.
        assert_eq!(WeightingScheme::Arcs.per_block(0), 1.0);
    }

    #[test]
    fn counting_schemes_accumulate_ones() {
        for s in [
            WeightingScheme::Cbs,
            WeightingScheme::Js,
            WeightingScheme::Ecbs,
        ] {
            assert_eq!(s.per_block(99), 1.0);
        }
    }

    #[test]
    fn js_is_jaccard() {
        // 2 shared, |Bi| = 4, |Bj| = 3 → 2 / (4 + 3 − 2) = 0.4.
        let w = WeightingScheme::Js.finalize(2.0, 4, 3, 100);
        assert!((w - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ecbs_scales_cbs_by_idf() {
        let w = WeightingScheme::Ecbs.finalize(2.0, 10, 10, 100);
        let expected = 2.0 * (10.0f64).ln() * (10.0f64).ln();
        assert!((w - expected).abs() < 1e-12);
    }

    #[test]
    fn arcs_finalize_is_identity() {
        assert_eq!(WeightingScheme::Arcs.finalize(1.57, 5, 6, 7), 1.57);
    }

    #[test]
    fn js_handles_degenerate_inputs() {
        assert_eq!(WeightingScheme::Js.finalize(0.0, 0, 0, 10), 0.0);
    }

    #[test]
    fn names_roundtrip() {
        for s in WeightingScheme::ALL {
            assert_eq!(format!("{s}"), s.name());
        }
    }
}
