//! The Blocking Graph of Meta-blocking (§3.2, \[12\]).
//!
//! An undirected weighted graph whose nodes are profiles and whose edges are
//! the distinct valid comparisons of a redundancy-positive block collection,
//! weighted by a [`WeightingScheme`].
//!
//! As the paper notes, *materializing and sorting all edges is impractical
//! for large datasets*; the progressive methods therefore never materialize
//! this type — PBS and PPS derive edge weights lazily from the
//! [`ProfileIndex`] type. `BlockingGraph` is
//! provided for analysis, small-scale experiments, tests (it encodes
//! Fig. 3(c) exactly) and as the reference implementation that the lazy
//! paths are property-tested against.
//!
//! Construction runs on the sparse-accumulator kernel ([`crate::spacc`]):
//! per-profile neighborhood sweeps produce every distinct weighted edge
//! with `O(1)` amortized work per co-occurrence, and a stable counting
//! sort by least-common-block id restores the historical block-major
//! first-occurrence edge order bit for bit (the seed seen-set builder is
//! preserved as [`crate::legacy::legacy_graph_edges`] and property-tested
//! against this one).
//!
//! The adjacency is stored in CSR form (offsets + one packed edge-index
//! array) — neighborhood sweeps are sequential scans over one allocation.

use crate::block::BlockCollection;
use crate::parallel::Parallelism;
use crate::profile_index::ProfileIndex;
use crate::weights::WeightingScheme;
use sper_model::{Pair, ProfileId};

/// A materialized blocking graph.
#[derive(Debug, Clone)]
pub struct BlockingGraph {
    n_profiles: usize,
    /// Distinct valid comparisons with their weights, in unspecified order.
    edges: Vec<(Pair, f64)>,
    /// CSR adjacency: edge indices of node `p` are
    /// `adj_edges[adj_offsets[p]..adj_offsets[p+1]]`.
    adj_offsets: Vec<u32>,
    adj_edges: Vec<u32>,
}

impl BlockingGraph {
    /// Materializes the graph of `blocks` under `scheme`.
    ///
    /// Every distinct valid comparison entailed by the blocks becomes one
    /// edge; repeated co-occurrences are merged (that is what makes the
    /// blocks *redundancy-positive*: the weight grows with the number of
    /// shared blocks, it does not duplicate edges).
    pub fn build(blocks: &BlockCollection, scheme: WeightingScheme) -> Self {
        let mut span = sper_obs::span!("blocking.graph_build", blocks = blocks.len());
        let index = ProfileIndex::build(blocks);
        // Sparse-accumulator sweeps instead of per-pair merges: no hashed
        // `seen` set, no `O(|B_i| + |B_j|)` intersection per pair — and the
        // counting sort inside restores the seed builder's edge order.
        let edges =
            crate::spacc::weighted_edge_list(blocks, &index, scheme, Parallelism::SEQUENTIAL);
        span.record("edges", edges.len());
        Self::from_edges(blocks.n_profiles(), edges)
    }

    /// Assembles a graph from pre-weighted edges (used by the parallel
    /// builder in [`crate::parallel`]). Edges must be distinct pairs.
    pub fn from_edges(n_profiles: usize, edges: Vec<(Pair, f64)>) -> Self {
        // Two counting passes build the CSR adjacency without per-node Vecs.
        let mut counts = vec![0u32; n_profiles];
        for (pair, _) in &edges {
            counts[pair.first.index()] += 1;
            counts[pair.second.index()] += 1;
        }
        let adj_offsets = crate::block::prefix_offsets(&counts);
        let mut cursor = adj_offsets.clone();
        let mut adj_edges = vec![0u32; *adj_offsets.last().unwrap() as usize];
        for (i, (pair, _)) in edges.iter().enumerate() {
            for endpoint in [pair.first, pair.second] {
                let at = &mut cursor[endpoint.index()];
                adj_edges[*at as usize] = i as u32;
                *at += 1;
            }
        }
        Self {
            n_profiles,
            edges,
            adj_offsets,
            adj_edges,
        }
    }

    /// Edge indices incident to `p`.
    #[inline]
    fn adjacency(&self, p: ProfileId) -> &[u32] {
        &self.adj_edges
            [self.adj_offsets[p.index()] as usize..self.adj_offsets[p.index() + 1] as usize]
    }

    /// `|V_B|`: number of profiles (nodes), including isolated ones.
    pub fn num_nodes(&self) -> usize {
        self.n_profiles
    }

    /// `|E_B|`: number of distinct weighted edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterates `(pair, weight)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (Pair, f64)> + '_ {
        self.edges.iter().copied()
    }

    /// The weight of the edge between `a` and `b`, if present.
    pub fn weight_of(&self, a: ProfileId, b: ProfileId) -> Option<f64> {
        if a == b {
            return None;
        }
        let pair = Pair::new(a, b);
        self.adjacency(a)
            .iter()
            .map(|&i| &self.edges[i as usize])
            .find(|(p, _)| *p == pair)
            .map(|&(_, w)| w)
    }

    /// Degree of a node.
    pub fn degree(&self, p: ProfileId) -> usize {
        self.adjacency(p).len()
    }

    /// Iterates `(neighbor, weight)` over the node's neighborhood.
    pub fn neighbors(&self, p: ProfileId) -> impl Iterator<Item = (ProfileId, f64)> + '_ {
        self.adjacency(p).iter().map(move |&i| {
            let (pair, w) = self.edges[i as usize];
            (pair.other(p), w)
        })
    }

    /// Average incident-edge weight of a node — PPS's *duplication
    /// likelihood* (§5.2.2). Zero for isolated nodes.
    pub fn duplication_likelihood(&self, p: ProfileId) -> f64 {
        let adj = self.adjacency(p);
        if adj.is_empty() {
            return 0.0;
        }
        let sum: f64 = adj.iter().map(|&i| self.edges[i as usize].1).sum();
        sum / adj.len() as f64
    }

    /// All edges sorted by non-increasing weight (ties by pair id for
    /// determinism) — the "ideal" exhaustive comparison order the
    /// progressive methods approximate without materialization.
    pub fn sorted_edges(&self) -> Vec<(Pair, f64)> {
        let mut out = self.edges.clone();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_profiles;
    use crate::token_blocking::TokenBlocking;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    fn fig3_graph() -> BlockingGraph {
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        BlockingGraph::build(&blocks, WeightingScheme::Arcs)
    }

    #[test]
    fn fig3c_shape() {
        let g = fig3_graph();
        assert_eq!(g.num_nodes(), 6);
        // Every pair co-occurs at least in block "white" → complete graph
        // over 6 nodes: 15 edges, as drawn in Fig. 3(c).
        assert_eq!(g.num_edges(), 15);
        for p in 0..6 {
            assert_eq!(g.degree(pid(p)), 5);
        }
    }

    #[test]
    fn fig3c_weights() {
        let g = fig3_graph();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        assert!(close(
            g.weight_of(pid(0), pid(1)).unwrap(),
            1.0 + 1.0 / 3.0 + 1.0 / 6.0 + 1.0 / 15.0
        ));
        assert!(close(
            g.weight_of(pid(3), pid(4)).unwrap(),
            2.0 + 1.0 / 15.0
        ));
        assert!(close(g.weight_of(pid(2), pid(3)).unwrap(), 1.0 / 15.0));
        assert_eq!(g.weight_of(pid(0), pid(0)), None);
    }

    #[test]
    fn top_edge_is_the_strongest_match() {
        let g = fig3_graph();
        let sorted = g.sorted_edges();
        // c45 (our 3-4) has weight 2.07 — the global maximum of Fig. 3(c).
        assert_eq!(sorted[0].0, Pair::new(pid(3), pid(4)));
        assert_eq!(sorted[1].0, Pair::new(pid(0), pid(1)));
        // Weights non-increasing.
        assert!(sorted.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn duplication_likelihood_ranks_duplicated_profiles_high() {
        let g = fig3_graph();
        // p6 (our 5) is the only non-duplicated profile; its average
        // incident weight must be the lowest.
        let dl: Vec<f64> = (0..6).map(|i| g.duplication_likelihood(pid(i))).collect();
        let min = dl.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((dl[5] - min).abs() < 1e-12, "p6 should rank last: {dl:?}");
    }

    #[test]
    fn neighbors_are_consistent_with_weights() {
        let g = fig3_graph();
        for (n, w) in g.neighbors(pid(0)) {
            assert_eq!(g.weight_of(pid(0), n), Some(w));
        }
    }
}
