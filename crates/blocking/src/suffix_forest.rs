//! The suffix forest of Suffix Arrays Blocking (§4.2, Fig. 5).
//!
//! Every attribute-value token is converted into all of its suffixes with at
//! least `lmin` characters. Each distinct suffix indexes a block; the
//! blocks form trees (a suffix is the parent of the one-character-longer
//! suffixes ending with it) — one tree per distinct `lmin`-length suffix.
//!
//! SA-PSAB processes the forest *leaves first, root last*: nodes are
//! scheduled by decreasing suffix length (layer) and, within a layer, by
//! increasing number of comparisons (§4.2).
//!
//! Suffixes are interned: each distinct suffix string becomes one
//! [`TokenId`], the suffix → members index is a flat id-indexed `Vec`, and
//! per-profile dedup is a `u32` sort. `SuffixIter` yields borrowed slices,
//! so no suffix ever allocates a `String`.

use crate::block::{Block, BlockCollection};
use sper_model::{ErKind, ProfileCollection, ProfileId, SourceId};
use sper_text::{SuffixIter, TokenId, TokenInterner, Tokenizer};
use std::sync::Arc;

/// One node of the suffix forest: a suffix key with its block of profiles.
#[derive(Debug, Clone)]
pub struct SuffixNode {
    /// The interned suffix this node indexes.
    pub key: TokenId,
    /// Suffix length in characters (= layer; larger is deeper).
    pub suffix_len: u32,
    /// The block of profiles containing a token with this suffix.
    pub block: Block,
}

/// The suffix forest in SA-PSAB processing order.
#[derive(Debug, Clone)]
pub struct SuffixForest {
    kind: ErKind,
    n_profiles: usize,
    interner: Arc<TokenInterner>,
    /// Nodes sorted by (suffix_len desc, cardinality asc, key string asc).
    nodes: Vec<SuffixNode>,
}

impl SuffixForest {
    /// Builds the forest with minimum suffix length `lmin` (SA-PSAB's only
    /// configuration parameter).
    pub fn build(profiles: &ProfileCollection, lmin: usize) -> Self {
        Self::build_with_interner(profiles, lmin, TokenInterner::shared())
    }

    /// Like [`Self::build`] with an existing (possibly shared) interner.
    pub fn build_with_interner(
        profiles: &ProfileCollection,
        lmin: usize,
        interner: Arc<TokenInterner>,
    ) -> Self {
        let tokenizer = Tokenizer::default();
        // suffix id → members, flat-indexed.
        let mut index: Vec<Vec<(ProfileId, SourceId)>> = Vec::new();
        let mut tokens: Vec<String> = Vec::new();
        let mut suffix_ids: Vec<TokenId> = Vec::new();
        for p in profiles.iter() {
            tokens.clear();
            for attr in &p.attributes {
                tokenizer.tokenize_into(&attr.value, &mut tokens);
            }
            tokens.sort_unstable();
            tokens.dedup();
            // Every (profile, suffix) membership is recorded once.
            suffix_ids.clear();
            for t in &tokens {
                for s in SuffixIter::new(t, lmin) {
                    suffix_ids.push(interner.intern(s));
                }
            }
            suffix_ids.sort_unstable();
            suffix_ids.dedup();
            if let Some(&max) = suffix_ids.last() {
                if max.index() >= index.len() {
                    index.resize_with(max.index() + 1, Vec::new);
                }
            }
            for &s in &suffix_ids {
                index[s.index()].push((p.id, p.source));
            }
        }

        let kind = profiles.kind();
        let mut nodes: Vec<SuffixNode> = index
            .into_iter()
            .enumerate()
            .filter(|(_, members)| !members.is_empty())
            .map(|(id, members)| {
                let key = TokenId(id as u32);
                let suffix_len = interner.resolve(key).chars().count() as u32;
                SuffixNode {
                    block: Block::new(key, members),
                    key,
                    suffix_len,
                }
            })
            .filter(|n| n.block.cardinality(kind) > 0)
            .collect();

        // Leaves first (longest suffixes), then increasing comparisons
        // inside each layer; key string for determinism (interning order
        // must stay unobservable).
        let rank = interner.rank();
        nodes.sort_by(|a, b| {
            b.suffix_len
                .cmp(&a.suffix_len)
                .then_with(|| a.block.cardinality(kind).cmp(&b.block.cardinality(kind)))
                .then_with(|| rank[a.key.index()].cmp(&rank[b.key.index()]))
        });

        Self {
            kind,
            n_profiles: profiles.len(),
            interner,
            nodes,
        }
    }

    /// The task kind.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// The interner resolving the suffix keys.
    pub fn interner(&self) -> &Arc<TokenInterner> {
        &self.interner
    }

    /// The suffix string of a node.
    pub fn key_str(&self, node: &SuffixNode) -> Arc<str> {
        self.interner.resolve(node.key)
    }

    /// Number of nodes (suffix blocks) in processing order.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the forest has no comparable node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in SA-PSAB processing order.
    pub fn nodes(&self) -> &[SuffixNode] {
        &self.nodes
    }

    /// Converts the forest into a plain block collection (processing order
    /// preserved), e.g. to feed block-based analyses.
    pub fn into_block_collection(self) -> BlockCollection {
        let blocks = self.nodes.into_iter().map(|n| n.block).collect();
        BlockCollection::new(self.kind, self.n_profiles, self.interner, blocks)
    }

    /// Total comparisons entailed by the forest (with cross-node repeats).
    pub fn total_comparisons(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.block.cardinality(self.kind))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sper_model::ProfileCollectionBuilder;

    /// Fig. 5 workload: tokens gain, pain, join, coin across 4 profiles.
    fn fig5_profiles() -> ProfileCollection {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("w", "gain")]);
        b.add_profile([("w", "pain")]);
        b.add_profile([("w", "join")]);
        b.add_profile([("w", "coin")]);
        b.build()
    }

    fn keys(forest: &SuffixForest) -> Vec<String> {
        forest
            .nodes()
            .iter()
            .map(|n| forest.key_str(n).to_string())
            .collect()
    }

    #[test]
    fn fig5_suffix_tree_layers() {
        let forest = SuffixForest::build(&fig5_profiles(), 2);
        // Shared suffixes: ain{gain,pain}, oin{join,coin}, in{all 4}.
        // The 4-char suffixes are singletons → dropped.
        assert_eq!(keys(&forest), vec!["ain", "oin", "in"]);
        // Leaves (len 3) come before the root (len 2).
        let lens: Vec<u32> = forest.nodes().iter().map(|n| n.suffix_len).collect();
        assert_eq!(lens, vec![3, 3, 2]);
    }

    #[test]
    fn within_layer_smaller_blocks_first() {
        let mut b = ProfileCollectionBuilder::dirty();
        // "xain" for 3 profiles, "yoin" for 2 → layer-3 nodes: ain(3), oin(2).
        b.add_profile([("w", "xain")]);
        b.add_profile([("w", "zain")]);
        b.add_profile([("w", "qain")]);
        b.add_profile([("w", "yoin")]);
        b.add_profile([("w", "woin")]);
        let forest = SuffixForest::build(&b.build(), 3);
        let layer3: Vec<String> = forest
            .nodes()
            .iter()
            .filter(|n| n.suffix_len == 3)
            .map(|n| forest.key_str(n).to_string())
            .collect();
        assert_eq!(layer3, vec!["oin", "ain"], "smaller node processed first");
    }

    #[test]
    fn whole_tokens_are_their_own_suffix() {
        let mut b = ProfileCollectionBuilder::dirty();
        b.add_profile([("w", "coin")]);
        b.add_profile([("w", "coin")]);
        let forest = SuffixForest::build(&b.build(), 2);
        // coin, oin, in all shared by both profiles.
        assert_eq!(forest.len(), 3);
        assert_eq!(&*forest.key_str(&forest.nodes()[0]), "coin");
        assert_eq!(forest.total_comparisons(), 3);
    }

    #[test]
    fn clean_clean_cross_source_only() {
        let mut b = ProfileCollectionBuilder::clean_clean();
        b.add_profile([("w", "gain")]);
        b.add_profile([("w", "pain")]);
        b.start_second_source();
        b.add_profile([("w", "rain")]);
        let coll = b.build();
        let forest = SuffixForest::build(&coll, 2);
        for node in forest.nodes() {
            assert!(node.block.cardinality(ErKind::CleanClean) > 0);
        }
        // "ain" spans sources; "in" too.
        assert!(keys(&forest).iter().any(|k| k == "ain"));
    }

    #[test]
    fn into_block_collection_preserves_order() {
        let forest = SuffixForest::build(&fig5_profiles(), 2);
        let expected = keys(&forest);
        let blocks = forest.into_block_collection();
        let got: Vec<String> = blocks.iter().map(|b| b.key_str().to_string()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn profile_once_per_suffix() {
        let mut b = ProfileCollectionBuilder::dirty();
        // "main" and "gain" share the suffixes ain/in; profile 0 has both
        // tokens but must appear once in each suffix block.
        b.add_profile([("w", "main gain")]);
        b.add_profile([("w", "pain")]);
        let forest = SuffixForest::build(&b.build(), 2);
        let ain = forest
            .nodes()
            .iter()
            .find(|n| &*forest.key_str(n) == "ain")
            .unwrap();
        assert_eq!(ain.block.size(), 2);
    }
}
