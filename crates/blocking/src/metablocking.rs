//! Batch Meta-blocking (§3.2, \[12\], \[20\]): restructure a redundancy-positive
//! block collection into a new one with similar recall but far higher
//! precision by pruning low-weight blocking-graph edges.
//!
//! The paper's progressive methods *replace* this batch pruning with on-line
//! ordering; the batch algorithms are implemented here because (a) they are
//! the substrate the equality-based methods generalize, and (b) they give
//! the Batch-ER baseline that the *Improved Early Quality* requirement
//! (§3.1) is defined against.
//!
//! Implemented pruning schemes (the standard meta-blocking family):
//!
//! * **WEP** — Weighted Edge Pruning: keep edges above the global mean
//!   weight.
//! * **CEP** — Cardinality Edge Pruning: keep the globally top-`K` edges,
//!   `K = Σ|b|/2` by convention.
//! * **WNP** — Weighted Node Pruning: per node, keep edges above the local
//!   mean; an edge survives if either endpoint keeps it (redefined-WNP).
//! * **CNP** — Cardinality Node Pruning: per node, keep the top-`k` edges,
//!   `k = Σ|b|/|P|` by convention.
//!
//! The node-centric schemes have a **zero-materialization** route:
//! [`prune_blocks`] / [`par_prune_blocks`] run per-node sparse-accumulator
//! sweeps ([`crate::spacc`]) directly on the block collection — identical
//! output to pruning a materialized [`BlockingGraph`], at `O(|P|)` peak
//! memory instead of `O(|E|)`.

use crate::block::BlockCollection;
use crate::graph::BlockingGraph;
use crate::parallel::{Parallelism, ZeroThreads};
use crate::profile_index::ProfileIndex;
use crate::spacc::WeightAccumulator;
use crate::weights::WeightingScheme;
use sper_model::{Pair, ProfileId};
use sper_text::FxHashMap;

/// Which meta-blocking pruning algorithm to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningScheme {
    /// Weighted Edge Pruning: global mean-weight threshold.
    Wep,
    /// Cardinality Edge Pruning: global top-`K` edges.
    Cep {
        /// Number of edges to keep.
        k: usize,
    },
    /// Weighted Node Pruning: per-node mean threshold, union semantics.
    Wnp,
    /// Cardinality Node Pruning: per-node top-`k`, union semantics.
    Cnp {
        /// Edges kept per node.
        k: usize,
    },
}

impl PruningScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PruningScheme::Wep => "WEP",
            PruningScheme::Cep { .. } => "CEP",
            PruningScheme::Wnp => "WNP",
            PruningScheme::Cnp { .. } => "CNP",
        }
    }
}

/// Non-increasing weight, ties by ascending id — the single comparator
/// behind every pruning order (global output sort, CNP's per-node top-`k`,
/// both the graph-based and the streaming path). The graph and streaming
/// routes must tie-break identically for their equivalence to hold, so
/// there is exactly one definition.
fn weight_desc<T: Ord>(a: &(T, f64), b: &(T, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

/// Applies a node-centric scheme's retention rule to one node's weighted
/// neighborhood (in adjacency enumeration order — WNP's mean is an
/// order-sensitive float sum), handing every kept `(neighbor, weight)` to
/// `keep`. The **single** definition of the WNP mean threshold and the
/// CNP top-`k` selection: the graph-based and streaming pruning routes
/// both run it, so their equivalence cannot drift.
fn select_node_edges(
    scheme: PruningScheme,
    neighborhood: &mut [(ProfileId, f64)],
    mut keep: impl FnMut(ProfileId, f64),
) {
    if neighborhood.is_empty() {
        return;
    }
    match scheme {
        PruningScheme::Wnp => {
            let mean: f64 =
                neighborhood.iter().map(|&(_, w)| w).sum::<f64>() / neighborhood.len() as f64;
            for &(other, w) in neighborhood.iter() {
                if w >= mean {
                    keep(other, w);
                }
            }
        }
        PruningScheme::Cnp { k } => {
            neighborhood.sort_by(weight_desc);
            for &(other, w) in neighborhood.iter().take(k) {
                keep(other, w);
            }
        }
        PruningScheme::Wep | PruningScheme::Cep { .. } => {
            unreachable!("edge-centric schemes have no per-node pass")
        }
    }
}

/// One node's retained edges under a node-centric scheme (WNP/CNP),
/// inserted into `keep` — the definition both the sequential [`prune`]
/// and the sharded [`par_prune`] run. `neighborhood` is a reusable
/// per-caller buffer (cleared here) so the per-node loop allocates
/// nothing.
fn keep_for_node(
    graph: &BlockingGraph,
    scheme: PruningScheme,
    node: ProfileId,
    neighborhood: &mut Vec<(ProfileId, f64)>,
    keep: &mut std::collections::HashSet<Pair>,
) {
    neighborhood.clear();
    neighborhood.extend(graph.neighbors(node));
    select_node_edges(scheme, neighborhood, |other, _| {
        keep.insert(Pair::new(node, other));
    });
}

/// Applies `scheme` to the blocking graph, returning the retained
/// comparisons sorted by non-increasing weight (ties by pair id).
pub fn prune(graph: &BlockingGraph, scheme: PruningScheme) -> Vec<(Pair, f64)> {
    let mut kept: Vec<(Pair, f64)> = match scheme {
        PruningScheme::Wep => {
            let n = graph.num_edges();
            if n == 0 {
                return Vec::new();
            }
            let mean: f64 = graph.edges().map(|(_, w)| w).sum::<f64>() / n as f64;
            graph.edges().filter(|&(_, w)| w >= mean).collect()
        }
        PruningScheme::Cep { k } => {
            let mut edges: Vec<(Pair, f64)> = graph.edges().collect();
            edges.sort_by(weight_desc);
            edges.truncate(k);
            edges
        }
        PruningScheme::Wnp | PruningScheme::Cnp { .. } => {
            let mut keep: std::collections::HashSet<Pair> = std::collections::HashSet::new();
            let mut neighborhood: Vec<(ProfileId, f64)> = Vec::new();
            for node in 0..graph.num_nodes() {
                keep_for_node(
                    graph,
                    scheme,
                    ProfileId(node as u32),
                    &mut neighborhood,
                    &mut keep,
                );
            }
            graph.edges().filter(|(p, _)| keep.contains(p)).collect()
        }
    };
    kept.sort_by(weight_desc);
    kept
}

/// One node's retained edges under a node-centric scheme, computed
/// **without a materialized graph**: the sparse-accumulator sweep produces
/// the node's full weighted neighborhood, sorted into the exact order the
/// materialized adjacency would enumerate it (so WNP's mean is the same
/// float sum bit for bit), and the kept `(pair, weight)` entries land in
/// `keep` — the weight is recorded alongside because there is no edge
/// list to look it up from later.
// Private per-node unit of the two public entry points; the extra
// parameters are the reusable buffers.
#[allow(clippy::too_many_arguments)]
fn keep_for_node_streaming(
    blocks: &BlockCollection,
    index: &ProfileIndex,
    weighting: WeightingScheme,
    scheme: PruningScheme,
    node: ProfileId,
    acc: &mut WeightAccumulator,
    neighborhood: &mut Vec<(ProfileId, f64)>,
    keep: &mut FxHashMap<Pair, f64>,
) {
    acc.sweep(blocks.kind(), blocks, index, weighting, node, None);
    if acc.is_empty() {
        return;
    }
    // The materialized graph stores edges block-major (first occurrence)
    // and a node's partners within one block appear in ascending id order;
    // sorting by (least common block, id) therefore reproduces the
    // adjacency enumeration order exactly.
    acc.sort_touched_by_adjacency();
    // Finalize each neighbor once, in adjacency order (the order the mean
    // must be summed in).
    neighborhood.clear();
    neighborhood.extend(acc.touched().iter().map(|&j| {
        let j = ProfileId(j);
        (j, acc.finalize(index, weighting, node, j))
    }));
    select_node_edges(scheme, neighborhood, |other, w| {
        keep.insert(Pair::new(node, other), w);
    });
    acc.reset();
}

/// Applies `scheme` to the blocking graph of `blocks` under `weighting`
/// **without materializing it**: the node-centric schemes (WNP, CNP) run
/// per-node sparse-accumulator sweeps directly on the block collection, so
/// peak memory is `O(|P| + |kept|)` instead of `O(|E|)`. The edge-centric
/// schemes (WEP, CEP) need every edge weight at once by definition and
/// delegate to [`prune`] over a kernel-built graph.
///
/// Output is identical to `prune(&BlockingGraph::build(blocks, weighting),
/// scheme)` — same comparisons, same weights, same order.
pub fn prune_blocks(
    blocks: &BlockCollection,
    weighting: WeightingScheme,
    scheme: PruningScheme,
) -> Vec<(Pair, f64)> {
    par_prune_blocks(blocks, weighting, scheme, 1).expect("one thread is always valid")
}

/// [`prune_blocks`] with the per-node sweeps fanned out over `threads`
/// workers (each with its own scratch and keep-map; the union is
/// order-independent and the final weight sort pins the output).
///
/// # Errors
///
/// Returns [`ZeroThreads`] when `threads == 0`.
pub fn par_prune_blocks(
    blocks: &BlockCollection,
    weighting: WeightingScheme,
    scheme: PruningScheme,
    threads: usize,
) -> Result<Vec<(Pair, f64)>, ZeroThreads> {
    let par = Parallelism::new(threads)?;
    if matches!(scheme, PruningScheme::Wep | PruningScheme::Cep { .. }) {
        // The materialization the edge-centric schemes force is itself the
        // dominant cost — fan it out over the requested workers.
        let graph = crate::parallel::parallel_blocking_graph(blocks, weighting, par.get())?;
        return Ok(prune(&graph, scheme));
    }
    // Same break-even guard as the graph fan-out, gated on the comparison
    // volume the sweeps distribute: bit-identical results, sequential path
    // when the spawn would cost more than it distributes.
    let par = par.break_even(blocks.total_comparisons().min(usize::MAX as u64) as usize);
    let index = ProfileIndex::build(blocks);
    let n = blocks.n_profiles();
    // Work-stealing chunks: one scratch pair per worker (reused across
    // every chunk the worker claims), one keep-map per chunk. The union
    // below is order-independent, so stealing cannot change the output.
    let keep_maps = par.steal_chunks(
        n,
        crate::parallel::STEAL_MIN_CHUNK,
        || (WeightAccumulator::new(n), Vec::<(ProfileId, f64)>::new()),
        |(acc, neighborhood), range, _chunk| {
            let mut keep: FxHashMap<Pair, f64> = FxHashMap::default();
            for node in range {
                keep_for_node_streaming(
                    blocks,
                    &index,
                    weighting,
                    scheme,
                    ProfileId(node as u32),
                    acc,
                    neighborhood,
                    &mut keep,
                );
            }
            keep
        },
    );
    // An edge can be kept from both endpoints (possibly in different
    // shards) with the same symmetric weight — the map union dedups it.
    let mut kept: FxHashMap<Pair, f64> = FxHashMap::default();
    for keep in keep_maps {
        kept.extend(keep);
    }
    let mut kept: Vec<(Pair, f64)> = kept.into_iter().collect();
    kept.sort_by(weight_desc);
    Ok(kept)
}

/// [`prune`] with the per-node sweeps of the node-centric schemes (WNP,
/// CNP) fanned out over `threads` workers.
///
/// Each worker prunes a contiguous node range into a local keep-set; the
/// union of keep-sets is order-independent, and the final weight sort makes
/// the output deterministic — identical to the sequential [`prune`] for
/// every scheme. The edge-centric schemes (WEP, CEP) are a single cheap
/// pass and simply delegate to the sequential path (a chunked float sum
/// would change rounding, and with it borderline mean-threshold decisions).
///
/// # Errors
///
/// Returns [`ZeroThreads`] when `threads == 0`.
pub fn par_prune(
    graph: &BlockingGraph,
    scheme: PruningScheme,
    threads: usize,
) -> Result<Vec<(Pair, f64)>, ZeroThreads> {
    let par = Parallelism::new(threads)?;
    let nodes = graph.num_nodes();
    if par.is_sequential()
        || nodes == 0
        || matches!(scheme, PruningScheme::Wep | PruningScheme::Cep { .. })
    {
        return Ok(prune(graph, scheme));
    }

    // Work-stealing chunks with a per-worker neighborhood scratch; the
    // keep-set union is order-independent, so stealing cannot change the
    // output.
    let keep_sets = par.steal_chunks(
        nodes,
        crate::parallel::STEAL_MIN_CHUNK,
        Vec::<(ProfileId, f64)>::new,
        |neighborhood, range, _chunk| {
            let mut keep = std::collections::HashSet::new();
            for node in range {
                keep_for_node(
                    graph,
                    scheme,
                    ProfileId(node as u32),
                    neighborhood,
                    &mut keep,
                );
            }
            keep
        },
    );

    let keep: std::collections::HashSet<Pair> = keep_sets.into_iter().flatten().collect();
    let mut kept: Vec<(Pair, f64)> = graph.edges().filter(|(p, _)| keep.contains(p)).collect();
    kept.sort_by(weight_desc);
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fig3_ground_truth, fig3_profiles};
    use crate::token_blocking::TokenBlocking;
    use crate::weights::WeightingScheme;

    fn fig3_graph() -> BlockingGraph {
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        BlockingGraph::build(&blocks, WeightingScheme::Arcs)
    }

    #[test]
    fn wep_keeps_above_mean() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Wep);
        let mean: f64 = g.edges().map(|(_, w)| w).sum::<f64>() / g.num_edges() as f64;
        assert!(!kept.is_empty() && kept.len() < g.num_edges());
        assert!(kept.iter().all(|&(_, w)| w >= mean));
        // All true matches survive WEP on Fig. 3 (their weights dominate).
        let truth = fig3_ground_truth();
        let surviving_matches = kept.iter().filter(|(p, _)| truth.is_match_pair(*p)).count();
        assert_eq!(surviving_matches, 4);
    }

    #[test]
    fn cep_keeps_exactly_k() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Cep { k: 3 });
        assert_eq!(kept.len(), 3);
        // The three strongest edges of Fig. 3(c): c45, c12, then one of the
        // 0.57 edges.
        assert!(kept[0].1 > kept[1].1 && kept[1].1 > kept[2].1 - 1e-12);
    }

    #[test]
    fn wnp_union_semantics() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Wnp);
        // Node pruning retains at least the strongest edge per node.
        for node in 0..g.num_nodes() as u32 {
            let node = sper_model::ProfileId(node);
            if g.degree(node) == 0 {
                continue;
            }
            let best = g
                .neighbors(node)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            let best_pair = Pair::new(node, best.0);
            assert!(
                kept.iter().any(|(p, _)| *p == best_pair),
                "node {node:?}'s best edge pruned"
            );
        }
    }

    #[test]
    fn cnp_bounds_retained_set() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Cnp { k: 1 });
        // ≤ one retained edge per node (union over nodes).
        assert!(kept.len() <= g.num_nodes());
        assert!(!kept.is_empty());
    }

    #[test]
    fn output_sorted_descending() {
        let g = fig3_graph();
        for scheme in [
            PruningScheme::Wep,
            PruningScheme::Cep { k: 10 },
            PruningScheme::Wnp,
            PruningScheme::Cnp { k: 2 },
        ] {
            let kept = prune(&g, scheme);
            assert!(
                kept.windows(2).all(|w| w[0].1 >= w[1].1),
                "{} output not sorted",
                scheme.name()
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = BlockingGraph::from_edges(4, Vec::new());
        assert!(prune(&g, PruningScheme::Wep).is_empty());
        assert!(prune(&g, PruningScheme::Cep { k: 5 }).is_empty());
    }

    #[test]
    fn streaming_prune_matches_materialized_for_every_scheme() {
        // The zero-materialization path must reproduce the graph-based
        // pruning exactly: same comparisons, same weights, same order —
        // dirty and (via the raw token blocks) arbitrary block orders.
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        for sorted in [false, true] {
            if sorted {
                blocks.sort_by_cardinality();
            }
            let g = BlockingGraph::build(&blocks, WeightingScheme::Arcs);
            for scheme in [
                PruningScheme::Wep,
                PruningScheme::Cep { k: 7 },
                PruningScheme::Wnp,
                PruningScheme::Cnp { k: 2 },
            ] {
                let reference = prune(&g, scheme);
                let streamed = prune_blocks(&blocks, WeightingScheme::Arcs, scheme);
                assert_eq!(streamed, reference, "{} (sorted {sorted})", scheme.name());
                for threads in [2, 4] {
                    let par = par_prune_blocks(&blocks, WeightingScheme::Arcs, scheme, threads)
                        .expect("threads > 0");
                    assert_eq!(par, reference, "{} at {threads}", scheme.name());
                }
            }
        }
        assert!(par_prune_blocks(&blocks, WeightingScheme::Arcs, PruningScheme::Wnp, 0).is_err());
    }

    #[test]
    fn par_prune_matches_sequential_for_every_scheme() {
        let g = fig3_graph();
        for scheme in [
            PruningScheme::Wep,
            PruningScheme::Cep { k: 7 },
            PruningScheme::Wnp,
            PruningScheme::Cnp { k: 2 },
        ] {
            let sequential = prune(&g, scheme);
            for threads in [1, 2, 4] {
                let parallel = par_prune(&g, scheme, threads).expect("threads > 0");
                assert_eq!(
                    parallel,
                    sequential,
                    "{} at {threads} threads",
                    scheme.name()
                );
            }
        }
        assert!(par_prune(&g, PruningScheme::Wnp, 0).is_err());
    }
}
