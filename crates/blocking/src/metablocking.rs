//! Batch Meta-blocking (§3.2, \[12\], \[20\]): restructure a redundancy-positive
//! block collection into a new one with similar recall but far higher
//! precision by pruning low-weight blocking-graph edges.
//!
//! The paper's progressive methods *replace* this batch pruning with on-line
//! ordering; the batch algorithms are implemented here because (a) they are
//! the substrate the equality-based methods generalize, and (b) they give
//! the Batch-ER baseline that the *Improved Early Quality* requirement
//! (§3.1) is defined against.
//!
//! Implemented pruning schemes (the standard meta-blocking family):
//!
//! * **WEP** — Weighted Edge Pruning: keep edges above the global mean
//!   weight.
//! * **CEP** — Cardinality Edge Pruning: keep the globally top-`K` edges,
//!   `K = Σ|b|/2` by convention.
//! * **WNP** — Weighted Node Pruning: per node, keep edges above the local
//!   mean; an edge survives if either endpoint keeps it (redefined-WNP).
//! * **CNP** — Cardinality Node Pruning: per node, keep the top-`k` edges,
//!   `k = Σ|b|/|P|` by convention.

use crate::graph::BlockingGraph;
use crate::parallel::{Parallelism, ZeroThreads};
use sper_model::Pair;

/// Which meta-blocking pruning algorithm to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningScheme {
    /// Weighted Edge Pruning: global mean-weight threshold.
    Wep,
    /// Cardinality Edge Pruning: global top-`K` edges.
    Cep {
        /// Number of edges to keep.
        k: usize,
    },
    /// Weighted Node Pruning: per-node mean threshold, union semantics.
    Wnp,
    /// Cardinality Node Pruning: per-node top-`k`, union semantics.
    Cnp {
        /// Edges kept per node.
        k: usize,
    },
}

impl PruningScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PruningScheme::Wep => "WEP",
            PruningScheme::Cep { .. } => "CEP",
            PruningScheme::Wnp => "WNP",
            PruningScheme::Cnp { .. } => "CNP",
        }
    }
}

/// Non-increasing weight, ties by pair id — the output order of every
/// pruning scheme.
fn weight_desc(a: &(Pair, f64), b: &(Pair, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

/// One node's retained edges under a node-centric scheme (WNP/CNP),
/// inserted into `keep` — the single definition both the sequential
/// [`prune`] and the sharded [`par_prune`] run, so the two paths cannot
/// drift apart.
fn keep_for_node(
    graph: &BlockingGraph,
    scheme: PruningScheme,
    node: sper_model::ProfileId,
    keep: &mut std::collections::HashSet<Pair>,
) {
    match scheme {
        PruningScheme::Wnp => {
            let neighborhood: Vec<(sper_model::ProfileId, f64)> = graph.neighbors(node).collect();
            if neighborhood.is_empty() {
                return;
            }
            let mean: f64 =
                neighborhood.iter().map(|&(_, w)| w).sum::<f64>() / neighborhood.len() as f64;
            for (other, w) in neighborhood {
                if w >= mean {
                    keep.insert(Pair::new(node, other));
                }
            }
        }
        PruningScheme::Cnp { k } => {
            let mut neighborhood: Vec<(sper_model::ProfileId, f64)> =
                graph.neighbors(node).collect();
            neighborhood.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            for (other, _) in neighborhood.into_iter().take(k) {
                keep.insert(Pair::new(node, other));
            }
        }
        PruningScheme::Wep | PruningScheme::Cep { .. } => {
            unreachable!("edge-centric schemes have no per-node pass")
        }
    }
}

/// Applies `scheme` to the blocking graph, returning the retained
/// comparisons sorted by non-increasing weight (ties by pair id).
pub fn prune(graph: &BlockingGraph, scheme: PruningScheme) -> Vec<(Pair, f64)> {
    let mut kept: Vec<(Pair, f64)> = match scheme {
        PruningScheme::Wep => {
            let n = graph.num_edges();
            if n == 0 {
                return Vec::new();
            }
            let mean: f64 = graph.edges().map(|(_, w)| w).sum::<f64>() / n as f64;
            graph.edges().filter(|&(_, w)| w >= mean).collect()
        }
        PruningScheme::Cep { k } => {
            let mut edges: Vec<(Pair, f64)> = graph.edges().collect();
            edges.sort_by(weight_desc);
            edges.truncate(k);
            edges
        }
        PruningScheme::Wnp | PruningScheme::Cnp { .. } => {
            let mut keep: std::collections::HashSet<Pair> = std::collections::HashSet::new();
            for node in 0..graph.num_nodes() {
                keep_for_node(graph, scheme, sper_model::ProfileId(node as u32), &mut keep);
            }
            graph.edges().filter(|(p, _)| keep.contains(p)).collect()
        }
    };
    kept.sort_by(weight_desc);
    kept
}

/// [`prune`] with the per-node sweeps of the node-centric schemes (WNP,
/// CNP) fanned out over `threads` workers.
///
/// Each worker prunes a contiguous node range into a local keep-set; the
/// union of keep-sets is order-independent, and the final weight sort makes
/// the output deterministic — identical to the sequential [`prune`] for
/// every scheme. The edge-centric schemes (WEP, CEP) are a single cheap
/// pass and simply delegate to the sequential path (a chunked float sum
/// would change rounding, and with it borderline mean-threshold decisions).
///
/// # Errors
///
/// Returns [`ZeroThreads`] when `threads == 0`.
pub fn par_prune(
    graph: &BlockingGraph,
    scheme: PruningScheme,
    threads: usize,
) -> Result<Vec<(Pair, f64)>, ZeroThreads> {
    let par = Parallelism::new(threads)?;
    let nodes = graph.num_nodes();
    if par.is_sequential()
        || nodes == 0
        || matches!(scheme, PruningScheme::Wep | PruningScheme::Cep { .. })
    {
        return Ok(prune(graph, scheme));
    }

    let keep_sets = par.map_ranges(nodes, |range| {
        let mut keep = std::collections::HashSet::new();
        for node in range {
            keep_for_node(graph, scheme, sper_model::ProfileId(node as u32), &mut keep);
        }
        keep
    });

    let keep: std::collections::HashSet<Pair> = keep_sets.into_iter().flatten().collect();
    let mut kept: Vec<(Pair, f64)> = graph.edges().filter(|(p, _)| keep.contains(p)).collect();
    kept.sort_by(weight_desc);
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fig3_ground_truth, fig3_profiles};
    use crate::token_blocking::TokenBlocking;
    use crate::weights::WeightingScheme;

    fn fig3_graph() -> BlockingGraph {
        let mut blocks = TokenBlocking::default().build(&fig3_profiles());
        blocks.sort_by_cardinality();
        BlockingGraph::build(&blocks, WeightingScheme::Arcs)
    }

    #[test]
    fn wep_keeps_above_mean() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Wep);
        let mean: f64 = g.edges().map(|(_, w)| w).sum::<f64>() / g.num_edges() as f64;
        assert!(!kept.is_empty() && kept.len() < g.num_edges());
        assert!(kept.iter().all(|&(_, w)| w >= mean));
        // All true matches survive WEP on Fig. 3 (their weights dominate).
        let truth = fig3_ground_truth();
        let surviving_matches = kept.iter().filter(|(p, _)| truth.is_match_pair(*p)).count();
        assert_eq!(surviving_matches, 4);
    }

    #[test]
    fn cep_keeps_exactly_k() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Cep { k: 3 });
        assert_eq!(kept.len(), 3);
        // The three strongest edges of Fig. 3(c): c45, c12, then one of the
        // 0.57 edges.
        assert!(kept[0].1 > kept[1].1 && kept[1].1 > kept[2].1 - 1e-12);
    }

    #[test]
    fn wnp_union_semantics() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Wnp);
        // Node pruning retains at least the strongest edge per node.
        for node in 0..g.num_nodes() as u32 {
            let node = sper_model::ProfileId(node);
            if g.degree(node) == 0 {
                continue;
            }
            let best = g
                .neighbors(node)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            let best_pair = Pair::new(node, best.0);
            assert!(
                kept.iter().any(|(p, _)| *p == best_pair),
                "node {node:?}'s best edge pruned"
            );
        }
    }

    #[test]
    fn cnp_bounds_retained_set() {
        let g = fig3_graph();
        let kept = prune(&g, PruningScheme::Cnp { k: 1 });
        // ≤ one retained edge per node (union over nodes).
        assert!(kept.len() <= g.num_nodes());
        assert!(!kept.is_empty());
    }

    #[test]
    fn output_sorted_descending() {
        let g = fig3_graph();
        for scheme in [
            PruningScheme::Wep,
            PruningScheme::Cep { k: 10 },
            PruningScheme::Wnp,
            PruningScheme::Cnp { k: 2 },
        ] {
            let kept = prune(&g, scheme);
            assert!(
                kept.windows(2).all(|w| w[0].1 >= w[1].1),
                "{} output not sorted",
                scheme.name()
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = BlockingGraph::from_edges(4, Vec::new());
        assert!(prune(&g, PruningScheme::Wep).is_empty());
        assert!(prune(&g, PruningScheme::Cep { k: 5 }).is_empty());
    }

    #[test]
    fn par_prune_matches_sequential_for_every_scheme() {
        let g = fig3_graph();
        for scheme in [
            PruningScheme::Wep,
            PruningScheme::Cep { k: 7 },
            PruningScheme::Wnp,
            PruningScheme::Cnp { k: 2 },
        ] {
            let sequential = prune(&g, scheme);
            for threads in [1, 2, 4] {
                let parallel = par_prune(&g, scheme, threads).expect("threads > 0");
                assert_eq!(
                    parallel,
                    sequential,
                    "{} at {threads} threads",
                    scheme.name()
                );
            }
        }
        assert!(par_prune(&g, PruningScheme::Wnp, 0).is_err());
    }
}
