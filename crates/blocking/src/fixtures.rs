//! Reusable fixtures encoding the paper's running example (Fig. 3).
//!
//! Exposed publicly (not just under `cfg(test)`) so that downstream crates,
//! examples and doctests can exercise the exact worked example of the paper.

use sper_model::{ProfileCollection, ProfileCollectionBuilder};

/// The running example of Fig. 3(a): six profiles extracted from a data
/// lake with a variety of formats — relational (p1, p4), RDF (p2, p3) and
/// free text (p5, p6). The true matches are p1≡p2≡p3 and p4≡p5.
///
/// Our ids are 0-based, so the paper's `p1..p6` are `ProfileId(0..=5)`.
///
/// ```
/// use sper_blocking::fixtures::fig3_profiles;
/// let profiles = fig3_profiles();
/// assert_eq!(profiles.len(), 6);
/// ```
pub fn fig3_profiles() -> ProfileCollection {
    let mut b = ProfileCollectionBuilder::dirty();
    // p1: relational
    b.add_profile([
        ("Name", "Carl"),
        ("Surname", "White"),
        ("City", "NY"),
        ("Profession", "Tailor"),
    ]);
    // p2: RDF
    b.add_profile([
        (":livesIn", "NY"),
        (":n", "Carl_White"),
        (":workAs", "Tailor"),
    ]);
    // p3: RDF
    b.add_profile([(":loc", "NY"), (":n", "Karl_White"), (":job", "Tailor")]);
    // p4: relational
    b.add_profile([
        ("Name", "Ellen"),
        ("Surname", "White"),
        ("City", "ML"),
        ("Profession", "Teacher"),
    ]);
    // p5: free text
    b.add_profile([("text", "Hellen White, ML teacher")]);
    // p6: free text
    b.add_profile([("text", "Emma White, WI Tailor")]);
    b.build()
}

/// The ground truth of Fig. 3(a): `{p1, p2, p3}` and `{p4, p5}`.
pub fn fig3_ground_truth() -> sper_model::GroundTruth {
    use sper_model::ProfileId;
    sper_model::GroundTruth::from_clusters(
        6,
        &[
            vec![ProfileId(0), ProfileId(1), ProfileId(2)],
            vec![ProfileId(3), ProfileId(4)],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shape() {
        let p = fig3_profiles();
        assert_eq!(p.len(), 6);
        let gt = fig3_ground_truth();
        assert_eq!(gt.num_matches(), 4); // C(3,2) + C(2,2)
    }
}
